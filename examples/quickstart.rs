//! Quickstart: schedule a complete exchange four ways on a simulated
//! 32-node CM-5 and compare.
//!
//! ```sh
//! cargo run --release -p cm5-examples --example quickstart
//! ```

use cm5_core::prelude::*;
use cm5_sim::MachineParams;

fn main() {
    let n = 32;
    let bytes = 1024;
    let params = MachineParams::cm5_1992();
    println!("Complete exchange of {bytes} B/pair on {n} simulated CM-5 nodes\n");
    println!(
        "{:<12} {:>6} {:>12} {:>14} {:>10}",
        "algorithm", "steps", "time", "eff. bandwidth", "blocked"
    );
    for alg in ExchangeAlg::ALL {
        let schedule = alg.schedule(n, bytes);
        let report = run_schedule(&schedule, &params).expect("simulation runs");
        println!(
            "{:<12} {:>6} {:>12} {:>11.2} MB/s {:>9.0}%",
            alg.name(),
            schedule.num_steps(),
            format!("{}", report.makespan),
            report.effective_bandwidth() / 1e6,
            report.mean_blocked_fraction() * 100.0
        );
    }
    println!(
        "\nThe synchronous-communication constraint is what ruins Linear \
         (LEX): every\nsender waits its turn at the step's single receiver. \
         Balanced (BEX) wins by\nspreading fat-tree root crossings evenly \
         across steps."
    );
}
