//! The paper's §4 in one program: a runtime inspector captures an
//! input-dependent access pattern, the schedulers compete on it, and the
//! executor runs the gather with the winner — verified against a
//! sequential reference.
//!
//! ```sh
//! cargo run --release -p cm5-examples --example runtime_scheduling
//! ```

use cm5_core::prelude::*;
use cm5_mesh::prelude::*;
use cm5_sim::{MachineParams, Simulation};
use cm5_workloads::inspector::{execute_gather, Distribution, Inspector};

fn main() {
    let parts = 32;
    // An unstructured mesh partitioned by RCB: the archetypal irregular
    // problem. Each processor's "reads" are the ring neighbours of its
    // owned vertices — exactly what an edge-based solver dereferences.
    let mesh = euler_mesh(2048);
    let assignment = rcb(mesh.points(), parts);
    let dist = Distribution::from_owner_map(mesh.num_points(), parts, assignment.clone());
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); mesh.num_points()];
    for &(a, b) in &mesh.edges() {
        adjacency[a].push(b);
        adjacency[b].push(a);
    }
    let reads: Vec<Vec<usize>> = (0..parts)
        .map(|p| {
            dist.owned(p)
                .iter()
                .flat_map(|&v| adjacency[v].iter().copied())
                .collect()
        })
        .collect();

    // Inspector: one pass, produces the communication matrix.
    let plan = Inspector::analyze(&dist, &reads, 8);
    println!(
        "inspector: {} vertices, {parts} parts -> pattern density {:.0}%, avg msg {:.0} B\n",
        mesh.num_points(),
        plan.pattern.density() * 100.0,
        plan.pattern.avg_msg_bytes()
    );

    // Let the paper's schedulers compete on the captured pattern.
    let params = MachineParams::cm5_1992();
    println!(
        "{:<10} {:>6} {:>12}  (one gather)",
        "scheduler", "steps", "time"
    );
    let mut best: Option<(IrregularAlg, u64)> = None;
    for alg in IrregularAlg::ALL {
        let schedule = alg.schedule(&plan.pattern);
        let report = run_schedule(&schedule, &params).expect("schedule runs");
        println!(
            "{:<10} {:>6} {:>12}",
            alg.name(),
            schedule.num_steps(),
            format!("{}", report.makespan)
        );
        if best.is_none() || report.makespan.as_nanos() < best.unwrap().1 {
            best = Some((alg, report.makespan.as_nanos()));
        }
    }
    let winner = best.expect("some scheduler ran").0;

    // Executor: run the gather for real and verify every ghost value.
    let x: Vec<f64> = (0..mesh.num_points()).map(|g| (g as f64).sqrt()).collect();
    let schedule = winner.schedule(&plan.pattern);
    let sim = Simulation::new(parts, MachineParams::cm5_1992());
    let (report, checks) = sim
        .run_nodes_collect(|node| {
            let me = node.id();
            let local: Vec<f64> = dist.owned(me).iter().map(|&g| x[g]).collect();
            let ghosts = execute_gather(node, &plan, &schedule, &local);
            let mut verified = 0usize;
            for (&g, &v) in &ghosts {
                assert_eq!(v, x[g], "ghost {g} corrupted");
                verified += 1;
            }
            verified
        })
        .expect("gather runs");
    println!(
        "\nexecutor ({}): {} ghost values gathered and verified in {} simulated.",
        winner.name(),
        checks.iter().sum::<usize>(),
        report.makespan
    );
}
