//! Broadcast three ways (paper §3.6): Linear, Recursive, and the system
//! primitive — including REB's "selective broadcast" trick of covering only
//! a subtree, which the system broadcast cannot do.
//!
//! ```sh
//! cargo run --release -p cm5-examples --example broadcast_tree
//! ```

use bytes::Bytes;
use cm5_core::prelude::*;
use cm5_sim::{MachineParams, Simulation};

fn main() {
    let n = 64;
    let params = MachineParams::cm5_1992();
    println!("One-to-all broadcast on {n} simulated CM-5 nodes\n");
    println!("{:<10} {:>10} {:>12}", "algorithm", "msg bytes", "time");
    for &bytes in &[256u64, 1024, 4096, 16384] {
        for alg in BroadcastAlg::ALL {
            let programs = broadcast_programs(alg, n, 0, bytes);
            let report = Simulation::new(n, params.clone())
                .run_ops(&programs)
                .expect("broadcast runs");
            println!(
                "{:<10} {:>10} {:>12}",
                alg.name(),
                bytes,
                format!("{}", report.makespan)
            );
        }
        println!();
    }

    // Selective broadcast: verify REB delivers a real payload from an
    // arbitrary root, which the partition-wide system broadcast also does —
    // but REB binds only the participants.
    let sim = Simulation::new(16, params);
    let (report, payloads) = sim
        .run_nodes_collect(|node| {
            let data = if node.id() == 5 {
                Bytes::from_static(b"row broadcast")
            } else {
                Bytes::new()
            };
            broadcast_payload(node, BroadcastAlg::Recursive, 5, data)
        })
        .expect("payload broadcast");
    assert!(payloads.iter().all(|p| p.as_ref() == b"row broadcast"));
    println!(
        "REB payload broadcast from node 5 delivered to all 16 nodes in {} \
         ({} messages).",
        report.makespan, report.messages
    );
}
