//! The paper's §4 pipeline on a "real problem": build an unstructured mesh,
//! partition it, extract the halo-exchange pattern, schedule it four ways,
//! and run a real distributed Euler-style iteration through the best
//! scheduler.
//!
//! ```sh
//! cargo run --release -p cm5-examples --example irregular_cfd
//! ```

use cm5_core::prelude::*;
use cm5_sim::{MachineParams, Simulation};
use cm5_workloads::euler::{distributed_euler, euler_problem, euler_seq};

fn main() {
    let parts = 32;
    let problem = euler_problem(2048, parts);
    let pattern = &problem.pattern;
    println!(
        "Euler mesh: {} vertices, {} parts; pattern density {:.0}%, avg msg {:.0} B\n",
        problem.vertices,
        parts,
        pattern.density() * 100.0,
        pattern.avg_msg_bytes()
    );

    let params = MachineParams::cm5_1992();
    println!(
        "{:<10} {:>6} {:>12}  (one halo exchange)",
        "scheduler", "steps", "time"
    );
    let mut best = (IrregularAlg::Gs, u64::MAX);
    for alg in IrregularAlg::ALL {
        let schedule = alg.schedule(pattern);
        let report = run_schedule(&schedule, &params).expect("schedule runs");
        println!(
            "{:<10} {:>6} {:>12}",
            alg.name(),
            schedule.num_steps(),
            format!("{}", report.makespan)
        );
        if report.makespan.as_nanos() < best.1 {
            best = (alg, report.makespan.as_nanos());
        }
    }
    println!(
        "\nBest scheduler: {} — running 3 distributed iterations with it.",
        best.0.name()
    );

    let iters = 3;
    let reference = euler_seq(&problem, iters);
    let schedule = best.0.schedule(pattern);
    let sim = Simulation::new(parts, params);
    let (report, results) = sim
        .run_nodes_collect(|node| distributed_euler(node, &problem, &schedule, iters))
        .expect("euler runs");
    let vars = cm5_workloads::EULER_VARS;
    let mut verified = 0usize;
    for (owned, values) in &results {
        for (oi, &v) in owned.iter().enumerate() {
            for k in 0..vars {
                assert_eq!(
                    values[oi * vars + k],
                    reference[v * vars + k],
                    "vertex {v} var {k}"
                );
                verified += 1;
            }
        }
    }
    println!(
        "{} iterations on {} nodes took {} simulated; {} values bit-identical \
         to the sequential solver.",
        iters, parts, report.makespan, verified
    );
}
