//! Beyond the paper: the crystal router (Fox et al., the prior art §4
//! cites) against the paper's greedy scheduler, plus rendered schedules.
//!
//! ```sh
//! cargo run --release -p cm5-examples --example crystal_router
//! ```

use cm5_core::irregular::crystal;
use cm5_core::prelude::*;
use cm5_sim::{FatTree, MachineParams};

fn main() {
    let params = MachineParams::cm5_1992();

    // The paper's own 8-node pattern, rendered both ways.
    let p = Pattern::paper_pattern_p(256);
    let tree = FatTree::new(8);
    println!("Pattern P (Table 6), greedy schedule (Table 10):");
    println!("{}", render_schedule(&gs(&p), &tree));
    println!("Pattern P, crystal-router schedule (lg N = 3 hypercube steps):");
    println!("{}", render_schedule(&crystal(&p), &tree));

    // Where each wins: sweep message size at fixed density on 32 nodes.
    println!(
        "32 nodes, 50% density: greedy (direct) vs crystal router \
         (store-and-forward)\n"
    );
    println!(
        "{:>10} {:>12} {:>12} {:>8}",
        "msg bytes", "greedy", "crystal", "winner"
    );
    for &bytes in &[2u64, 8, 32, 128, 512, 2048] {
        let pattern = Pattern::seeded_random(32, 0.5, bytes, 42);
        let g = run_schedule(&gs(&pattern), &params)
            .expect("gs runs")
            .makespan;
        let c = run_schedule(&crystal(&pattern), &params)
            .expect("crystal runs")
            .makespan;
        println!(
            "{bytes:>10} {:>12} {:>12} {:>8}",
            format!("{g}"),
            format!("{c}"),
            if c < g { "crystal" } else { "greedy" }
        );
    }
    println!(
        "\nAggregation wins while per-step latency dominates (tiny messages); \
         direct\ndelivery wins as soon as forwarding the bytes lg N times \
         costs more than the\nsaved steps — the same trade as REX vs PEX in \
         the paper's Figure 5."
    );
}
