//! Measure the windowed parallel engine on one large simulation: speedup
//! vs worker count, and sensitivity to the time-window width.
//!
//! ```sh
//! cargo run --release -p cm5-examples --example windowed_engine        # 4096 nodes
//! cargo run --release -p cm5-examples --example windowed_engine 16384
//! ```
//!
//! The workload is the large perf grid's truncated pairwise exchange
//! (`pex_slice_programs`) under the hierarchical rate solver — the same
//! cell `report perf` records as `par_pex_16k`. Every run is checked
//! bit-identical to the serial engine before its time is printed, so the
//! tables below can never drift from a correct simulation.

use std::time::Instant;

use cm5_bench::perf::pex_slice_programs;
use cm5_sim::{MachineParams, RateSolver, SimDuration, SimReport, Simulation};

fn params() -> MachineParams {
    let mut p = MachineParams::cm5_1992();
    p.rate_solver = RateSolver::Hierarchical;
    p
}

fn check(serial: &SimReport, par: &SimReport, what: &str) {
    assert_eq!(serial.makespan, par.makespan, "{what}: makespan");
    assert_eq!(serial.wire_bytes, par.wire_bytes, "{what}: wire bytes");
    assert_eq!(serial.perf.events, par.perf.events, "{what}: events");
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("node count"))
        .unwrap_or(4096);
    let strides = [1usize, 2, 3, n / 4, n / 2, n / 2 + 1];
    let programs = pex_slice_programs(n, &strides, |_| 1024);

    let t0 = Instant::now();
    let serial = Simulation::new(n, params()).run_ops(&programs).unwrap();
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "truncated PEX, {n} nodes, hierarchical solver: serial {serial_ms:.1} ms, {} events",
        serial.perf.events
    );

    println!("\nspeedup vs workers (window width = default 88 us):");
    println!(
        "{:>8} {:>10} {:>9} {:>9} {:>10}",
        "jobs", "wall ms", "windows", "merge ms", "speedup"
    );
    for jobs in [1usize, 2, 4, 8] {
        let t = Instant::now();
        let r = Simulation::new(n, params())
            .sim_jobs(jobs)
            .run_ops(&programs)
            .unwrap();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        check(&serial, &r, &format!("jobs={jobs}"));
        println!(
            "{jobs:>8} {ms:>10.1} {:>9} {:>9.1} {:>9.2}x",
            r.perf.windows,
            r.perf.merge_secs * 1e3,
            serial_ms / ms
        );
    }

    println!("\nwindow-width sensitivity (4 workers):");
    println!(
        "{:>10} {:>10} {:>9} {:>9} {:>10}",
        "width us", "wall ms", "windows", "merge ms", "speedup"
    );
    for width_us in [11u64, 44, 88, 352, 1408] {
        let t = Instant::now();
        let r = Simulation::new(n, params())
            .sim_jobs(4)
            .window_width(SimDuration::from_micros(width_us))
            .run_ops(&programs)
            .unwrap();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        check(&serial, &r, &format!("width={width_us}us"));
        println!(
            "{width_us:>10} {ms:>10.1} {:>9} {:>9.1} {:>9.2}x",
            r.perf.windows,
            r.perf.merge_secs * 1e3,
            serial_ms / ms
        );
    }
}
