//! The paper's 2-D FFT (§3.5, Table 5), run for real: distributed rows,
//! transpose via a chosen complete-exchange algorithm, verified against the
//! sequential reference, timed on the simulated machine.
//!
//! ```sh
//! cargo run --release -p cm5-examples --example fft2d [-- <side> <procs>]
//! ```

use cm5_core::regular::ExchangeAlg;
use cm5_sim::{MachineParams, Simulation};
use cm5_workloads::fft::{distributed_fft2d, fft2d_seq, transpose_square, C64};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(128);
    let p: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    assert!(
        n.is_multiple_of(p),
        "array side must divide by processor count"
    );

    // Deterministic input.
    let input: Vec<C64> = (0..n * n)
        .map(|i| {
            C64::new(
                ((i * 37) % 101) as f64 / 101.0,
                ((i * 11) % 73) as f64 / 73.0,
            )
        })
        .collect();
    let mut reference = input.clone();
    fft2d_seq(&mut reference, n);
    transpose_square(&mut reference, n);

    println!("{n}x{n} complex 2-D FFT on {p} simulated CM-5 nodes\n");
    println!("{:<12} {:>12} {:>14}", "transpose", "time", "max |err|");
    let rows = n / p;
    for alg in ExchangeAlg::ALL {
        let sim = Simulation::new(p, MachineParams::cm5_1992());
        let (report, results) = sim
            .run_nodes_collect(|node| {
                let me = node.id();
                distributed_fft2d(node, alg, n, &input[me * rows * n..(me + 1) * rows * n])
            })
            .expect("fft runs");
        let mut worst = 0.0f64;
        for (me, local) in results.iter().enumerate() {
            for (k, v) in local.iter().enumerate() {
                let r = reference[me * rows * n + k];
                worst = worst.max((v.re - r.re).abs().max((v.im - r.im).abs()));
            }
        }
        println!(
            "{:<12} {:>12} {:>14.2e}",
            alg.name(),
            format!("{}", report.makespan),
            worst
        );
        assert!(worst < 1e-9, "distributed FFT diverged from reference");
    }
    println!("\nAll four transposes produce the exact sequential result.");
}
