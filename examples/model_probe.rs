//! Calibration probe for the `cm5-model` irregular cost models.
//!
//! Sweeps the Table 11 grid per seed and prints, side by side: the
//! simulated makespan of each scheduler, the actual schedule length,
//! the pattern statistics the models see, and the model's prediction.
//! Run it after touching `cm5_model::cost::calib` to inspect residuals:
//!
//! ```sh
//! cargo run --release -p cm5-examples --example model_probe
//! ```

use cm5_bench::runners::irregular_time;
use cm5_core::prelude::*;
use cm5_model::prelude::*;
use cm5_sim::{FatTree, MachineParams};
use cm5_workloads::synthetic::synthetic_pattern_exact;

fn main() {
    let params = MachineParams::cm5_1992();
    let tree = FatTree::new(32);
    println!(
        "{:>5} {:>4} {:>4} | {:>4} | {:>9} {:>9} {:>7} | {:>7} {:>7}",
        "dens", "msg", "seed", "alg", "sim ms", "model ms", "err %", "steps", "maxdeg"
    );
    for &density in &[0.10, 0.25, 0.50, 0.75] {
        for &msg in &[256u64, 512] {
            for seed in 0..5u64 {
                let pattern = synthetic_pattern_exact(32, density, msg, 0x7AB1E + seed);
                let stats = PatternStats::of(&pattern, &tree);
                for alg in IrregularAlg::ALL {
                    let sim = irregular_time(alg, &pattern).as_millis_f64();
                    let w = Workload::Irregular(stats.clone());
                    let model = predict(Algorithm::Irregular(alg), &w, &params, &tree)
                        .unwrap()
                        .as_millis_f64();
                    let steps = alg.schedule(&pattern).num_steps();
                    println!(
                        "{:>5.2} {:>4} {:>4} | {:>4} | {:>9.3} {:>9.3} {:>6.1}% | {:>7} {:>7}",
                        density,
                        msg,
                        seed,
                        alg.name().chars().take(4).collect::<String>(),
                        sim,
                        model,
                        (model - sim) / sim * 100.0,
                        steps,
                        stats.max_pair_degree,
                    );
                }
                println!(
                    "    stats: maxout={} maxin={} pairdeg={} ps_occ={:.3} bs_occ={:.3} dens={:.3}",
                    stats.max_out_degree,
                    stats.max_in_degree,
                    stats.max_pair_degree,
                    stats.ps_occupancy,
                    stats.bs_occupancy,
                    stats.density,
                );
            }
        }
    }
}
