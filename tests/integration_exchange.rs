//! Cross-crate integration: the four complete-exchange algorithms on the
//! simulated machine — data correctness, determinism, and the qualitative
//! performance orderings the paper's §3.5 reports.

use bytes::Bytes;
use cm5_core::prelude::*;
use cm5_sim::{MachineParams, SendMode, SimDuration, Simulation};

fn run_exchange(alg: ExchangeAlg, n: usize, bytes: u64) -> SimDuration {
    run_schedule(&alg.schedule(n, bytes), &MachineParams::cm5_1992())
        .unwrap_or_else(|e| panic!("{} n={n} b={bytes}: {e}", alg.name()))
        .makespan
}

#[test]
fn payload_correctness_across_sizes() {
    for n in [2usize, 4, 16] {
        let sim = Simulation::new(n, MachineParams::cm5_1992());
        for alg in ExchangeAlg::ALL {
            let (_, results) = sim
                .run_nodes_collect(|node| {
                    let me = node.id();
                    let blocks: Vec<Bytes> = (0..n)
                        .map(|j| {
                            Bytes::from(
                                (0..24)
                                    .map(|k| (me * 31 + j * 7 + k) as u8)
                                    .collect::<Vec<u8>>(),
                            )
                        })
                        .collect();
                    complete_exchange_payload(node, alg, blocks)
                })
                .unwrap();
            for (me, got) in results.iter().enumerate() {
                for (j, block) in got.iter().enumerate() {
                    let expect: Vec<u8> = (0..24).map(|k| (j * 31 + me * 7 + k) as u8).collect();
                    assert_eq!(
                        block.as_ref(),
                        &expect[..],
                        "{} n={n}: node {me} block from {j}",
                        alg.name()
                    );
                }
            }
        }
    }
}

/// Figure 5's headline: LEX is an order of magnitude worse than the
/// pairwise algorithms under synchronous communication.
#[test]
fn lex_is_far_worst() {
    for bytes in [0u64, 256, 1024] {
        let lex_t = run_exchange(ExchangeAlg::Lex, 32, bytes);
        let pex_t = run_exchange(ExchangeAlg::Pex, 32, bytes);
        assert!(
            lex_t.as_nanos() > 5 * pex_t.as_nanos(),
            "bytes={bytes}: LEX {lex_t} vs PEX {pex_t}"
        );
    }
}

/// Figure 5, large messages: BEX < PEX < REX on 32 nodes.
#[test]
fn large_message_ordering_on_32() {
    for bytes in [512u64, 1920, 2048] {
        let pex_t = run_exchange(ExchangeAlg::Pex, 32, bytes);
        let rex_t = run_exchange(ExchangeAlg::Rex, 32, bytes);
        let bex_t = run_exchange(ExchangeAlg::Bex, 32, bytes);
        assert!(bex_t < pex_t, "bytes={bytes}: BEX {bex_t} !< PEX {pex_t}");
        assert!(pex_t < rex_t, "bytes={bytes}: PEX {pex_t} !< REX {rex_t}");
    }
}

/// Figure 6, zero-byte messages: REX's lg N steps beat everyone at every
/// machine size.
#[test]
fn rex_wins_zero_byte_at_all_sizes() {
    for n in [8usize, 32, 64, 128] {
        let rex_t = run_exchange(ExchangeAlg::Rex, n, 0);
        let pex_t = run_exchange(ExchangeAlg::Pex, n, 0);
        let bex_t = run_exchange(ExchangeAlg::Bex, n, 0);
        assert!(
            rex_t < pex_t && rex_t < bex_t,
            "n={n}: REX {rex_t} PEX {pex_t} BEX {bex_t}"
        );
    }
}

/// §3.4: BEX's advantage is root-contention smoothing; it should never be
/// meaningfully slower than PEX.
#[test]
fn bex_never_loses_to_pex() {
    for n in [8usize, 32, 64] {
        for bytes in [256u64, 512, 1920] {
            let pex_t = run_exchange(ExchangeAlg::Pex, n, bytes);
            let bex_t = run_exchange(ExchangeAlg::Bex, n, bytes);
            assert!(
                bex_t.as_nanos() <= pex_t.as_nanos() * 101 / 100,
                "n={n} bytes={bytes}: BEX {bex_t} vs PEX {pex_t}"
            );
        }
    }
}

/// The ablation the paper could not run: with buffered (eager) sends the
/// linear algorithm's fan-in no longer serializes senders, so LEX improves
/// dramatically — quantifying the cost of the synchronous constraint.
#[test]
fn eager_sends_rescue_lex() {
    let n = 16;
    let bytes = 512;
    let schedule = lex(n, bytes);
    let programs = lower(&schedule);
    let rendezvous = Simulation::new(n, MachineParams::cm5_1992())
        .run_ops(&programs)
        .unwrap();
    let mut eager_params = MachineParams::cm5_1992();
    eager_params.send_mode = SendMode::Eager;
    let eager = Simulation::new(n, eager_params).run_ops(&programs).unwrap();
    assert!(
        rendezvous.makespan.as_nanos() > 2 * eager.makespan.as_nanos(),
        "rendezvous {} vs eager {}",
        rendezvous.makespan,
        eager.makespan
    );
}

/// The architectural heart of the paper, run as a counterfactual: on the
/// hypercube PEX was designed for, its XOR steps are congestion-free
/// (e-cube routes of an XOR permutation are link-disjoint), so BEX's
/// balancing buys nothing — BEX is at best equal and typically worse
/// (its rotated pairs are *not* XOR permutations and do contend). On the
/// CM-5 fat tree the ordering inverts. That inversion is the reason the
/// paper exists.
#[test]
fn bex_advantage_exists_only_on_the_fat_tree() {
    use cm5_sim::{Hypercube, Simulation, Topology};
    let n = 32;
    let bytes = 1920;
    let params = MachineParams::cm5_1992();
    let run_on = |topo: Topology, alg: ExchangeAlg| {
        Simulation::new_on(topo, params.clone())
            .run_ops(&lower(&alg.schedule(n, bytes)))
            .unwrap()
            .makespan
    };
    // Fat tree: BEX < PEX (the paper's result).
    let ft_pex = run_on(
        Topology::FatTree(cm5_sim::FatTree::new(n)),
        ExchangeAlg::Pex,
    );
    let ft_bex = run_on(
        Topology::FatTree(cm5_sim::FatTree::new(n)),
        ExchangeAlg::Bex,
    );
    assert!(ft_bex < ft_pex, "fat tree: BEX {ft_bex} !< PEX {ft_pex}");
    // Hypercube: PEX ≤ BEX — the advantage vanishes (and typically flips).
    let hc_pex = run_on(Topology::Hypercube(Hypercube::new(n)), ExchangeAlg::Pex);
    let hc_bex = run_on(Topology::Hypercube(Hypercube::new(n)), ExchangeAlg::Bex);
    assert!(
        hc_pex <= hc_bex,
        "hypercube: PEX {hc_pex} should not lose to BEX {hc_bex}"
    );
    // And PEX itself runs faster on its home architecture than on the
    // thinned fat tree.
    assert!(
        hc_pex < ft_pex,
        "hypercube PEX {hc_pex} vs fat tree {ft_pex}"
    );
}

/// Simulated runs are a pure function of (programs, params).
#[test]
fn exchange_timing_deterministic() {
    for alg in ExchangeAlg::ALL {
        let a = run_exchange(alg, 32, 777);
        let b = run_exchange(alg, 32, 777);
        assert_eq!(a, b, "{}", alg.name());
    }
}

/// The wire moves exactly the bytes the schedules claim (packetized).
#[test]
fn wire_byte_accounting() {
    let n = 8;
    let bytes = 100u64; // 7 packets of 20 wire bytes
    let params = MachineParams::cm5_1992();
    let r = run_schedule(&pex(n, bytes), &params).unwrap();
    let msgs = (n * (n - 1)) as u64;
    assert_eq!(r.messages, msgs);
    assert_eq!(r.payload_bytes, msgs * bytes);
    assert_eq!(r.wire_bytes, msgs * params.wire_bytes(bytes));
}

/// Root-crossing counts from the simulator agree with the static schedule
/// analysis.
#[test]
fn root_crossings_match_static_analysis() {
    let n = 32;
    let tree = cm5_sim::FatTree::new(n);
    for alg in [ExchangeAlg::Pex, ExchangeAlg::Bex] {
        let schedule = alg.schedule(n, 64);
        let static_count: usize = schedule.root_crossings_per_step(&tree).iter().sum();
        let r = run_schedule(&schedule, &MachineParams::cm5_1992()).unwrap();
        // Each exchange op is two messages.
        assert_eq!(r.root_crossings, 2 * static_count as u64, "{}", alg.name());
    }
}
