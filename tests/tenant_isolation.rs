//! The multi-tenant contract, both directions:
//!
//! * **Isolation** — tenants whose sizes are powers of ARITY, placed in
//!   aligned subtree blocks, own complete link groups at every level of
//!   the shared fat tree, so each one's slice of the shared run is
//!   bit-identical to running it alone on its own tree. (Only
//!   power-of-ARITY sizes get this: a partial group in a standalone tree
//!   has *less* capacity than the full group it would share in a bigger
//!   tree, so the guarantee is deliberately not claimed for other sizes.)
//! * **Interference** — the same tenants striped round-robin across
//!   top-level groups route all tenant-internal traffic through the
//!   root and measurably slow each other down; a golden cell pins the
//!   contended makespan so the cost of bad placement stays visible.

use cm5_core::prelude::*;
use cm5_sim::tenant::{run_tenants, Placement, TenantSpec};
use cm5_sim::{MachineParams, OpProgram, Simulation};

fn exchange_programs(n: usize, bytes: u64) -> Vec<OpProgram> {
    lower(&ExchangeAlg::Bex.schedule(n, bytes))
}

fn two_tenants(bytes_a: u64, bytes_b: u64) -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            name: "a".into(),
            programs: exchange_programs(16, bytes_a),
        },
        TenantSpec {
            name: "b".into(),
            programs: exchange_programs(16, bytes_b),
        },
    ]
}

#[test]
fn disjoint_subtree_tenants_match_standalone_bit_for_bit() {
    let params = MachineParams::cm5_1992();
    // 16 = ARITY^2: each tenant fills a complete aligned subtree of the
    // 64-node shared machine.
    let report = run_tenants(64, Placement::Subtree, &two_tenants(1024, 4096), &params)
        .expect("tenants fit");
    assert_eq!(report.tenants.len(), 2);
    for (slice, bytes) in report.tenants.iter().zip([1024u64, 4096]) {
        let standalone = Simulation::new(16, params.clone())
            .run_ops(&exchange_programs(16, bytes))
            .expect("standalone run");
        assert_eq!(
            slice.makespan, standalone.makespan,
            "tenant {} diverged from its standalone run",
            slice.name
        );
        assert_eq!(slice.messages, standalone.messages, "tenant {}", slice.name);
        assert_eq!(
            slice.payload_bytes, standalone.payload_bytes,
            "tenant {}",
            slice.name
        );
    }
    // Disjoint subtrees exchange nothing through the root.
    assert_eq!(report.report.root_crossings, 0);
}

#[test]
fn isolation_holds_on_a_bigger_machine_and_more_tenants() {
    let params = MachineParams::cm5_1992();
    let tenants = vec![
        TenantSpec {
            name: "t0".into(),
            programs: exchange_programs(4, 512),
        },
        TenantSpec {
            name: "t1".into(),
            programs: exchange_programs(16, 2048),
        },
        TenantSpec {
            name: "t2".into(),
            programs: exchange_programs(4, 8192),
        },
    ];
    let report = run_tenants(256, Placement::Subtree, &tenants, &params).expect("tenants fit");
    for (slice, (n, bytes)) in report
        .tenants
        .iter()
        .zip([(4usize, 512u64), (16, 2048), (4, 8192)])
    {
        let standalone = Simulation::new(n, params.clone())
            .run_ops(&exchange_programs(n, bytes))
            .expect("standalone run");
        assert_eq!(slice.makespan, standalone.makespan, "tenant {}", slice.name);
    }
}

#[test]
fn striped_tenants_slow_each_other_down() {
    // Contention in this model only bites when a link carries more
    // software-rate (10 MB/s) flows than its capacity admits; upper links
    // give every node a guaranteed 5 MB/s share, so a level-2 link clogs
    // only when *more than half* a group's nodes send cross-group at
    // once. PEX does exactly that (the §3.4 effect), so: four 16-node PEX
    // tenants striped across a fully-packed 64-node tree put all 16 of
    // each group's residents on its 80 MB/s up-link — 5 MB/s per flow,
    // half the 10 MB/s a solo striped tenant gets.
    let params = MachineParams::cm5_1992();
    let spec = |name: &str| TenantSpec {
        name: name.into(),
        programs: lower_with(
            &ExchangeAlg::Pex.schedule(16, 16384),
            &LowerOptions {
                async_sends: true,
                ..Default::default()
            },
        ),
    };
    let all = [spec("a"), spec("b"), spec("c"), spec("d")];
    let alone = run_tenants(64, Placement::Striped, &all[..1], &params).expect("solo striped");
    let shared = run_tenants(64, Placement::Striped, &all, &params).expect("contended striped");

    // Striping pushes tenant-internal traffic through the root; an
    // aligned subtree placement of the same tenants keeps it out.
    assert!(
        shared.report.root_crossings > 0,
        "striped placement should cross the root"
    );
    let subtree = run_tenants(64, Placement::Subtree, &all, &params).expect("subtree placement");
    assert_eq!(subtree.report.root_crossings, 0);

    // The neighbours measurably slow every tenant.
    let solo_ns = alone.tenants[0].makespan.as_nanos();
    for slice in &shared.tenants {
        assert!(
            slice.makespan.as_nanos() > solo_ns * 3 / 2,
            "tenant {}: contended {} should be >1.5x solo {}",
            slice.name,
            slice.makespan,
            alone.tenants[0].makespan
        );
    }

    // Golden cell: the contended makespan is part of the artifact. If a
    // deliberate model change moves it, re-pin from the failure message.
    let golden_ns = shared.report.makespan.as_nanos();
    println!("contended striped makespan: {golden_ns} ns (solo {solo_ns} ns)");
    assert_eq!(golden_ns, GOLDEN_CONTENDED_MAKESPAN_NS);
}

/// Pinned from `MachineParams::cm5_1992()`: four 16-node PEX tenants at
/// 16 KB/pair striped across a fully-packed 64-node tree.
const GOLDEN_CONTENDED_MAKESPAN_NS: u64 = 98_519_000;
