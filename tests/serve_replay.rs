//! The serve subsystem's determinism contract, end to end:
//!
//! * replaying the same recorded trace at any worker count produces a
//!   byte-identical response stream AND byte-identical deterministic
//!   metrics (host timing is quarantined in the separate timing doc);
//! * the canonical span-tree export, the flight recorder's dumps, and the
//!   simulator trace-ring drop accounting are equally worker-count-
//!   independent — the whole telemetry layer obeys the same contract;
//! * the request codec round-trips (`parse_line ∘ render_line` is the
//!   identity) and rejects malformed input with errors, never panics;
//! * every line the `cm5-bench` trace generator emits is accepted by the
//!   codec — the recorder and the service can never drift apart.

use cm5_bench::querygen::{generate_trace, TraceMix};
use cm5_serve::{replay, Query, Request, Service, ServiceConfig, TenantQuery};
use proptest::prelude::*;

#[test]
fn replay_is_byte_identical_at_any_worker_count() {
    let trace = generate_trace(TraceMix::Mixed, 80, 11);
    let mut baseline: Option<(String, String, String)> = None;
    for jobs in [1usize, 4, 8] {
        let service = Service::new(ServiceConfig::default());
        let result = replay(&service, &trace, jobs, None);
        assert_eq!(result.requests, 80);
        let joined = result.responses.join("\n");
        let metrics = service.metrics().to_json();
        let spans = cm5_obs::spans_json(&result.spans);
        match &baseline {
            None => baseline = Some((joined, metrics, spans)),
            Some((r0, m0, s0)) => {
                assert_eq!(&joined, r0, "response stream differs at jobs={jobs}");
                assert_eq!(&metrics, m0, "metrics differ at jobs={jobs}");
                assert_eq!(&spans, s0, "span trees differ at jobs={jobs}");
            }
        }
    }
}

/// A trace of simulate-mode exchange queries big enough to overflow a tiny
/// per-simulation trace ring.
fn simulate_heavy_trace(queries: usize) -> String {
    (0..queries)
        .map(|i| {
            format!(
                "{{\"id\":{i},\"query\":{{\"kind\":\"exchange\",\"n\":16,\"bytes\":{}}},\"simulate\":true}}\n",
                256 + i * 64
            )
        })
        .collect()
}

#[test]
fn trace_ring_drop_accounting_is_worker_count_independent() {
    // Each n=16 PEX simulation emits hundreds of trace events; a ring of 8
    // must drop most of them. The drop COUNT is part of each SimReport's
    // bit-identity contract, so the summed counter is deterministic too.
    let trace = simulate_heavy_trace(10);
    let mut baseline: Option<u64> = None;
    for jobs in [1usize, 4] {
        let service = Service::new(ServiceConfig {
            trace_ring: Some(8),
            ..Default::default()
        });
        let result = replay(&service, &trace, jobs, None);
        assert_eq!(result.requests, 10);
        let metrics = service.metrics();
        let dropped = metrics.counters["sim_trace_dropped"];
        assert!(dropped > 0, "ring of 8 must overflow (jobs={jobs})");
        match baseline {
            None => baseline = Some(dropped),
            Some(d0) => assert_eq!(dropped, d0, "drop count differs at jobs={jobs}"),
        }
        // The counter reaches scrapers: it is part of the /metrics body.
        let prom = cm5_obs::prometheus_text(&service.live_metrics());
        assert!(
            prom.contains(&format!("cm5_sim_trace_dropped {dropped}")),
            "{prom}"
        );
    }
}

#[test]
fn flight_dumps_are_deterministic_across_worker_counts() {
    // `flight_slo_ms: Some(0)` trips on every query, so the dump set is
    // the whole trace; dump contents are wall-clock-free, so the files
    // must be byte-identical at any worker count.
    let trace = generate_trace(TraceMix::Mixed, 24, 7);
    let base = std::env::temp_dir().join(format!("cm5_flight_det_{}", std::process::id()));
    let mut baseline: Option<Vec<(String, String)>> = None;
    for jobs in [1usize, 4] {
        let dir = base.join(format!("jobs{jobs}"));
        let service = Service::new(ServiceConfig {
            flight_slo_ms: Some(0),
            flight_dir: Some(dir.clone()),
            ..Default::default()
        });
        let result = replay(&service, &trace, jobs, None);
        assert_eq!(result.requests, 24);
        let mut dumps: Vec<(String, String)> = std::fs::read_dir(&dir)
            .expect("flight dir exists")
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read_to_string(e.path()).unwrap(),
                )
            })
            .collect();
        dumps.sort();
        assert_eq!(dumps.len(), 24, "slo-ms 0 dumps every query");
        assert!(dumps.iter().all(|(_, body)| body.contains("cm5-flight/1")));
        match &baseline {
            None => baseline = Some(dumps),
            Some(d0) => assert_eq!(&dumps, d0, "flight dumps differ at jobs={jobs}"),
        }
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn generated_traces_parse_for_every_mix() {
    for mix in [TraceMix::AdviseOnly, TraceMix::Mixed] {
        let trace = generate_trace(mix, 400, 5);
        for (i, line) in trace.lines().enumerate() {
            let req = Request::parse_line(line)
                .unwrap_or_else(|e| panic!("{} line {i} rejected: {e}\n{line}", mix.name()));
            assert_eq!(req.id, i as u64);
            // And the codec round-trips what it parsed.
            assert_eq!(Request::parse_line(&req.render_line()).unwrap(), req);
        }
    }
}

#[test]
fn malformed_lines_get_error_responses_not_panics() {
    let service = Service::new(ServiceConfig::default());
    for line in [
        "",
        "{",
        "null",
        "[1,2,3]",
        "{\"id\":1}",
        "{\"id\":1,\"query\":{\"kind\":\"exchange\",\"n\":3}}",
        "{\"id\":1,\"query\":{\"kind\":\"exchange\",\"n\":32},\"simlate\":true}",
        "{\"id\":1,\"query\":{\"kind\":\"tenants\",\"shared_n\":64,\"tenants\":[]}}",
    ] {
        let response = service.handle_line(line);
        assert!(
            response.contains("\"ok\":false"),
            "expected error for {line:?}, got {response}"
        );
    }
}

/// Name alphabet for generated strings — includes every character the
/// JSON renderer must escape.
const NAME_CHARS: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '_', '-', '"', '\\', '\n', '\t', '{', '}', ':', ',',
    'é', '✓',
];

fn name_from(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|i| NAME_CHARS[i % NAME_CHARS.len()])
        .collect()
}

fn names() -> impl Strategy<Value = String> {
    collection::vec(0usize..NAME_CHARS.len(), 1..10).prop_map(|ix| name_from(&ix))
}

/// JSON numbers are f64, so only integers below 2^53 round-trip exactly
/// (the documented codec bound).
fn json_safe_u64() -> impl Strategy<Value = u64> {
    0u64..(1 << 53)
}

/// One arbitrary valid query, spanning all six kinds.
fn queries() -> impl Strategy<Value = Query> {
    (
        0usize..6,
        (1u32..=14).prop_map(|e| 1usize << e),
        json_safe_u64(),
        (0.0f64..=1.0, json_safe_u64()),
        names(),
        collection::vec(
            (
                collection::vec(0usize..NAME_CHARS.len(), 1..6),
                1u32..=5,
                json_safe_u64(),
            ),
            1..4,
        ),
    )
        .prop_map(
            |(kind, n, bytes, (density, seed), name, tenant_parts)| match kind {
                0 => Query::Exchange { n, bytes },
                1 => Query::Broadcast { n, bytes },
                2 => Query::Irregular {
                    n,
                    density,
                    bytes,
                    seed,
                },
                3 => Query::Pattern { text: name },
                4 => Query::Workload { name, n },
                _ => Query::Tenants {
                    shared_n: n,
                    placement: if seed & 1 == 0 {
                        cm5_sim::tenant::Placement::Subtree
                    } else {
                        cm5_sim::tenant::Placement::Striped
                    },
                    tenants: tenant_parts
                        .into_iter()
                        .map(|(ix, e, bytes)| TenantQuery {
                            name: name_from(&ix),
                            n: 1usize << e,
                            bytes,
                        })
                        .collect(),
                },
            },
        )
}

proptest! {
    /// `parse_line ∘ render_line` is the identity on every valid request,
    /// including names that need JSON string escaping.
    #[test]
    fn codec_round_trips(id in json_safe_u64(), query in queries(),
                         verify in any::<bool>(), simulate in any::<bool>()) {
        let req = Request { id, query, verify, simulate };
        let line = req.render_line();
        match Request::parse_line(&line) {
            Ok(back) => prop_assert_eq!(back, req, "line: {}", line),
            Err(e) => prop_assert!(false, "{e}\n{line}"),
        }
    }

    /// Arbitrary bytes never panic the parser; they either decode or
    /// return an error string.
    #[test]
    fn hostile_input_never_panics(bytes in collection::vec(any::<u8>(), 0..200)) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = Request::parse_line(&line);
    }

    /// Mutating a valid line still never panics (closer-to-valid inputs
    /// exercise deeper parser paths than pure noise).
    #[test]
    fn mutated_valid_lines_never_panic(query in queries(), cut in any::<u64>(),
                                       insert in collection::vec(0usize..NAME_CHARS.len(), 1..5)) {
        let line = Request { id: 1, query, verify: true, simulate: false }.render_line();
        let mut at = (cut % line.len().max(1) as u64) as usize;
        while !line.is_char_boundary(at) {
            at -= 1;
        }
        let mut mutated = String::new();
        mutated.push_str(&line[..at]);
        mutated.push_str(&name_from(&insert));
        mutated.push_str(&line[at..]);
        let _ = Request::parse_line(&mutated);
    }
}
