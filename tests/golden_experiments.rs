//! Golden regression tests pinning the headline numbers of
//! EXPERIMENTS.md.
//!
//! The simulator is deterministic (integer-nanosecond arithmetic, no
//! randomness on these paths), so these cells must reproduce to the
//! microsecond. If a model change legitimately moves them, update both
//! this file and EXPERIMENTS.md in the same commit — they document the
//! same numbers.

use cm5_bench::runners::exchange_time;
use cm5_core::prelude::*;

/// Simulated milliseconds for one Figure 5 cell (32 nodes).
fn fig5_ms(alg: ExchangeAlg, bytes: u64) -> f64 {
    exchange_time(alg, 32, bytes).as_millis_f64()
}

/// Printed values in EXPERIMENTS.md carry three decimals; match to the
/// rounding tolerance.
fn assert_ms(actual: f64, golden: f64, what: &str) {
    assert!(
        (actual - golden).abs() < 1e-3,
        "{what}: got {actual:.6} ms, golden {golden:.3} ms"
    );
}

#[test]
fn fig5_zero_byte_row_matches_golden() {
    // EXPERIMENTS.md Figure 5, 0 B row: LEX 38.2, PEX 3.10, REX 0.50
    // (best), BEX 3.10.
    assert_ms(fig5_ms(ExchangeAlg::Lex, 0), 38.230, "LEX 0B");
    assert_ms(fig5_ms(ExchangeAlg::Pex, 0), 3.100, "PEX 0B");
    assert_ms(fig5_ms(ExchangeAlg::Rex, 0), 0.504, "REX 0B");
    assert_ms(fig5_ms(ExchangeAlg::Bex, 0), 3.100, "BEX 0B");
}

#[test]
fn fig5_large_message_row_matches_golden() {
    // EXPERIMENTS.md Figure 5, 1920 B row: the paper's headline result —
    // BEX 23.4 ms beats PEX 25.2 ms; REX 71.1; LEX 220.8, ~9x worst.
    assert_ms(fig5_ms(ExchangeAlg::Lex, 1920), 220.776, "LEX 1920B");
    assert_ms(fig5_ms(ExchangeAlg::Pex, 1920), 25.196, "PEX 1920B");
    assert_ms(fig5_ms(ExchangeAlg::Rex, 1920), 71.136, "REX 1920B");
    assert_ms(fig5_ms(ExchangeAlg::Bex, 1920), 23.417, "BEX 1920B");
}

#[test]
fn fig5_orderings_match_paper_claims() {
    // Large messages: BEX < PEX < REX < LEX (the §3.4 ordering).
    for bytes in [1024u64, 1920, 2048] {
        let (lex, pex, rex, bex) = (
            fig5_ms(ExchangeAlg::Lex, bytes),
            fig5_ms(ExchangeAlg::Pex, bytes),
            fig5_ms(ExchangeAlg::Rex, bytes),
            fig5_ms(ExchangeAlg::Bex, bytes),
        );
        assert!(bex < pex, "{bytes} B: BEX {bex} !< PEX {pex}");
        assert!(pex < rex, "{bytes} B: PEX {pex} !< REX {rex}");
        assert!(rex < lex, "{bytes} B: REX {rex} !< LEX {lex}");
    }
}

#[test]
fn rex_is_best_for_zero_byte_exchanges_at_every_size() {
    // EXPERIMENTS.md: 0 B REX wins at every machine size (lg N steps of
    // pure latency), 0.504 ms at 32 nodes and 0.608 ms at 64.
    for (n, golden_rex) in [(32usize, 0.504f64), (64, 0.608)] {
        let rex = exchange_time(ExchangeAlg::Rex, n, 0).as_millis_f64();
        assert_ms(rex, golden_rex, "REX 0B");
        for alg in [ExchangeAlg::Lex, ExchangeAlg::Pex, ExchangeAlg::Bex] {
            let other = exchange_time(alg, n, 0).as_millis_f64();
            assert!(
                rex < other,
                "n={n}: REX {rex} ms should beat {} {other} ms at 0 B",
                alg.name()
            );
        }
    }
}

#[test]
fn lex_is_worst_everywhere_in_fig5() {
    for bytes in [0u64, 256, 1920] {
        let lex = fig5_ms(ExchangeAlg::Lex, bytes);
        for alg in [ExchangeAlg::Pex, ExchangeAlg::Rex, ExchangeAlg::Bex] {
            assert!(
                fig5_ms(alg, bytes) < lex,
                "{} should beat LEX at {bytes} B",
                alg.name()
            );
        }
    }
}
