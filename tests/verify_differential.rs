//! Differential validation: the static verifier against the simulator.
//!
//! The verifier's deadlock verdict is only worth anything if it agrees
//! with what the machine actually does. Rendezvous matching with named
//! sources and exact tags is confluent — the blocked/unblocked outcome is
//! timing-independent — so the two must agree *exactly*:
//!
//! * verifier-clean schedules complete in the blocking simulator;
//! * verifier-flagged deadlocks genuinely stall the simulator;
//! * simulator deadlocks are always predicted (100% catch rate over an
//!   exhaustive sweep of swap/drop/retarget/retag mutations of valid
//!   PEX/BEX/GS/REB programs).

use cm5_core::prelude::*;
use cm5_sim::{MachineParams, OpProgram, SimError, Simulation};
use cm5_verify::mutate::{apply, comm_sites, inject_demo, Mutation};
use cm5_verify::{
    exchange_policy, irregular_policy, verify_programs, verify_schedule, Code, VerifyOptions,
};

fn simulate(programs: &[OpProgram]) -> Result<(), SimError> {
    Simulation::new(programs.len(), MachineParams::cm5_1992())
        .run_ops(programs)
        .map(|_| ())
}

/// The simulator's "stuck forever" outcomes. A mutation can also surface
/// as `BadProgram` (e.g. a retargeted recv turning into self-receive is
/// impossible here, but kept for clarity of intent).
fn sim_stalls(err: &SimError) -> bool {
    matches!(
        err,
        SimError::Deadlock { .. } | SimError::CollectiveMismatch { .. }
    )
}

#[test]
fn clean_schedules_complete_in_the_simulator() {
    let paper = Pattern::paper_pattern_p(128);
    let cases: Vec<(&str, Schedule, Option<Pattern>, VerifyOptions)> = vec![
        (
            "lex",
            lex(8, 256),
            Some(Pattern::complete_exchange(8, 256)),
            exchange_policy(ExchangeAlg::Lex),
        ),
        (
            "pex",
            pex(16, 256),
            Some(Pattern::complete_exchange(16, 256)),
            exchange_policy(ExchangeAlg::Pex),
        ),
        (
            "bex",
            bex(16, 256),
            Some(Pattern::complete_exchange(16, 256)),
            exchange_policy(ExchangeAlg::Bex),
        ),
        (
            "rex",
            rex(16, 256),
            Some(Pattern::complete_exchange(16, 256)),
            exchange_policy(ExchangeAlg::Rex),
        ),
        (
            "ls",
            ls(&paper),
            Some(paper.clone()),
            irregular_policy(IrregularAlg::Ls),
        ),
        (
            "gs",
            gs(&paper),
            Some(paper.clone()),
            irregular_policy(IrregularAlg::Gs),
        ),
        ("crystal", crystal(&paper), None, VerifyOptions::default()),
    ];
    for (name, schedule, pattern, opts) in &cases {
        let report = verify_schedule(schedule, pattern.as_ref(), opts);
        assert!(report.is_clean(), "{name}:\n{}", report.render_human());
        let programs = lower_with(schedule, &opts.lower);
        simulate(&programs).unwrap_or_else(|e| panic!("{name} stalled the simulator: {e}"));
    }
}

/// The `cm5 lint --inject` demos are real: each one both trips the
/// verifier and stalls the simulator, with a non-empty witness.
#[test]
fn demo_injections_are_caught_and_genuinely_stall() {
    for kind in ["swap-order", "drop-recv", "retag"] {
        let schedule = pex(8, 64);
        let mut programs = lower_with(&schedule, &LowerOptions::default());
        let desc = inject_demo(&mut programs, kind).expect("known demo kind");
        let report = verify_programs(&programs);
        assert!(report.has_deadlock(), "{kind} ({desc}) not caught");
        for d in report.iter().filter(|d| d.code == Code::DeadlockCycle) {
            assert!(!d.witness.is_empty(), "{kind}: V020 without witness");
        }
        let err = simulate(&programs).expect_err("injected fault must stall");
        assert!(sim_stalls(&err), "{kind}: unexpected sim error {err}");
    }
}

/// Exhaustive mutation sweep: every (node, site, kind) mutation of the
/// lowered PEX/BEX/GS/REB programs, checked for *agreement* — the
/// verifier predicts a stall if and only if the simulator stalls. The
/// deadlocking subset must be non-trivial (catch rate is 100% of it by
/// construction of the agreement check).
#[test]
fn mutation_sweep_verifier_and_simulator_agree() {
    let paper = Pattern::paper_pattern_p(64);
    let targets: Vec<(&str, Vec<OpProgram>)> = vec![
        ("pex8", lower(&pex(8, 64))),
        ("bex8", lower(&bex(8, 64))),
        ("gs-paper", lower(&gs(&paper))),
        ("reb8", lower(&reb(8, 0, 64))),
    ];
    let mut deadlocks = 0usize;
    let mut survivors = 0usize;
    for (name, base) in &targets {
        for node in 0..base.len() {
            let sites = comm_sites(&base[node]).len();
            for site in 0..sites {
                for kind in 0..4usize {
                    let mutation = match kind {
                        0 => Mutation::SwapWithNext { node, site },
                        1 => Mutation::Drop { node, site },
                        2 => Mutation::RetargetRecv { node, site },
                        _ => Mutation::Retag { node, site },
                    };
                    let mut programs = base.clone();
                    if !apply(&mut programs, mutation) {
                        continue;
                    }
                    let report = verify_programs(&programs);
                    let sim = simulate(&programs);
                    match &sim {
                        Ok(()) => {
                            survivors += 1;
                            assert!(
                                !report.has_deadlock(),
                                "{name} node {node} site {site} kind {kind}: \
                                 verifier flagged a deadlock but the run completed:\n{}",
                                report.render_human()
                            );
                        }
                        Err(e) if sim_stalls(e) => {
                            deadlocks += 1;
                            assert!(
                                report.has_deadlock(),
                                "{name} node {node} site {site} kind {kind}: \
                                 simulator stalled but the verifier missed it: {e}"
                            );
                            for d in report.iter().filter(|d| d.code == Code::DeadlockCycle) {
                                assert!(!d.witness.is_empty(), "V020 without witness");
                            }
                        }
                        Err(e) => panic!(
                            "{name} node {node} site {site} kind {kind}: unexpected error {e}"
                        ),
                    }
                }
            }
        }
    }
    // Non-vacuity: the sweep must exercise both outcomes heavily.
    assert!(deadlocks >= 100, "only {deadlocks} deadlocking mutations");
    assert!(survivors >= 10, "only {survivors} surviving mutations");
}

/// Async lowering differential: the Isend/WaitAll structure is verified
/// with the same agreement guarantee.
#[test]
fn async_mutations_agree_too() {
    let opts = LowerOptions {
        async_sends: true,
        ..Default::default()
    };
    let base = lower_with(&pex(8, 64), &opts);
    let mut checked = 0usize;
    for node in 0..base.len() {
        let sites = comm_sites(&base[node]).len();
        for site in 0..sites {
            let mut programs = base.clone();
            if !apply(&mut programs, Mutation::Drop { node, site }) {
                continue;
            }
            let report = verify_programs(&programs);
            match simulate(&programs) {
                Ok(()) => assert!(!report.has_deadlock(), "false positive (async)"),
                Err(e) if sim_stalls(&e) => {
                    checked += 1;
                    assert!(report.has_deadlock(), "missed async deadlock: {e}");
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
    }
    assert!(checked > 0, "async sweep was vacuous");
}
