//! Golden tests for `cm5_core::analysis::render_schedule`.
//!
//! The rendered step diagram is part of the CLI's user-facing output
//! (`--render`), so its exact shape is pinned here on the two schedules
//! the paper itself draws: PEX on 8 nodes (Table 2's XOR steps — every
//! node paired every step, globals jumping from 0 to 4 when the XOR
//! crosses the root) and GS on the paper's 8-node pattern P (Table 10 —
//! ragged steps mixing exchanges, one-way sends and idle nodes).

use cm5_core::prelude::*;
use cm5_sim::FatTree;

#[test]
fn pex_8_nodes_renders_the_xor_step_table() {
    let rendered = render_schedule(&ExchangeAlg::Pex.schedule(8, 64), &FatTree::new(8));
    let expected = "\
step |  0  1  2  3  4  5  6  7 | globals
   0 |  ↔  ↔  ↔  ↔  ↔  ↔  ↔  ↔ | 0
   1 |  ↔  ↔  ↔  ↔  ↔  ↔  ↔  ↔ | 0
   2 |  ↔  ↔  ↔  ↔  ↔  ↔  ↔  ↔ | 0
   3 |  ↔  ↔  ↔  ↔  ↔  ↔  ↔  ↔ | 4
   4 |  ↔  ↔  ↔  ↔  ↔  ↔  ↔  ↔ | 4
   5 |  ↔  ↔  ↔  ↔  ↔  ↔  ↔  ↔ | 4
   6 |  ↔  ↔  ↔  ↔  ↔  ↔  ↔  ↔ | 4
";
    assert_eq!(rendered, expected);
}

#[test]
fn gs_on_paper_pattern_p_renders_the_ragged_steps() {
    let rendered = render_schedule(&gs(&Pattern::paper_pattern_p(256)), &FatTree::new(8));
    let expected = "\
step |  0  1  2  3  4  5  6  7 | globals
   0 |  ↔  ↔  ↔  ↔  ↔  ↔  ↔  ↔ | 0
   1 |  ↔  ↔  ↔  ↔  ↔  ↔  ↔  ↔ | 0
   2 |  ←  ↔  ·  ↔  ↔  ←  ↔  → | 4
   3 |  ↔  ↔  ·  ↔  ↔  ↔  ↔  · | 3
   4 |  ·  →  ←  →  →  ←  ←  · | 3
   5 |  ·  ↔  ←  ·  ·  ·  →  ↔ | 2
";
    assert_eq!(rendered, expected);
}
