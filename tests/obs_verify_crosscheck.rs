//! Cross-check: cm5-obs's *dynamic* link utilization agrees with
//! cm5-verify's *static* contention prediction.
//!
//! `cm5_verify::analyze_contention` charges each schedule step's transfers
//! onto the fat tree and flags the steps whose worst link is oversubscribed
//! (root hotspots for all-global steps, link hotspots for fan-in). cm5-obs
//! measures the same thing dynamically: per-link peak rates sampled from
//! the flow solver. If the two layers are consistent, some link that is
//! dynamically saturated (peak utilization within epsilon of the run's
//! maximum) must sit at a statically flagged (level, step) coordinate.
//!
//! Run on the paper's 32-node configuration for all four complete-exchange
//! algorithms: PEX/BEX (16 root-hotspot steps each), REX (exactly one
//! root-crossing step), and LEX (leaf fan-in hotspots).

use cm5_core::prelude::*;
use cm5_obs::{link_usage, SpanStore};
use cm5_sim::{FatTree, MachineParams, Simulation, Topology};
use cm5_verify::{contention::analyze_contention, Code, Diagnostic};

/// Pull the hotspot's tree level out of a contention diagnostic's message
/// (`... {Up|Down}-link level L group G ...`).
fn diag_level(d: &Diagnostic) -> usize {
    let msg = &d.message;
    let tail = msg
        .split("level ")
        .nth(1)
        .unwrap_or_else(|| panic!("no level in {msg}"));
    tail.split_whitespace()
        .next()
        .and_then(|w| w.parse().ok())
        .unwrap_or_else(|| panic!("unparseable level in {msg}"))
}

/// `expect_saturated`: whether some link should dynamically reach full
/// capacity. True for the root-hotspot algorithms (oversubscription means
/// the root links saturate); false for LEX, whose statically-flagged
/// fan-in is *serialized* by blocking rendezvous at run time — one
/// software-capped flow at a time, so the flagged leaf link peaks at
/// `flow_cap / leaf_bandwidth`, never 1.0. The static/dynamic agreement is
/// about *where* the hottest link is, not its absolute ratio.
fn crosscheck(alg: ExchangeAlg, n: usize, bytes: u64, expect_saturated: bool) {
    let params = MachineParams::cm5_1992();
    let schedule = alg.schedule(n, bytes);

    // Static prediction: flagged (level, step) coordinates.
    let diags = analyze_contention(&schedule, &params);
    assert!(
        !diags.is_empty(),
        "{}: expected static hotspots at n={n}",
        alg.name()
    );
    let static_spots: Vec<(usize, usize)> = diags
        .iter()
        .map(|d| (diag_level(d), d.span.step.expect("contention spans a step")))
        .collect();

    // Dynamic measurement: run the lowered schedule with the rate sink on.
    let topo = Topology::FatTree(FatTree::new(n));
    let report = Simulation::new_on(topo.clone(), params.clone())
        .record_trace(true)
        .record_rates(true)
        .run_ops(&lower(&schedule))
        .expect("schedule runs");
    let spans = SpanStore::from_report(&report);
    let usage = link_usage(&report.rate_samples, &topo, &params);

    let max_util = usage
        .peaks
        .iter()
        .map(|p| p.utilization())
        .fold(0.0f64, f64::max);
    if expect_saturated {
        assert!(max_util > 0.99, "{}: some link must saturate", alg.name());
    } else {
        let cap_ratio = params.flow_cap() / params.leaf_bandwidth;
        assert!(
            (max_util - cap_ratio).abs() < 1e-9,
            "{}: serialized fan-in peaks at the per-flow cap, got {max_util}",
            alg.name()
        );
    }

    // Every dynamically-saturated link, attributed to the schedule step
    // (message tag) active when its peak was sampled.
    let candidates: Vec<(usize, usize)> = usage
        .peaks
        .iter()
        .filter(|p| p.utilization() >= max_util - 1e-9)
        .filter_map(|p| spans.step_at(p.at).map(|step| (p.level, step as usize)))
        .collect();
    assert!(
        !candidates.is_empty(),
        "{}: no attributable peaks",
        alg.name()
    );

    assert!(
        candidates.iter().any(|c| static_spots.contains(c)),
        "{}: no dynamically-saturated link matches a static hotspot\n\
         static (level, step): {static_spots:?}\ndynamic: {candidates:?}",
        alg.name()
    );
}

#[test]
fn pex_32_dynamic_peak_matches_static_root_hotspots() {
    let d = analyze_contention(
        &ExchangeAlg::Pex.schedule(32, 1024),
        &MachineParams::cm5_1992(),
    );
    assert!(d.iter().all(|x| x.code == Code::RootHotspot));
    crosscheck(ExchangeAlg::Pex, 32, 1024, true);
}

#[test]
fn bex_32_dynamic_peak_matches_static_root_hotspots() {
    crosscheck(ExchangeAlg::Bex, 32, 1024, true);
}

#[test]
fn rex_32_dynamic_peak_matches_the_single_root_step() {
    let d = analyze_contention(
        &ExchangeAlg::Rex.schedule(32, 1024),
        &MachineParams::cm5_1992(),
    );
    let roots: Vec<_> = d.iter().filter(|x| x.code == Code::RootHotspot).collect();
    assert_eq!(roots.len(), 1, "REX concentrates root traffic in one step");
    crosscheck(ExchangeAlg::Rex, 32, 1024, true);
}

#[test]
fn lex_32_dynamic_peak_matches_static_fan_in_hotspots() {
    let d = analyze_contention(
        &ExchangeAlg::Lex.schedule(32, 1024),
        &MachineParams::cm5_1992(),
    );
    assert!(
        d.iter().any(|x| x.code == Code::LinkHotspot),
        "LEX's n-1-way fan-in oversubscribes below the root"
    );
    crosscheck(ExchangeAlg::Lex, 32, 1024, false);
}
