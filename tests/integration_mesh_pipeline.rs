//! The full "real problem" pipeline of Table 12: mesh → partition → halo →
//! pattern → schedule → simulated run — plus numerical verification of the
//! distributed CG and Euler solvers against their sequential references.

use cm5_core::prelude::*;
use cm5_mesh::prelude::*;
use cm5_sim::{MachineParams, Simulation};
use cm5_workloads::cg::{cg_problem, cg_seq, distributed_cg};
use cm5_workloads::euler::{distributed_euler, euler_problem, euler_seq};

#[test]
fn halo_pattern_runs_under_all_schedulers() {
    let mesh = euler_mesh(545);
    let parts = 32;
    let assignment = rcb(mesh.points(), parts);
    let halo = Halo::build(parts, &assignment, &mesh.edges());
    let pattern = halo.pattern(8);
    assert!(pattern.nonzero_pairs() > 0);
    for alg in IrregularAlg::ALL {
        let s = alg.schedule(&pattern);
        s.check_coverage(&pattern)
            .unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        let r = run_schedule(&s, &MachineParams::cm5_1992())
            .unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        assert_eq!(r.payload_bytes, pattern.total_bytes());
    }
}

/// Distributed CG agrees with sequential CG (same iteration count) to
/// rounding, under two different schedulers, and actually reduces the
/// residual.
#[test]
fn distributed_cg_matches_sequential() {
    let parts = 8;
    let problem = cg_problem(parts);
    let iters = 10;
    let (x_seq, rs_seq) = cg_seq(&problem.matrix, &problem.rhs, iters);
    let rs0: f64 = problem.rhs.iter().map(|v| v * v).sum();
    assert!(
        rs_seq < rs0 / 1e3,
        "CG must make progress: {rs0} -> {rs_seq}"
    );

    for alg in [IrregularAlg::Gs, IrregularAlg::Bs] {
        let schedule = alg.schedule(&problem.pattern);
        let sim = Simulation::new(parts, MachineParams::cm5_1992());
        let (report, results) = sim
            .run_nodes_collect(|node| distributed_cg(node, &problem, &schedule, iters))
            .unwrap();
        assert!(report.makespan.as_millis_f64() > 0.0);
        // Assemble the distributed solution.
        let mut x_dist = vec![f64::NAN; problem.rhs.len()];
        for (owned, values, rs_dist) in &results {
            for (&v, &val) in owned.iter().zip(values.iter()) {
                x_dist[v] = val;
            }
            let rel = (rs_dist - rs_seq).abs() / rs_seq.max(1e-300);
            assert!(rel < 1e-6, "{}: residual mismatch {rel}", alg.name());
        }
        let mut worst = 0.0f64;
        for (a, b) in x_dist.iter().zip(&x_seq) {
            assert!(a.is_finite(), "unassigned vertex");
            worst = worst.max((a - b).abs());
        }
        assert!(
            worst < 1e-8,
            "{}: max solution deviation {worst}",
            alg.name()
        );
    }
}

/// Distributed Euler surrogate is bit-identical to the sequential
/// iteration on owned vertices (the two-ring halo is exactly sufficient),
/// regardless of which scheduler carries the halo exchange.
#[test]
fn distributed_euler_matches_sequential_bitwise() {
    let parts = 8;
    let problem = euler_problem(545, parts);
    let iters = 4;
    let reference = euler_seq(&problem, iters);
    let vars = cm5_workloads::EULER_VARS;
    for alg in IrregularAlg::ALL {
        let schedule = alg.schedule(&problem.pattern);
        let sim = Simulation::new(parts, MachineParams::cm5_1992());
        let (_, results) = sim
            .run_nodes_collect(|node| distributed_euler(node, &problem, &schedule, iters))
            .unwrap();
        let mut checked = 0;
        for (owned, values) in &results {
            for (oi, &v) in owned.iter().enumerate() {
                for k in 0..vars {
                    let got = values[oi * vars + k];
                    let want = reference[v * vars + k];
                    assert!(
                        got == want,
                        "{}: vertex {v} var {k}: {got} != {want} (bitwise)",
                        alg.name()
                    );
                    checked += 1;
                }
            }
        }
        assert_eq!(checked, problem.vertices * vars, "{}", alg.name());
    }
}

/// The crystal router also carries the Euler halo exchange correctly —
/// store-and-forward routing is transparent to the solver.
#[test]
fn distributed_euler_via_crystal_payload_routing() {
    use bytes::Bytes;
    use cm5_core::irregular::crystal_route_payload;
    // Route the pattern's messages once through the crystal router and
    // check content integrity (the solver itself uses schedules; this
    // verifies the alternative transport end-to-end on a real pattern).
    let parts = 8;
    let problem = euler_problem(545, parts);
    let pattern = problem.pattern.clone();
    let sim = Simulation::new(parts, MachineParams::cm5_1992());
    let (_, results) = sim
        .run_nodes_collect(|node| {
            let me = node.id();
            let outgoing: Vec<Option<Bytes>> = (0..parts)
                .map(|j| {
                    (j != me && pattern.get(me, j) > 0)
                        .then(|| Bytes::from(vec![me as u8 ^ 0x5A, j as u8, 0x42]))
                })
                .collect();
            crystal_route_payload(node, &outgoing)
        })
        .unwrap();
    for (me, incoming) in results.iter().enumerate() {
        for (j, slot) in incoming.iter().enumerate().take(parts) {
            if j != me && pattern.get(j, me) > 0 {
                let data = slot.as_ref().expect("message delivered");
                assert_eq!(data.as_ref(), &[j as u8 ^ 0x5A, me as u8, 0x42]);
            }
        }
    }
}

/// Table 12's qualitative result on the real patterns: greedy wins (all
/// the real densities are below 50 %), linear loses badly.
#[test]
fn table12_orderings_on_real_patterns() {
    let params = MachineParams::cm5_1992();
    for &verts in &[545usize, 2048] {
        let pattern = cm5_workloads::euler_pattern(verts, 32);
        assert!(pattern.density() < 0.5, "verts={verts}");
        let mut times = Vec::new();
        for alg in IrregularAlg::ALL {
            let t = run_schedule(&alg.schedule(&pattern), &params)
                .unwrap()
                .makespan;
            times.push((alg, t));
        }
        let t = |a: IrregularAlg| times.iter().find(|(x, _)| *x == a).unwrap().1;
        assert!(
            t(IrregularAlg::Gs) <= t(IrregularAlg::Ps)
                && t(IrregularAlg::Gs) <= t(IrregularAlg::Bs),
            "verts={verts}: greedy must win: {times:?}"
        );
        assert!(
            t(IrregularAlg::Ls).as_nanos() > 2 * t(IrregularAlg::Gs).as_nanos(),
            "verts={verts}: linear must lose badly: {times:?}"
        );
    }
}

/// The partition actually balances load for the Table 12 configurations.
#[test]
fn partitions_balanced() {
    let mesh = euler_mesh(2048);
    for parts in [8usize, 32] {
        let asg = noisy_strips(mesh.points(), parts, 3.0 * 46.0 / parts as f64, 1);
        let sizes = part_sizes(&asg, parts);
        let (lo, hi) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
        assert!(hi - lo <= 1, "parts={parts}: {lo}..{hi}");
    }
}
