//! The distributed 2-D FFT is numerically identical to the sequential
//! reference for every transpose algorithm, and its simulated cost behaves
//! like Table 5.

use cm5_core::regular::ExchangeAlg;
use cm5_sim::{MachineParams, Simulation};
use cm5_workloads::fft::{distributed_fft2d, fft2d_programs, fft2d_seq, transpose_square, C64};

fn test_array(n: usize, seed: u64) -> Vec<C64> {
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).max(3);
    let mut next = || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    (0..n * n).map(|_| C64::new(next(), next())).collect()
}

fn check_distributed(alg: ExchangeAlg, p: usize, n: usize) {
    let input = test_array(n, 1234);
    // Sequential reference, transposed (the distributed result convention).
    let mut reference = input.clone();
    fft2d_seq(&mut reference, n);
    transpose_square(&mut reference, n);

    let sim = Simulation::new(p, MachineParams::cm5_1992());
    let rows = n / p;
    let (report, results) = sim
        .run_nodes_collect(|node| {
            let me = node.id();
            let local = &input[me * rows * n..(me + 1) * rows * n];
            distributed_fft2d(node, alg, n, local)
        })
        .unwrap();
    assert!(report.makespan.as_nanos() > 0);
    for (me, local_out) in results.iter().enumerate() {
        let expect = &reference[me * rows * n..(me + 1) * rows * n];
        for (k, (a, b)) in local_out.iter().zip(expect).enumerate() {
            assert!(
                (a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9,
                "{} p={p} n={n}: node {me} element {k}: {a:?} vs {b:?}",
                alg.name()
            );
        }
    }
}

#[test]
fn distributed_fft_matches_reference_all_algorithms() {
    for alg in ExchangeAlg::ALL {
        check_distributed(alg, 8, 64);
    }
}

#[test]
fn distributed_fft_larger_machine() {
    check_distributed(ExchangeAlg::Bex, 16, 128);
    check_distributed(ExchangeAlg::Rex, 16, 128);
}

/// Table 5's qualitative content on the cost model: Linear is far worst;
/// the other three are close, with compute dominating.
#[test]
fn table5_cost_model_orderings() {
    let params = MachineParams::cm5_1992();
    let n = 256;
    let p = 32;
    let mut times = Vec::new();
    for alg in ExchangeAlg::ALL {
        let programs = fft2d_programs(alg, p, n, 8);
        let r = Simulation::new(p, params.clone())
            .run_ops(&programs)
            .unwrap();
        times.push((alg, r.makespan));
    }
    let t = |a: ExchangeAlg| times.iter().find(|(x, _)| *x == a).unwrap().1;
    assert!(
        t(ExchangeAlg::Lex) > t(ExchangeAlg::Pex),
        "Linear must be slowest"
    );
    // Paper Table 5, 256² on 32 procs: Linear/Balanced = 0.215/0.114 ≈ 1.9×
    // (compute dominates at this size). Require at least 1.4×.
    assert!(t(ExchangeAlg::Lex).as_nanos() * 10 > 14 * t(ExchangeAlg::Bex).as_nanos());
    // Pairwise / Balanced / Recursive within a small factor of each other
    // at this size (Table 5 shows them within ~10 % at 32 procs, 256²).
    let fastest = [ExchangeAlg::Pex, ExchangeAlg::Rex, ExchangeAlg::Bex]
        .iter()
        .map(|&a| t(a))
        .min()
        .unwrap();
    let slowest = [ExchangeAlg::Pex, ExchangeAlg::Rex, ExchangeAlg::Bex]
        .iter()
        .map(|&a| t(a))
        .max()
        .unwrap();
    assert!(
        slowest.as_nanos() < 3 * fastest.as_nanos(),
        "non-linear algorithms should be comparable: {fastest} .. {slowest}"
    );
}

/// More processors make the same FFT faster (strong scaling holds in the
/// model, as in Table 5's 32 → 256 columns).
#[test]
fn fft_strong_scaling() {
    let params = MachineParams::cm5_1992();
    let n = 512;
    let t32 = Simulation::new(32, params.clone())
        .run_ops(&fft2d_programs(ExchangeAlg::Pex, 32, n, 8))
        .unwrap()
        .makespan;
    let t128 = Simulation::new(128, params)
        .run_ops(&fft2d_programs(ExchangeAlg::Pex, 128, n, 8))
        .unwrap()
        .makespan;
    assert!(
        t128.as_nanos() * 2 < t32.as_nanos(),
        "128 procs {t128} should be >2x faster than 32 procs {t32}"
    );
}
