//! Property tests for the `cm5-model` Advisor.
//!
//! The advisor sits on the runtime path (`--alg auto`, the workloads
//! inspector), so two properties are load-bearing:
//!
//! * **Purity** — `recommend` is a function of `(workload, machine,
//!   tree)` alone: re-asking, with or without a cache between the calls,
//!   returns the identical `Recommendation`.
//! * **Cache transparency** — the memoized path never changes an answer
//!   relative to the uncached computation, for any workload, including
//!   workloads that collide in the same quantized `DecisionKey` bucket.

use cm5_core::prelude::*;
use cm5_model::prelude::*;
use cm5_sim::{FatTree, MachineParams};
use proptest::prelude::*;

/// All three workload families over power-of-two machines (8..=256
/// nodes; irregular patterns capped at 32, the paper's partition size).
fn any_workload() -> impl Strategy<Value = Workload> {
    (0u8..3, 3usize..9, 0u64..16384, 0.05f64..0.9, any::<u64>()).prop_map(
        |(kind, k, bytes, density, seed)| {
            let n = 1usize << k;
            match kind {
                0 => Workload::Exchange {
                    n,
                    bytes: bytes % 4096,
                },
                1 => Workload::Broadcast { n, bytes },
                _ => {
                    let n = n.min(32);
                    let pattern = Pattern::seeded_random(n, density, bytes % 2048 + 1, seed);
                    Workload::Irregular(PatternStats::of(&pattern, &FatTree::new(n)))
                }
            }
        },
    )
}

fn machines() -> impl Strategy<Value = MachineParams> {
    (0u8..3).prop_map(|i| match i {
        0 => MachineParams::cm5_1992(),
        1 => MachineParams::cm5_vector_1993(),
        _ => MachineParams::cm5_1992_buffered(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same inputs, fresh advisors, repeated queries: one answer.
    #[test]
    fn recommend_is_pure(w in any_workload(), params in machines()) {
        let tree = FatTree::new(w.nodes());
        let a = Advisor::new().recommend(&w, &params, &tree);
        let b = Advisor::new().recommend(&w, &params, &tree);
        prop_assert_eq!(&a, &b);
        let advisor = Advisor::new();
        let first = advisor.recommend(&w, &params, &tree);
        let second = advisor.recommend(&w, &params, &tree);
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(&a, &first);
    }

    /// The decision cache never changes an answer vs the uncached path,
    /// even after the cache has been warmed by other workloads.
    #[test]
    fn cache_is_transparent(
        ws in prop::collection::vec(any_workload(), 1..6),
        params in machines(),
    ) {
        let advisor = Advisor::new();
        for w in &ws {
            let tree = FatTree::new(w.nodes());
            let cached = advisor.recommend(w, &params, &tree);
            let uncached = Advisor::recommend_uncached(w, &params, &tree);
            prop_assert_eq!(&cached, &uncached);
        }
        // Replay in reverse: every query now hits the warm cache and
        // must still match the pure computation.
        for w in ws.iter().rev() {
            let tree = FatTree::new(w.nodes());
            let cached = advisor.recommend(w, &params, &tree);
            let uncached = Advisor::recommend_uncached(w, &params, &tree);
            prop_assert_eq!(&cached, &uncached);
        }
    }

    /// Sharding the decision cache is invisible: any shard count returns
    /// bit-identical answers to the single-shard advisor and the uncached
    /// path, and the aggregate entry/query counts are shard-independent.
    #[test]
    fn sharding_is_transparent(
        ws in prop::collection::vec(any_workload(), 1..6),
        params in machines(),
        shards in 1usize..16,
    ) {
        let reference = Advisor::new();
        let sharded = Advisor::with_shards(shards);
        prop_assert_eq!(sharded.shard_count(), shards);
        for w in ws.iter().chain(ws.iter().rev()) {
            let tree = FatTree::new(w.nodes());
            let a = sharded.recommend(w, &params, &tree);
            prop_assert_eq!(&a, &reference.recommend(w, &params, &tree));
            prop_assert_eq!(&a, &Advisor::recommend_uncached(w, &params, &tree));
        }
        // Entry and query totals are a function of the query stream
        // alone, not of how the cache is split.
        prop_assert_eq!(sharded.cache_len(), reference.cache_len());
        prop_assert_eq!(sharded.cache_queries(), reference.cache_queries());
        let stats = sharded.shard_stats();
        prop_assert_eq!(stats.len(), shards);
        prop_assert_eq!(stats.iter().map(|s| s.entries).sum::<usize>(), sharded.cache_len());
        prop_assert_eq!(stats.iter().map(|s| s.queries).sum::<u64>(), sharded.cache_queries());
    }

    /// The pick is always a member of the candidate list, the list is
    /// sorted by predicted time, and the margin matches the top two.
    #[test]
    fn recommendation_is_internally_consistent(w in any_workload(), params in machines()) {
        let tree = FatTree::new(w.nodes());
        let rec = Advisor::new().recommend(&w, &params, &tree);
        prop_assert_eq!(rec.candidates[0].0, rec.algorithm);
        prop_assert_eq!(rec.candidates[0].1, rec.predicted);
        for pair in rec.candidates.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].1, "candidates sorted");
        }
        match rec.runner_up {
            Some(ru) => {
                prop_assert_eq!(rec.candidates[1].0, ru);
                prop_assert!(rec.margin >= 0.0);
            }
            None => prop_assert_eq!(rec.candidates.len(), 1),
        }
    }
}
