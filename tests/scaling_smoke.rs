//! Time-bounded scaling smoke tests: the simulator two orders of magnitude
//! past the paper's 256 nodes.
//!
//! Three claims are pinned. First, the Figure 5 *winner shapes* survive
//! scaling: in the latency-bound regime REX's O(log N) steps beat PEX's and
//! LEX's O(N) steps, at 64 nodes (debug) and at 1024 nodes (release-only —
//! a full PEX at that size is a million messages). Second, `SimPerf`
//! ceilings: rate recomputes grow sub-quadratically in N (they track
//! completion instants, not pairs), and the event count stays proportional
//! to messages. Third, wall-clock bounds: a 4096-node REX and a truncated
//! 16384-node PEX complete in seconds under the hierarchical solver.
//!
//! Every large run uses `--rates hierarchical`; the differential wall in
//! `tests/solver_hierarchy_equiv.rs` guarantees the numbers asserted here
//! are exactly the numbers the oracle solvers would produce.

use std::time::{Duration, Instant};

use cm5_core::prelude::*;
use cm5_sim::{MachineParams, RateSolver, SimReport};

fn hierarchical_params() -> MachineParams {
    let mut p = MachineParams::cm5_1992();
    p.rate_solver = RateSolver::Hierarchical;
    p
}

fn run_exchange(alg: ExchangeAlg, n: usize, bytes: u64) -> SimReport {
    run_schedule(&alg.schedule(n, bytes), &hierarchical_params())
        .unwrap_or_else(|e| panic!("{} n={n} bytes={bytes}: {e}", alg.name()))
}

/// Figure 5's latency-bound winner ordering at 64 nodes (debug-feasible):
/// REX < PEX < LEX in simulated makespan for empty messages.
#[test]
fn fig5_latency_ordering_holds_at_64() {
    let rex = run_exchange(ExchangeAlg::Rex, 64, 0).makespan;
    let pex = run_exchange(ExchangeAlg::Pex, 64, 0).makespan;
    let lex = run_exchange(ExchangeAlg::Lex, 64, 0).makespan;
    assert!(rex < pex, "REX {rex} must beat PEX {pex} latency-bound");
    assert!(pex < lex, "PEX {pex} must beat LEX {lex} latency-bound");
}

/// REX at 1024 nodes: completes within a wall-clock budget even in a debug
/// build, and the engine's work stays proportional to the traffic.
#[test]
fn rex_1024_is_time_bounded() {
    let start = Instant::now();
    let r = run_exchange(ExchangeAlg::Rex, 1024, 256);
    let wall = start.elapsed();
    assert!(
        wall < Duration::from_secs(120),
        "REX@1024 took {wall:?}; the hot path has regressed badly"
    );
    assert!(r.makespan.as_nanos() > 0);
    assert!(r.messages > 0);
    // Events per message is a small constant (send/recv/flow bookkeeping),
    // not a function of N.
    assert!(
        r.perf.events < 40 * r.messages,
        "{} events for {} messages",
        r.perf.events,
        r.messages
    );
}

/// Rate recomputes grow sub-quadratically in N. A recompute happens per
/// batch of same-instant mutations, so for a fixed algorithm it tracks the
/// step structure, not the pair count: quadrupling N from 256 to 1024 must
/// not even double the per-message recompute budget, let alone square it.
#[test]
fn recomputes_grow_subquadratically() {
    let small = run_exchange(ExchangeAlg::Rex, 256, 64);
    let large = run_exchange(ExchangeAlg::Rex, 1024, 64);
    let n_ratio = 1024.0 / 256.0;
    let recompute_ratio = large.perf.recomputes as f64 / small.perf.recomputes as f64;
    assert!(
        recompute_ratio < n_ratio * n_ratio / 2.0,
        "recomputes grew {recompute_ratio:.1}x for a {n_ratio}x machine \
         (quadratic would be {:.0}x)",
        n_ratio * n_ratio
    );
    // Tighter in practice: recomputes track messages (which grow ~N log N
    // for REX), never pairs (N²).
    let msg_ratio = large.messages as f64 / small.messages as f64;
    assert!(
        recompute_ratio < 2.0 * msg_ratio,
        "recomputes ({recompute_ratio:.1}x) outgrew traffic ({msg_ratio:.1}x)"
    );
}

/// Release-only large-N cells: full 1024-node exchanges and a 4096-node
/// REX. A debug build runs these an order of magnitude slower, and the
/// tier-1 suite must stay fast, so the assertions compile away there.
#[cfg(not(debug_assertions))]
mod release_only {
    use super::*;

    /// Figure 5's latency-bound ordering at 1024 nodes — two levels deeper
    /// than the paper's largest machine.
    #[test]
    fn fig5_latency_ordering_holds_at_1024() {
        let start = Instant::now();
        let rex = run_exchange(ExchangeAlg::Rex, 1024, 0).makespan;
        let pex = run_exchange(ExchangeAlg::Pex, 1024, 0).makespan;
        let lex = run_exchange(ExchangeAlg::Lex, 1024, 0).makespan;
        assert!(rex < pex, "REX {rex} must beat PEX {pex} at 1024 nodes");
        assert!(pex < lex, "PEX {pex} must beat LEX {lex} at 1024 nodes");
        assert!(
            start.elapsed() < Duration::from_secs(120),
            "1024-node Fig-5 sweep took {:?}",
            start.elapsed()
        );
    }

    /// In the bandwidth-bound regime the balanced exchange keeps its edge
    /// over naive LEX at 256 nodes — the paper's largest machine (full
    /// bandwidth-bound exchanges at 1024 are minutes of host time and
    /// belong to `report perf`, not a smoke test).
    #[test]
    fn fig5_bandwidth_shape_holds_at_256() {
        let bex = run_exchange(ExchangeAlg::Bex, 256, 1920).makespan;
        let lex = run_exchange(ExchangeAlg::Lex, 256, 1920).makespan;
        assert!(bex < lex, "BEX {bex} must beat LEX {lex} bandwidth-bound");
    }

    /// 4096-node REX completes in seconds; recomputes keep tracking steps.
    #[test]
    fn rex_4096_completes_in_seconds() {
        let start = Instant::now();
        let r = run_exchange(ExchangeAlg::Rex, 4096, 256);
        let wall = start.elapsed();
        assert!(wall < Duration::from_secs(60), "REX@4096 took {wall:?}");
        assert!(r.messages > 0);
        assert!(r.perf.events < 40 * r.messages);
    }

    /// The acceptance bar from the roadmap: a 16384-node PEX sweep (the
    /// truncated stride slice the perf grid uses — a full PEX is 268M
    /// messages and belongs to no smoke test) completes in seconds.
    #[test]
    fn pex_slice_16384_completes_in_seconds() {
        use cm5_sim::{Op, Simulation};
        let n = 16384usize;
        let strides = [1usize, 2, 3, n / 4, n / 2, n / 2 + 1];
        let mut programs: Vec<Vec<Op>> = (0..n)
            .map(|_| Vec::with_capacity(2 * strides.len()))
            .collect();
        for (step, &j) in strides.iter().enumerate() {
            let tag = step as u32;
            for (i, prog) in programs.iter_mut().enumerate() {
                let partner = i ^ j;
                let send = Op::Send {
                    to: partner,
                    bytes: 1024,
                    tag,
                };
                let recv = Op::Recv { from: partner, tag };
                if i < partner {
                    prog.push(send);
                    prog.push(recv);
                } else {
                    prog.push(recv);
                    prog.push(send);
                }
            }
        }
        let start = Instant::now();
        let r = Simulation::new(n, hierarchical_params())
            .run_ops(&programs)
            .unwrap();
        let wall = start.elapsed();
        assert!(
            wall < Duration::from_secs(10),
            "PEX slice @16384 took {wall:?}; 'completes in seconds' has regressed"
        );
        assert_eq!(r.messages, (strides.len() * n) as u64);
        assert!(r.root_crossings > 0, "global strides must cross the root");
    }
}
