//! Irregular schedulers end-to-end: coverage on random patterns
//! (property-based), and the §4.5 performance claims on the simulator.

use cm5_core::prelude::*;
use cm5_sim::{MachineParams, SimDuration};
use cm5_workloads::synthetic::synthetic_pattern_exact;
use proptest::prelude::*;

fn run_irregular(alg: IrregularAlg, pattern: &Pattern) -> SimDuration {
    run_schedule(&alg.schedule(pattern), &MachineParams::cm5_1992())
        .unwrap_or_else(|e| panic!("{}: {e}", alg.name()))
        .makespan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every scheduler covers every random pattern exactly (bytes preserved
    /// pair-for-pair), and the pairing-based ones stay conflict-free.
    #[test]
    fn schedulers_cover_random_patterns(
        seed in 0u64..5000,
        density in 0.02f64..0.9,
        msg in 1u64..4096,
    ) {
        let pattern = synthetic_pattern_exact(16, density, msg, seed);
        for alg in IrregularAlg::ALL {
            let s = alg.schedule(&pattern);
            prop_assert!(s.check_nodes().is_ok());
            prop_assert!(s.check_coverage(&pattern).is_ok(), "{}", alg.name());
            // PS/BS steps are disjoint pairings. LS fans into one receiver
            // by design; GS allows a node to send to one peer and receive
            // from another in the same step (Table 10, step 3), so neither
            // is expected to pass the disjointness check.
            if matches!(alg, IrregularAlg::Ps | IrregularAlg::Bs) {
                prop_assert!(s.check_pairwise_disjoint().is_ok(), "{}", alg.name());
            }
        }
    }

    /// Greedy never needs more steps than pattern-driven pairwise... not
    /// true in general past 50% density (the paper's point!), but below it
    /// greedy should be at least as compact.
    #[test]
    fn greedy_compact_at_low_density(seed in 0u64..2000) {
        let pattern = synthetic_pattern_exact(32, 0.15, 256, seed);
        let g = gs(&pattern).num_steps();
        let p = ps(&pattern).num_steps();
        prop_assert!(g <= p + 1, "greedy {g} vs pairwise {p}");
    }

    /// Schedules run to completion on the simulator (no deadlock) for any
    /// random pattern.
    #[test]
    fn schedules_run_without_deadlock(seed in 0u64..300, density in 0.05f64..0.8) {
        let pattern = synthetic_pattern_exact(8, density, 128, seed);
        for alg in IrregularAlg::ALL {
            let r = run_schedule(&alg.schedule(&pattern), &MachineParams::cm5_1992());
            prop_assert!(r.is_ok(), "{}: {:?}", alg.name(), r.err());
        }
    }
}

/// Mean makespan over a few seeds (individual random patterns are noisy,
/// like the paper's own synthetic patterns).
fn mean_irregular(alg: IrregularAlg, density: f64, msg: u64) -> f64 {
    let seeds = 5;
    let mut total = 0.0;
    for seed in 0..seeds {
        let pattern = synthetic_pattern_exact(32, density, msg, 0x7AB1E + seed);
        total += run_irregular(alg, &pattern).as_millis_f64();
    }
    total / seeds as f64
}

/// Table 11's qualitative results: LS worst everywhere; GS best below 50 %
/// density; the structured schedules overtake greedy at 75 %.
#[test]
fn table11_orderings() {
    for &msg in &[256u64, 512] {
        for &density in &[0.10f64, 0.25] {
            let ls_t = mean_irregular(IrregularAlg::Ls, density, msg);
            let ps_t = mean_irregular(IrregularAlg::Ps, density, msg);
            let bs_t = mean_irregular(IrregularAlg::Bs, density, msg);
            let gs_t = mean_irregular(IrregularAlg::Gs, density, msg);
            assert!(
                ls_t > 1.5 * ps_t && ls_t > 1.5 * bs_t && ls_t > 1.5 * gs_t,
                "d={density} m={msg}: LS must be worst (L={ls_t} P={ps_t} B={bs_t} G={gs_t})"
            );
            assert!(
                gs_t <= ps_t && gs_t <= bs_t,
                "d={density} m={msg}: greedy must win at low density \
                 (GS {gs_t} PS {ps_t} BS {bs_t})"
            );
        }
        // At 75 % greedy's ad-hoc pairings need more steps: it loses to
        // both structured schedules.
        let ps_t = mean_irregular(IrregularAlg::Ps, 0.75, msg);
        let bs_t = mean_irregular(IrregularAlg::Bs, 0.75, msg);
        let gs_t = mean_irregular(IrregularAlg::Gs, 0.75, msg);
        assert!(
            bs_t < gs_t && ps_t < gs_t,
            "m={msg}: structured must beat greedy at 75 % \
             (BS {bs_t} PS {ps_t} GS {gs_t})"
        );
    }
}

/// The paper's pattern P runs end-to-end under all four schedulers with the
/// step counts of Tables 7–10.
#[test]
fn paper_pattern_p_end_to_end() {
    let pattern = Pattern::paper_pattern_p(256);
    let expected_steps = [
        (IrregularAlg::Ls, 8),
        (IrregularAlg::Ps, 6),
        (IrregularAlg::Bs, 7),
        (IrregularAlg::Gs, 6),
    ];
    for (alg, steps) in expected_steps {
        let s = alg.schedule(&pattern);
        assert_eq!(s.num_steps(), steps, "{}", alg.name());
        let r = run_schedule(&s, &MachineParams::cm5_1992()).unwrap();
        assert_eq!(r.payload_bytes, pattern.total_bytes(), "{}", alg.name());
    }
}

/// Creating the schedule once and reusing it across iterations (the
/// paper's amortization argument): repeated runs cost the same.
#[test]
fn schedule_reuse_is_stable() {
    let pattern = synthetic_pattern_exact(32, 0.3, 512, 5);
    let schedule = gs(&pattern);
    let params = MachineParams::cm5_1992();
    let t1 = run_schedule(&schedule, &params).unwrap().makespan;
    let t2 = run_schedule(&schedule, &params).unwrap().makespan;
    assert_eq!(t1, t2);
}
