//! Bit-for-bit determinism of the simulator and the parallel sweep
//! executor.
//!
//! The paper's evaluation is only reproducible if the simulated numbers
//! are a pure function of the configuration: same grid cell → same
//! `SimReport`, regardless of how many worker threads computed it or how
//! the OS scheduled them. These tests pin that guarantee at three levels:
//! one simulation re-run, a grid swept at different `--jobs` values, and
//! a property test over random configurations.

use cm5_bench::sweep::{
    exchange_report, irregular_report, run_irregular_grid, ExchangeCell, IrregularCell, SweepRunner,
};
use cm5_core::prelude::*;
use cm5_sim::{MachineParams, RateSolver, SimReport, Simulation};
use proptest::prelude::*;

/// Exact comparison of every deterministic `SimReport` field (the trace is
/// compared only when both sides recorded one).
fn assert_reports_identical(a: &SimReport, b: &SimReport, what: &str) {
    assert_eq!(a.makespan, b.makespan, "{what}: makespan");
    assert_eq!(a.messages, b.messages, "{what}: messages");
    assert_eq!(a.payload_bytes, b.payload_bytes, "{what}: payload_bytes");
    assert_eq!(a.wire_bytes, b.wire_bytes, "{what}: wire_bytes");
    assert_eq!(a.root_crossings, b.root_crossings, "{what}: root_crossings");
    assert_eq!(a.collectives, b.collectives, "{what}: collectives");
    // bytes_per_level is f64 but must match to the bit: both sides
    // executed the same arithmetic in the same order.
    assert_eq!(
        a.bytes_per_level, b.bytes_per_level,
        "{what}: bytes_per_level"
    );
    assert_eq!(a.nodes.len(), b.nodes.len(), "{what}: node count");
}

/// A small but representative exchange grid: every algorithm, two machine
/// sizes, three message regimes (latency-bound, mixed, bandwidth-bound).
fn test_exchange_cells() -> Vec<ExchangeCell> {
    let mut cells = Vec::new();
    for &n in &[8usize, 32] {
        for &bytes in &[0u64, 256, 1920] {
            for alg in ExchangeAlg::ALL {
                cells.push(ExchangeCell { alg, n, bytes });
            }
        }
    }
    cells
}

#[test]
fn sweep_output_is_identical_for_any_job_count() {
    let cells = test_exchange_cells();
    let baseline = SweepRunner::new(1).run(&cells, |_, &c| exchange_report(c));
    for jobs in [4usize, 8] {
        let par = SweepRunner::new(jobs).run(&cells, |_, &c| exchange_report(c));
        assert_eq!(baseline.len(), par.len());
        for ((cell, a), b) in cells.iter().zip(&baseline).zip(&par) {
            assert_reports_identical(
                a,
                b,
                &format!(
                    "jobs={jobs} {:?} n={} bytes={}",
                    cell.alg, cell.n, cell.bytes
                ),
            );
        }
    }
}

/// Parallel sweeps under the (default) incremental rate solver still land
/// exactly on the pinned Figure 5 numbers, at every `--jobs` value. This
/// closes the loop the per-run goldens can't: a solver or executor change
/// that shifted results only under parallel execution would slip past
/// `golden_experiments` (single-threaded) and past the jobs-vs-jobs
/// comparison above (both sides equally wrong).
#[test]
fn parallel_sweeps_match_pinned_fig5_numbers() {
    // (n, bytes, alg, expected ms) from Figure 5 of the paper, as pinned
    // by tests/golden_experiments.rs.
    let pinned: &[(usize, u64, ExchangeAlg, f64)] = &[
        (32, 0, ExchangeAlg::Lex, 38.230),
        (32, 0, ExchangeAlg::Pex, 3.100),
        (32, 0, ExchangeAlg::Rex, 0.504),
        (32, 0, ExchangeAlg::Bex, 3.100),
        (32, 1920, ExchangeAlg::Lex, 220.776),
        (32, 1920, ExchangeAlg::Pex, 25.196),
        (32, 1920, ExchangeAlg::Rex, 71.136),
        (32, 1920, ExchangeAlg::Bex, 23.417),
        (64, 0, ExchangeAlg::Rex, 0.608),
    ];
    let cells: Vec<ExchangeCell> = pinned
        .iter()
        .map(|&(n, bytes, alg, _)| ExchangeCell { alg, n, bytes })
        .collect();
    for jobs in [1usize, 4] {
        let reports = SweepRunner::new(jobs).run(&cells, |_, &c| exchange_report(c));
        for (&(n, bytes, alg, expect_ms), report) in pinned.iter().zip(&reports) {
            let got_ms = report.makespan.as_secs_f64() * 1e3;
            assert!(
                (got_ms - expect_ms).abs() < 1e-3,
                "jobs={jobs} {alg:?} n={n} bytes={bytes}: \
                 got {got_ms:.3} ms, pinned {expect_ms:.3} ms"
            );
        }
    }
}

#[test]
fn irregular_sweep_is_identical_for_any_job_count() {
    let densities = [0.1, 0.5];
    let msgs = [64u64, 512];
    let serial = run_irregular_grid(&SweepRunner::new(1), &densities, &msgs);
    let par = run_irregular_grid(&SweepRunner::new(8), &densities, &msgs);
    assert_eq!(serial.len(), par.len());
    for ((ca, a), (cb, b)) in serial.iter().zip(&par) {
        assert_eq!(ca, cb, "grid order must not depend on job count");
        assert_reports_identical(
            a,
            b,
            &format!(
                "{:?} density={} msg={} seed={}",
                ca.alg, ca.density, ca.msg, ca.seed
            ),
        );
    }
}

#[test]
fn single_irregular_cell_reruns_identically() {
    let cell = IrregularCell {
        alg: IrregularAlg::Gs,
        density: 0.3,
        msg: 256,
        seed: 2,
    };
    let a = irregular_report(cell);
    let b = irregular_report(cell);
    assert_reports_identical(&a, &b, "irregular re-run");
}

#[test]
fn traces_are_identical_across_reruns() {
    let schedule = ExchangeAlg::Bex.schedule(8, 256);
    let programs = lower(&schedule);
    let run = || {
        Simulation::new(8, MachineParams::cm5_1992())
            .record_trace(true)
            .run_ops(&programs)
            .unwrap()
    };
    let (a, b) = (run(), run());
    assert_reports_identical(&a, &b, "traced run");
    assert_eq!(a.trace.len(), b.trace.len());
    assert_eq!(a.trace, b.trace, "event traces must match event-for-event");
}

/// Turning the observability sinks on (event trace + rate samples, the
/// `cm5 trace` configuration) must leave every simulated result — makespan,
/// traffic totals, per-node accounting — bit-identical to a plain run.
/// Recording is observation, never perturbation.
#[test]
fn observability_does_not_perturb_simulated_results() {
    for &n in &[8usize, 32] {
        for &bytes in &[0u64, 256, 1920] {
            for alg in ExchangeAlg::ALL {
                let programs = lower(&alg.schedule(n, bytes));
                let params = MachineParams::cm5_1992();
                let plain = Simulation::new(n, params.clone())
                    .run_ops(&programs)
                    .unwrap();
                let observed = Simulation::new(n, params.clone())
                    .record_trace(true)
                    .record_rates(true)
                    .run_ops(&programs)
                    .unwrap();
                let what = format!("{} n={n} bytes={bytes}", alg.name());
                assert_reports_identical(&plain, &observed, &what);
                for (i, (x, y)) in plain.nodes.iter().zip(&observed.nodes).enumerate() {
                    assert_eq!(x.busy, y.busy, "{what}: node {i} busy");
                    assert_eq!(x.blocked, y.blocked, "{what}: node {i} blocked");
                    assert_eq!(x.finished_at, y.finished_at, "{what}: node {i} finish");
                    assert_eq!(x.msgs_sent, y.msgs_sent, "{what}: node {i} msgs");
                }
                assert!(plain.trace.is_empty() && plain.rate_samples.is_empty());
                if bytes > 0 {
                    assert!(!observed.trace.is_empty(), "{what}: sink recorded");
                    assert!(!observed.rate_samples.is_empty(), "{what}: rates recorded");
                }
                // A bounded ring drops old events but must not touch results.
                let bounded = Simulation::new(n, params)
                    .record_trace(true)
                    .trace_capacity(64)
                    .run_ops(&programs)
                    .unwrap();
                assert_reports_identical(&plain, &bounded, &format!("{what} (ring)"));
                assert!(bounded.trace.len() <= 64, "{what}: ring bounded");
            }
        }
    }
}

fn hierarchical_params() -> MachineParams {
    let mut p = MachineParams::cm5_1992();
    p.rate_solver = RateSolver::Hierarchical;
    p
}

/// The hierarchical solver at 1024 nodes is byte-identical across sweep
/// worker counts: the subtree-dirty bookkeeping must be a pure function of
/// the cell, never of which thread computed it or in what order.
#[test]
fn hierarchical_sweeps_are_identical_for_any_job_count() {
    // REX at 1024 nodes (an O(N log N) exchange is debug-feasible at that
    // size; full O(N²) exchanges are not) plus a full BEX at 128 for
    // contention depth.
    let cells = vec![
        ExchangeCell {
            alg: ExchangeAlg::Rex,
            n: 1024,
            bytes: 256,
        },
        ExchangeCell {
            alg: ExchangeAlg::Bex,
            n: 128,
            bytes: 64,
        },
    ];
    let params = hierarchical_params();
    let run_cell = |c: &ExchangeCell| {
        run_schedule(&c.alg.schedule(c.n, c.bytes), &params)
            .unwrap_or_else(|e| panic!("{:?} n={} bytes={}: {e}", c.alg, c.n, c.bytes))
    };
    let baseline = SweepRunner::new(1).run(&cells, |_, c| run_cell(c));
    for jobs in [4usize] {
        let par = SweepRunner::new(jobs).run(&cells, |_, c| run_cell(c));
        assert_eq!(baseline.len(), par.len());
        for ((cell, a), b) in cells.iter().zip(&baseline).zip(&par) {
            assert_reports_identical(
                a,
                b,
                &format!(
                    "hierarchical jobs={jobs} {:?} n=1024 bytes={}",
                    cell.alg, cell.bytes
                ),
            );
            // Byte-identical includes the f64 per-node timings.
            for (i, (x, y)) in a.nodes.iter().zip(&b.nodes).enumerate() {
                assert_eq!(x.busy, y.busy, "node {i} busy");
                assert_eq!(x.finished_at, y.finished_at, "node {i} finish");
            }
        }
    }
}

/// Observability sinks must not perturb the hierarchical solver at 1024
/// nodes: trace + rate recording on or off, the simulated results are
/// bit-identical (the 1024-node version of the small-N guarantee below).
#[test]
fn hierarchical_observability_is_pure_at_1024() {
    let programs = lower(&ExchangeAlg::Rex.schedule(1024, 256));
    let params = hierarchical_params();
    let plain = Simulation::new(1024, params.clone())
        .run_ops(&programs)
        .unwrap();
    let observed = Simulation::new(1024, params)
        .record_trace(true)
        .record_rates(true)
        .run_ops(&programs)
        .unwrap();
    assert_reports_identical(&plain, &observed, "hierarchical n=1024 obs on/off");
    for (i, (x, y)) in plain.nodes.iter().zip(&observed.nodes).enumerate() {
        assert_eq!(x.busy, y.busy, "node {i} busy");
        assert_eq!(x.blocked, y.blocked, "node {i} blocked");
        assert_eq!(x.finished_at, y.finished_at, "node {i} finish");
        assert_eq!(x.msgs_sent, y.msgs_sent, "node {i} msgs");
    }
    assert!(!observed.trace.is_empty());
    assert!(!observed.rate_samples.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any exchange configuration simulates to the same report twice.
    #[test]
    fn exchange_simulation_is_a_pure_function(
        alg_ix in 0usize..4,
        n_ix in 0usize..3,
        bytes in 0u64..2048,
    ) {
        let alg = ExchangeAlg::ALL[alg_ix];
        let n = [4usize, 8, 16][n_ix];
        let cell = ExchangeCell { alg, n, bytes };
        let a = exchange_report(cell);
        let b = exchange_report(cell);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.messages, b.messages);
        prop_assert_eq!(a.wire_bytes, b.wire_bytes);
        prop_assert_eq!(a.bytes_per_level, b.bytes_per_level);
    }
}
