//! Bit-for-bit determinism of the simulator and the parallel sweep
//! executor.
//!
//! The paper's evaluation is only reproducible if the simulated numbers
//! are a pure function of the configuration: same grid cell → same
//! `SimReport`, regardless of how many worker threads computed it or how
//! the OS scheduled them. These tests pin that guarantee at three levels:
//! one simulation re-run, a grid swept at different `--jobs` values, and
//! a property test over random configurations.

use cm5_bench::perf::pex_slice_programs;
use cm5_bench::sweep::{
    exchange_report, irregular_report, run_irregular_grid, ExchangeCell, IrregularCell, SweepRunner,
};
use cm5_core::prelude::*;
use cm5_sim::{
    run_tenants_jobs, MachineParams, Op, OpProgram, Placement, RateSolver, SimDuration, SimReport,
    Simulation, TenantSpec,
};
use cm5_workloads::synthetic::synthetic_pattern_exact;
use proptest::prelude::*;

/// Exact comparison of every deterministic `SimReport` field (the trace is
/// compared only when both sides recorded one).
fn assert_reports_identical(a: &SimReport, b: &SimReport, what: &str) {
    assert_eq!(a.makespan, b.makespan, "{what}: makespan");
    assert_eq!(a.messages, b.messages, "{what}: messages");
    assert_eq!(a.payload_bytes, b.payload_bytes, "{what}: payload_bytes");
    assert_eq!(a.wire_bytes, b.wire_bytes, "{what}: wire_bytes");
    assert_eq!(a.root_crossings, b.root_crossings, "{what}: root_crossings");
    assert_eq!(a.collectives, b.collectives, "{what}: collectives");
    // bytes_per_level is f64 but must match to the bit: both sides
    // executed the same arithmetic in the same order.
    assert_eq!(
        a.bytes_per_level, b.bytes_per_level,
        "{what}: bytes_per_level"
    );
    assert_eq!(a.nodes.len(), b.nodes.len(), "{what}: node count");
}

/// A small but representative exchange grid: every algorithm, two machine
/// sizes, three message regimes (latency-bound, mixed, bandwidth-bound).
fn test_exchange_cells() -> Vec<ExchangeCell> {
    let mut cells = Vec::new();
    for &n in &[8usize, 32] {
        for &bytes in &[0u64, 256, 1920] {
            for alg in ExchangeAlg::ALL {
                cells.push(ExchangeCell { alg, n, bytes });
            }
        }
    }
    cells
}

#[test]
fn sweep_output_is_identical_for_any_job_count() {
    let cells = test_exchange_cells();
    let baseline = SweepRunner::new(1).run(&cells, |_, &c| exchange_report(c));
    for jobs in [4usize, 8] {
        let par = SweepRunner::new(jobs).run(&cells, |_, &c| exchange_report(c));
        assert_eq!(baseline.len(), par.len());
        for ((cell, a), b) in cells.iter().zip(&baseline).zip(&par) {
            assert_reports_identical(
                a,
                b,
                &format!(
                    "jobs={jobs} {:?} n={} bytes={}",
                    cell.alg, cell.n, cell.bytes
                ),
            );
        }
    }
}

/// Parallel sweeps under the (default) incremental rate solver still land
/// exactly on the pinned Figure 5 numbers, at every `--jobs` value. This
/// closes the loop the per-run goldens can't: a solver or executor change
/// that shifted results only under parallel execution would slip past
/// `golden_experiments` (single-threaded) and past the jobs-vs-jobs
/// comparison above (both sides equally wrong).
#[test]
fn parallel_sweeps_match_pinned_fig5_numbers() {
    // (n, bytes, alg, expected ms) from Figure 5 of the paper, as pinned
    // by tests/golden_experiments.rs.
    let pinned: &[(usize, u64, ExchangeAlg, f64)] = &[
        (32, 0, ExchangeAlg::Lex, 38.230),
        (32, 0, ExchangeAlg::Pex, 3.100),
        (32, 0, ExchangeAlg::Rex, 0.504),
        (32, 0, ExchangeAlg::Bex, 3.100),
        (32, 1920, ExchangeAlg::Lex, 220.776),
        (32, 1920, ExchangeAlg::Pex, 25.196),
        (32, 1920, ExchangeAlg::Rex, 71.136),
        (32, 1920, ExchangeAlg::Bex, 23.417),
        (64, 0, ExchangeAlg::Rex, 0.608),
    ];
    let cells: Vec<ExchangeCell> = pinned
        .iter()
        .map(|&(n, bytes, alg, _)| ExchangeCell { alg, n, bytes })
        .collect();
    for jobs in [1usize, 4] {
        let reports = SweepRunner::new(jobs).run(&cells, |_, &c| exchange_report(c));
        for (&(n, bytes, alg, expect_ms), report) in pinned.iter().zip(&reports) {
            let got_ms = report.makespan.as_secs_f64() * 1e3;
            assert!(
                (got_ms - expect_ms).abs() < 1e-3,
                "jobs={jobs} {alg:?} n={n} bytes={bytes}: \
                 got {got_ms:.3} ms, pinned {expect_ms:.3} ms"
            );
        }
    }
}

#[test]
fn irregular_sweep_is_identical_for_any_job_count() {
    let densities = [0.1, 0.5];
    let msgs = [64u64, 512];
    let serial = run_irregular_grid(&SweepRunner::new(1), &densities, &msgs);
    let par = run_irregular_grid(&SweepRunner::new(8), &densities, &msgs);
    assert_eq!(serial.len(), par.len());
    for ((ca, a), (cb, b)) in serial.iter().zip(&par) {
        assert_eq!(ca, cb, "grid order must not depend on job count");
        assert_reports_identical(
            a,
            b,
            &format!(
                "{:?} density={} msg={} seed={}",
                ca.alg, ca.density, ca.msg, ca.seed
            ),
        );
    }
}

#[test]
fn single_irregular_cell_reruns_identically() {
    let cell = IrregularCell {
        alg: IrregularAlg::Gs,
        density: 0.3,
        msg: 256,
        seed: 2,
    };
    let a = irregular_report(cell);
    let b = irregular_report(cell);
    assert_reports_identical(&a, &b, "irregular re-run");
}

#[test]
fn traces_are_identical_across_reruns() {
    let schedule = ExchangeAlg::Bex.schedule(8, 256);
    let programs = lower(&schedule);
    let run = || {
        Simulation::new(8, MachineParams::cm5_1992())
            .record_trace(true)
            .run_ops(&programs)
            .unwrap()
    };
    let (a, b) = (run(), run());
    assert_reports_identical(&a, &b, "traced run");
    assert_eq!(a.trace.len(), b.trace.len());
    assert_eq!(a.trace, b.trace, "event traces must match event-for-event");
}

/// Turning the observability sinks on (event trace + rate samples, the
/// `cm5 trace` configuration) must leave every simulated result — makespan,
/// traffic totals, per-node accounting — bit-identical to a plain run.
/// Recording is observation, never perturbation.
#[test]
fn observability_does_not_perturb_simulated_results() {
    for &n in &[8usize, 32] {
        for &bytes in &[0u64, 256, 1920] {
            for alg in ExchangeAlg::ALL {
                let programs = lower(&alg.schedule(n, bytes));
                let params = MachineParams::cm5_1992();
                let plain = Simulation::new(n, params.clone())
                    .run_ops(&programs)
                    .unwrap();
                let observed = Simulation::new(n, params.clone())
                    .record_trace(true)
                    .record_rates(true)
                    .run_ops(&programs)
                    .unwrap();
                let what = format!("{} n={n} bytes={bytes}", alg.name());
                assert_reports_identical(&plain, &observed, &what);
                for (i, (x, y)) in plain.nodes.iter().zip(&observed.nodes).enumerate() {
                    assert_eq!(x.busy, y.busy, "{what}: node {i} busy");
                    assert_eq!(x.blocked, y.blocked, "{what}: node {i} blocked");
                    assert_eq!(x.finished_at, y.finished_at, "{what}: node {i} finish");
                    assert_eq!(x.msgs_sent, y.msgs_sent, "{what}: node {i} msgs");
                }
                assert!(plain.trace.is_empty() && plain.rate_samples.is_empty());
                if bytes > 0 {
                    assert!(!observed.trace.is_empty(), "{what}: sink recorded");
                    assert!(!observed.rate_samples.is_empty(), "{what}: rates recorded");
                }
                // A bounded ring drops old events but must not touch results.
                let bounded = Simulation::new(n, params)
                    .record_trace(true)
                    .trace_capacity(64)
                    .run_ops(&programs)
                    .unwrap();
                assert_reports_identical(&plain, &bounded, &format!("{what} (ring)"));
                assert!(bounded.trace.len() <= 64, "{what}: ring bounded");
            }
        }
    }
}

fn hierarchical_params() -> MachineParams {
    let mut p = MachineParams::cm5_1992();
    p.rate_solver = RateSolver::Hierarchical;
    p
}

/// The hierarchical solver at 1024 nodes is byte-identical across sweep
/// worker counts: the subtree-dirty bookkeeping must be a pure function of
/// the cell, never of which thread computed it or in what order.
#[test]
fn hierarchical_sweeps_are_identical_for_any_job_count() {
    // REX at 1024 nodes (an O(N log N) exchange is debug-feasible at that
    // size; full O(N²) exchanges are not) plus a full BEX at 128 for
    // contention depth.
    let cells = vec![
        ExchangeCell {
            alg: ExchangeAlg::Rex,
            n: 1024,
            bytes: 256,
        },
        ExchangeCell {
            alg: ExchangeAlg::Bex,
            n: 128,
            bytes: 64,
        },
    ];
    let params = hierarchical_params();
    let run_cell = |c: &ExchangeCell| {
        run_schedule(&c.alg.schedule(c.n, c.bytes), &params)
            .unwrap_or_else(|e| panic!("{:?} n={} bytes={}: {e}", c.alg, c.n, c.bytes))
    };
    let baseline = SweepRunner::new(1).run(&cells, |_, c| run_cell(c));
    for jobs in [4usize] {
        let par = SweepRunner::new(jobs).run(&cells, |_, c| run_cell(c));
        assert_eq!(baseline.len(), par.len());
        for ((cell, a), b) in cells.iter().zip(&baseline).zip(&par) {
            assert_reports_identical(
                a,
                b,
                &format!(
                    "hierarchical jobs={jobs} {:?} n=1024 bytes={}",
                    cell.alg, cell.bytes
                ),
            );
            // Byte-identical includes the f64 per-node timings.
            for (i, (x, y)) in a.nodes.iter().zip(&b.nodes).enumerate() {
                assert_eq!(x.busy, y.busy, "node {i} busy");
                assert_eq!(x.finished_at, y.finished_at, "node {i} finish");
            }
        }
    }
}

/// Observability sinks must not perturb the hierarchical solver at 1024
/// nodes: trace + rate recording on or off, the simulated results are
/// bit-identical (the 1024-node version of the small-N guarantee below).
#[test]
fn hierarchical_observability_is_pure_at_1024() {
    let programs = lower(&ExchangeAlg::Rex.schedule(1024, 256));
    let params = hierarchical_params();
    let plain = Simulation::new(1024, params.clone())
        .run_ops(&programs)
        .unwrap();
    let observed = Simulation::new(1024, params)
        .record_trace(true)
        .record_rates(true)
        .run_ops(&programs)
        .unwrap();
    assert_reports_identical(&plain, &observed, "hierarchical n=1024 obs on/off");
    for (i, (x, y)) in plain.nodes.iter().zip(&observed.nodes).enumerate() {
        assert_eq!(x.busy, y.busy, "node {i} busy");
        assert_eq!(x.blocked, y.blocked, "node {i} blocked");
        assert_eq!(x.finished_at, y.finished_at, "node {i} finish");
        assert_eq!(x.msgs_sent, y.msgs_sent, "node {i} msgs");
    }
    assert!(!observed.trace.is_empty());
    assert!(!observed.rate_samples.is_empty());
}

/// Every deterministic field, to the bit — including the recorded trace,
/// the drop counter of a bounded ring, the rate samples, and per-node f64
/// accounting. This is the contract the windowed parallel engine signs.
fn assert_reports_deep_identical(a: &SimReport, b: &SimReport, what: &str) {
    assert_reports_identical(a, b, what);
    assert_eq!(a.trace, b.trace, "{what}: trace");
    assert_eq!(a.trace_dropped, b.trace_dropped, "{what}: trace_dropped");
    assert_eq!(a.rate_samples, b.rate_samples, "{what}: rate_samples");
    for (i, (x, y)) in a.nodes.iter().zip(&b.nodes).enumerate() {
        assert_eq!(x.busy, y.busy, "{what}: node {i} busy");
        assert_eq!(x.blocked, y.blocked, "{what}: node {i} blocked");
        assert_eq!(x.finished_at, y.finished_at, "{what}: node {i} finish");
        assert_eq!(x.msgs_sent, y.msgs_sent, "{what}: node {i} msgs");
        assert_eq!(x.payload_sent, y.payload_sent, "{what}: node {i} payload");
    }
    // Host wall-clock aside, even the engine's counters are schedule-free.
    assert_eq!(a.perf.events, b.perf.events, "{what}: events");
    assert_eq!(a.perf.recomputes, b.perf.recomputes, "{what}: recomputes");
    assert_eq!(a.perf.flows, b.perf.flows, "{what}: flows");
}

/// The windowed engine's identity matrix: four representative workloads ×
/// all three rate solvers × sim-jobs {2, 4, 8}, each compared to the serial
/// engine (`sim_jobs = 1`) with the trace and rate sinks on.
#[test]
fn windowed_engine_matches_serial_across_solvers_and_workloads() {
    let workloads: Vec<(&str, Vec<OpProgram>)> = vec![
        (
            "pex_slice@1024",
            pex_slice_programs(1024, &[1, 2, 512, 513], |i| 128 + 16 * (i % 8) as u64),
        ),
        ("rex@128", lower(&ExchangeAlg::Rex.schedule(128, 256))),
        (
            "async_gs@32",
            lower_with(
                &gs(&synthetic_pattern_exact(32, 0.4, 256, 0xD17E)),
                &LowerOptions {
                    async_sends: true,
                    ..Default::default()
                },
            ),
        ),
        ("bex@32", lower(&ExchangeAlg::Bex.schedule(32, 512))),
    ];
    for solver in [
        RateSolver::Incremental,
        RateSolver::Hierarchical,
        RateSolver::Full,
    ] {
        let mut params = MachineParams::cm5_1992();
        params.rate_solver = solver;
        for (name, programs) in &workloads {
            let n = programs.len();
            let run = |jobs: usize| {
                Simulation::new(n, params.clone())
                    .record_trace(true)
                    .record_rates(true)
                    .sim_jobs(jobs)
                    .run_ops(programs)
                    .unwrap_or_else(|e| panic!("{name} {solver:?} jobs={jobs}: {e}"))
            };
            let serial = run(1);
            for jobs in [2usize, 4, 8] {
                let par = run(jobs);
                assert_reports_deep_identical(
                    &serial,
                    &par,
                    &format!("{name} {solver:?} jobs={jobs}"),
                );
            }
        }
    }
}

/// Striped tenants on the shared tree: the windowed engine must preserve
/// the whole-machine report *and* every per-tenant slice.
#[test]
fn windowed_engine_matches_serial_for_striped_tenants() {
    let ring = |n: usize, bytes: u64| -> Vec<OpProgram> {
        (0..n)
            .map(|i| {
                vec![
                    Op::Isend {
                        to: (i + 1) % n,
                        bytes,
                        tag: 7,
                    },
                    Op::Recv {
                        from: (i + n - 1) % n,
                        tag: 7,
                    },
                    Op::WaitAll,
                ]
            })
            .collect()
    };
    let specs = vec![
        TenantSpec {
            name: "a".to_string(),
            programs: ring(32, 1024),
        },
        TenantSpec {
            name: "b".to_string(),
            programs: ring(16, 512),
        },
        TenantSpec {
            name: "c".to_string(),
            programs: ring(16, 64),
        },
    ];
    for solver in [
        RateSolver::Incremental,
        RateSolver::Hierarchical,
        RateSolver::Full,
    ] {
        let mut params = MachineParams::cm5_1992();
        params.rate_solver = solver;
        let serial = run_tenants_jobs(64, Placement::Striped, &specs, &params, 1)
            .unwrap_or_else(|e| panic!("tenants {solver:?} serial: {e}"));
        for jobs in [2usize, 4, 8] {
            let par = run_tenants_jobs(64, Placement::Striped, &specs, &params, jobs)
                .unwrap_or_else(|e| panic!("tenants {solver:?} jobs={jobs}: {e}"));
            let what = format!("tenants {solver:?} jobs={jobs}");
            assert_reports_deep_identical(&serial.report, &par.report, &what);
            for (s, p) in serial.tenants.iter().zip(&par.tenants) {
                assert_eq!(s.makespan, p.makespan, "{what}: slice {}", s.name);
                assert_eq!(s.messages, p.messages, "{what}: slice {}", s.name);
                assert_eq!(s.payload_bytes, p.payload_bytes, "{what}: slice {}", s.name);
            }
        }
    }
}

/// A bounded trace ring under the windowed engine: merge-time drop
/// accounting must land on exactly the serial ring state.
#[test]
fn windowed_bounded_ring_matches_serial_drop_for_drop() {
    let programs = lower(&ExchangeAlg::Pex.schedule(32, 512));
    let run = |jobs: usize| {
        Simulation::new(32, MachineParams::cm5_1992())
            .record_trace(true)
            .trace_capacity(48)
            .sim_jobs(jobs)
            .run_ops(&programs)
            .unwrap()
    };
    let serial = run(1);
    assert!(serial.trace_dropped > 0, "workload must overflow the ring");
    for jobs in [2usize, 8] {
        let par = run(jobs);
        assert_eq!(serial.trace, par.trace, "jobs={jobs}: ring tail");
        assert_eq!(
            serial.trace_dropped, par.trace_dropped,
            "jobs={jobs}: drop count"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Window scheduling is invisible: for random irregular op programs,
    /// any (window width, worker count) pair produces the serial report.
    #[test]
    fn random_programs_are_window_schedule_independent(
        n_ix in 0usize..2,
        density in 0.15f64..0.7,
        bytes in 16u64..768,
        seed in 0u64..1000,
        async_sends in any::<bool>(),
        jobs in 2usize..5,
        width_ix in 0usize..4,
    ) {
        let n = [8usize, 16][n_ix];
        let pattern = synthetic_pattern_exact(n, density, bytes, 0xBEEF + seed);
        let programs = lower_with(
            &gs(&pattern),
            &LowerOptions { async_sends, ..Default::default() },
        );
        let params = MachineParams::cm5_1992();
        let serial = Simulation::new(n, params.clone())
            .record_trace(true)
            .run_ops(&programs)
            .unwrap();
        let widths = [
            Some(SimDuration::from_micros(1)),
            Some(SimDuration::from_micros(10)),
            None, // engine default: the 88 µs minimum message latency
            Some(SimDuration::from_millis(1)),
        ];
        let mut sim = Simulation::new(n, params)
            .record_trace(true)
            .sim_jobs(jobs);
        if let Some(w) = widths[width_ix] {
            sim = sim.window_width(w);
        }
        let par = sim.run_ops(&programs).unwrap();
        prop_assert_eq!(serial.makespan, par.makespan);
        prop_assert_eq!(serial.messages, par.messages);
        prop_assert_eq!(serial.wire_bytes, par.wire_bytes);
        prop_assert_eq!(&serial.trace, &par.trace);
        prop_assert_eq!(serial.perf.events, par.perf.events);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any exchange configuration simulates to the same report twice.
    #[test]
    fn exchange_simulation_is_a_pure_function(
        alg_ix in 0usize..4,
        n_ix in 0usize..3,
        bytes in 0u64..2048,
    ) {
        let alg = ExchangeAlg::ALL[alg_ix];
        let n = [4usize, 8, 16][n_ix];
        let cell = ExchangeCell { alg, n, bytes };
        let a = exchange_report(cell);
        let b = exchange_report(cell);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.messages, b.messages);
        prop_assert_eq!(a.wire_bytes, b.wire_bytes);
        prop_assert_eq!(a.bytes_per_level, b.bytes_per_level);
    }
}
