//! Invariants of the trace profile ([`cm5_sim::trace`]) and the schedule
//! shape metrics ([`cm5_core::analysis`]), checked on a known workload:
//! PEX complete exchange on 8 nodes.
//!
//! PEX at 8 nodes is small enough to reason about exactly — 7 pairwise
//! XOR steps, every node sending and receiving once per step — while
//! exercising every field of [`TraceProfile`] with real contention.

use cm5_core::prelude::*;
use cm5_sim::trace::{profile, TraceProfile};
use cm5_sim::{MachineParams, SimReport, Simulation};

const N: usize = 8;

fn traced_pex(bytes: u64) -> (SimReport, TraceProfile) {
    let schedule = ExchangeAlg::Pex.schedule(N, bytes);
    let report = Simulation::new(N, MachineParams::cm5_1992())
        .record_trace(true)
        .run_ops(&lower(&schedule))
        .expect("pex run");
    let prof = profile(&report.trace, N);
    (report, prof)
}

#[test]
fn spans_are_contiguous_and_well_formed() {
    let (_, prof) = traced_pex(512);
    assert!(!prof.spans.is_empty());
    for span in &prof.spans {
        assert!(
            span.from < span.to,
            "empty or inverted span {:?}..{:?}",
            span.from,
            span.to
        );
    }
    for pair in prof.spans.windows(2) {
        assert_eq!(
            pair[0].to, pair[1].from,
            "concurrency profile must tile time with no gaps"
        );
    }
}

#[test]
fn peak_equals_max_over_spans() {
    let (_, prof) = traced_pex(512);
    let max = prof.spans.iter().map(|s| s.concurrent).max().unwrap();
    assert_eq!(prof.peak_concurrency, max);
    // Pairwise steps run disjoint pairs concurrently.
    assert!(prof.peak_concurrency >= 2, "peak {}", prof.peak_concurrency);
    // Never more in flight than messages exist.
    assert!(prof.peak_concurrency as u64 <= N as u64 * (N as u64 - 1));
}

#[test]
fn mean_and_busy_time_recompute_from_spans() {
    let (_, prof) = traced_pex(512);
    let mut weighted = 0.0f64;
    let mut total = 0u64;
    let mut busy = 0u64;
    for s in &prof.spans {
        let dur = (s.to - s.from).as_nanos();
        total += dur;
        weighted += s.concurrent as f64 * dur as f64;
        if s.concurrent > 0 {
            busy += dur;
        }
    }
    let mean = weighted / total as f64;
    assert!(
        (prof.mean_concurrency - mean).abs() < 1e-9,
        "mean {} vs recomputed {mean}",
        prof.mean_concurrency
    );
    assert_eq!(prof.busy_network_time.as_nanos(), busy);
    assert!(busy <= total);
}

#[test]
fn pex_sends_and_receives_are_uniform() {
    // Complete exchange: every node sends to and receives from each of
    // the other N-1 nodes exactly once.
    let (report, prof) = traced_pex(256);
    assert_eq!(prof.sends_per_node, vec![(N - 1) as u64; N]);
    assert_eq!(prof.recvs_per_node, vec![(N - 1) as u64; N]);
    assert_eq!(report.messages, (N * (N - 1)) as u64);
}

#[test]
fn profile_spans_cover_every_delivery() {
    // The in-flight count integrates to (number of messages) x (mean
    // transfer duration); at minimum, total span time with traffic must
    // be positive and end no later than the makespan.
    let (report, prof) = traced_pex(1024);
    assert!(prof.busy_network_time.as_nanos() > 0);
    let last = prof.spans.last().unwrap();
    assert!(last.to <= cm5_sim::SimTime::ZERO + report.makespan);
}

#[test]
fn pex_schedule_summary_shape() {
    let schedule = ExchangeAlg::Pex.schedule(N, 256);
    let summary = ScheduleSummary::of(&schedule, &cm5_sim::FatTree::new(N));
    assert_eq!(summary.steps, N - 1, "PEX runs N-1 pairwise XOR steps");
    assert_eq!(summary.ops, N * (N - 1) / 2, "each step pairs all nodes");
    assert_eq!(summary.crossings.len(), summary.steps);
    assert_eq!(
        summary.max_crossings_per_step,
        summary.crossings.iter().copied().max().unwrap()
    );
    assert!(summary.all_global_steps <= summary.steps);
    // XOR partners with bit 2 set cross the 8-node tree's root: steps
    // 4..7 are all-global (every pair spans the two 4-node subtrees).
    assert_eq!(summary.all_global_steps, 4);
    assert_eq!(summary.idle.len(), summary.steps);
    assert_eq!(summary.mean_idle, 0.0, "complete exchange idles nobody");
}
