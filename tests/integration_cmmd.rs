//! The two engine frontends (op programs vs CMMD threads) are timing-
//! equivalent, and the CMMD collectives compose with schedules.

use bytes::Bytes;
use cm5_core::prelude::*;
use cm5_sim::{MachineParams, Simulation};

/// The same PEX exchange, written as op programs and as thread closures,
/// takes exactly the same virtual time.
#[test]
fn pex_timing_identical_across_frontends() {
    for bytes in [0u64, 256, 2048] {
        let n = 8;
        let schedule = pex(n, bytes);
        let sim = Simulation::new(n, MachineParams::cm5_1992());
        let r_ops = sim.run_ops(&lower(&schedule)).unwrap();
        let r_thr = sim
            .run_nodes(|node| {
                for j in 1..n {
                    let partner = node.id() ^ j;
                    node.swap(
                        partner,
                        (j - 1) as u32,
                        Bytes::from(vec![0u8; bytes as usize]),
                    );
                }
            })
            .unwrap();
        assert_eq!(
            r_ops.makespan, r_thr.makespan,
            "bytes={bytes}: {} vs {}",
            r_ops.makespan, r_thr.makespan
        );
        assert_eq!(r_ops.messages, r_thr.messages);
        assert_eq!(r_ops.wire_bytes, r_thr.wire_bytes);
    }
}

/// Broadcast timing matches between frontends, for all three algorithms.
#[test]
fn broadcast_timing_identical_across_frontends() {
    let n = 16;
    let root = 3;
    let bytes = 4096u64;
    let sim = Simulation::new(n, MachineParams::cm5_1992());
    for alg in BroadcastAlg::ALL {
        let r_ops = sim
            .run_ops(&broadcast_programs(alg, n, root, bytes))
            .unwrap();
        let r_thr = sim
            .run_nodes(|node| {
                let data = if node.id() == root {
                    Bytes::from(vec![7u8; bytes as usize])
                } else {
                    Bytes::new()
                };
                let got = broadcast_payload(node, alg, root, data);
                assert_eq!(got.len(), bytes as usize);
            })
            .unwrap();
        assert_eq!(
            r_ops.makespan,
            r_thr.makespan,
            "{}: op {} vs thread {}",
            alg.name(),
            r_ops.makespan,
            r_thr.makespan
        );
    }
}

/// Reductions and barriers interleave correctly with point-to-point
/// traffic.
#[test]
fn collectives_compose_with_messages() {
    let n = 8;
    let sim = Simulation::new(n, MachineParams::cm5_1992());
    let (report, sums) = sim
        .run_nodes_collect(|node| {
            let me = node.id();
            // Ring shift, then a global sum of what arrived, then a barrier.
            let right = (me + 1) % n;
            let left = (me + n - 1) % n;
            let got = if me % 2 == 0 {
                node.send_block(right, 0, Bytes::from(vec![me as u8]));
                node.recv_block(left, 0)
            } else {
                let g = node.recv_block(left, 0);
                node.send_block(right, 0, Bytes::from(vec![me as u8]));
                g
            };
            let s = node.reduce_sum(got[0] as f64);
            node.barrier();
            s
        })
        .unwrap();
    let expect: f64 = (0..n).map(|i| i as f64).sum();
    assert!(sums.iter().all(|&s| s == expect));
    assert_eq!(report.collectives, 2);
    assert_eq!(report.messages, n as u64);
}

/// A schedule mismatch (one node running a different schedule) deadlocks
/// with a diagnostic instead of hanging.
#[test]
fn mismatched_schedules_deadlock_cleanly() {
    let n = 4;
    let sim = Simulation::new(n, MachineParams::cm5_1992());
    let err = sim
        .run_nodes(|node| {
            if node.id() == 0 {
                // Node 0 expects a message nobody sends.
                node.recv_block(3, 99);
            }
        })
        .unwrap_err();
    match err {
        cm5_sim::SimError::Deadlock { waiting, .. } => {
            assert_eq!(waiting.len(), 1);
            assert!(waiting[0].contains("node 0"));
        }
        other => panic!("expected deadlock, got {other}"),
    }
}

/// Scans, shifts and all-gathers compose into one program: compute a
/// distributed prefix layout via an exclusive scan, shift it around the
/// ring, and gather everything back — verifying all values.
#[test]
fn scan_shift_allgather_compose() {
    use cm5_core::collectives::{allgather_payload, shift_payload};
    let n = 8;
    let sim = Simulation::new(n, MachineParams::cm5_1992());
    let (report, ok) = sim
        .run_nodes_collect(|node| {
            let me = node.id();
            // Each node owns me+1 items; exclusive prefix sum = its offset.
            let offset = node.scan_sum_exclusive((me + 1) as f64) as usize;
            let expect_offset: usize = (0..me).map(|k| k + 1).sum();
            assert_eq!(offset, expect_offset);
            // Shift the offset one node to the right.
            let got = shift_payload(node, 1, Bytes::from(offset.to_le_bytes().to_vec()));
            let left = (me + n - 1) % n;
            let left_offset = usize::from_le_bytes(got.as_ref().try_into().expect("usize bytes"));
            assert_eq!(left_offset, (0..left).map(|k| k + 1).sum::<usize>());
            // All-gather everyone's offsets.
            let all = allgather_payload(node, Bytes::from(offset.to_le_bytes().to_vec()));
            for (j, block) in all.iter().enumerate() {
                let v = usize::from_le_bytes(block.as_ref().try_into().expect("usize"));
                assert_eq!(v, (0..j).map(|k| k + 1).sum::<usize>());
            }
            true
        })
        .unwrap();
    assert!(ok.iter().all(|&b| b));
    assert!(report.collectives >= 1);
}

/// The op-program Scan placeholder and the thread-mode scan cost the same
/// simulated time.
#[test]
fn scan_timing_identical_across_frontends() {
    use cm5_sim::Op;
    let n = 8;
    let sim = Simulation::new(n, MachineParams::cm5_1992());
    let r_ops = sim.run_ops(&vec![vec![Op::Scan]; n]).unwrap();
    let r_thr = sim
        .run_nodes(|node| {
            node.scan_sum(1.0);
        })
        .unwrap();
    assert_eq!(r_ops.makespan, r_thr.makespan);
}

/// Virtual time advances identically on every node after a barrier,
/// regardless of pre-barrier skew.
#[test]
fn barrier_collapses_skew() {
    let n = 8;
    let sim = Simulation::new(n, MachineParams::cm5_1992());
    let (_, times) = sim
        .run_nodes_collect(|node| {
            node.compute(cm5_sim::SimDuration::from_micros(
                37 * (node.id() as u64 + 1),
            ));
            node.barrier();
            node.time().as_nanos()
        })
        .unwrap();
    assert!(times.windows(2).all(|w| w[0] == w[1]), "{times:?}");
}
