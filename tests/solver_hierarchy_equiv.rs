//! Differential tests: the hierarchical rate solver against both retained
//! oracles — the incremental solver and the original full recompute.
//!
//! The optimization contract is *bit-identity*, not approximation: for any
//! schedule of flow admissions, time advances, and completion drains — and
//! for whole simulations — [`RateSolver::Hierarchical`] must produce exactly
//! the rates, completion order, and `SimReport` that [`RateSolver::Incremental`]
//! and [`RateSolver::Full`] produce, under both fairness models. This is the
//! test wall behind `--rates hierarchical`: the subtree-dirty invalidation
//! may only skip work, never change a bit of it.

use cm5_core::prelude::*;
use cm5_sim::network::Network;
use cm5_sim::{
    FairnessModel, FatTree, MachineParams, Op, RateSolver, SimDuration, SimReport, SimTime,
    Simulation, ANY_TAG,
};
use proptest::prelude::*;

/// Exact comparison of every deterministic `SimReport` field, including the
/// per-node accounting and the full event trace.
fn assert_reports_bitwise(a: &SimReport, b: &SimReport, what: &str) {
    assert_eq!(a.makespan, b.makespan, "{what}: makespan");
    assert_eq!(a.messages, b.messages, "{what}: messages");
    assert_eq!(a.payload_bytes, b.payload_bytes, "{what}: payload_bytes");
    assert_eq!(a.wire_bytes, b.wire_bytes, "{what}: wire_bytes");
    assert_eq!(a.root_crossings, b.root_crossings, "{what}: root_crossings");
    assert_eq!(a.collectives, b.collectives, "{what}: collectives");
    assert_eq!(
        a.bytes_per_level, b.bytes_per_level,
        "{what}: bytes_per_level must match to the bit"
    );
    assert_eq!(a.nodes.len(), b.nodes.len(), "{what}: node count");
    for (i, (na, nb)) in a.nodes.iter().zip(&b.nodes).enumerate() {
        assert_eq!(na.busy, nb.busy, "{what}: node {i} busy");
        assert_eq!(na.blocked, nb.blocked, "{what}: node {i} blocked");
        assert_eq!(na.msgs_sent, nb.msgs_sent, "{what}: node {i} msgs_sent");
        assert_eq!(
            na.finished_at, nb.finished_at,
            "{what}: node {i} finished_at"
        );
    }
    assert_eq!(a.trace, b.trace, "{what}: event traces");
    // Flow admissions are simulated behaviour and must agree. Event counts
    // are *host* behaviour and may differ across solver batching styles.
    assert_eq!(a.perf.flows, b.perf.flows, "{what}: flows admitted");
}

fn params_for(fairness: FairnessModel, solver: RateSolver, eager: bool) -> MachineParams {
    let mut p = if eager {
        MachineParams::cm5_1992_buffered()
    } else {
        MachineParams::cm5_1992()
    };
    p.fairness = fairness;
    p.rate_solver = solver;
    p
}

/// One step of a network-level schedule: optionally advance part-way to the
/// next completion, then admit a batch of flows; or drain at the next
/// completion instant.
#[derive(Debug, Clone)]
enum Step {
    /// Admit flows (src, dst, wire_bytes) at `now + delay_ns`.
    Admit {
        delay_ns: u64,
        flows: Vec<(usize, usize, u64)>,
    },
    /// Advance to the next completion and take completed flows.
    Drain,
}

fn step_strategy(n: usize) -> impl Strategy<Value = Step> {
    // The shim has no `prop_oneof!`; an integer selector picks the variant
    // (3:2 in favour of admissions so schedules keep flows in flight).
    (
        0u8..5,
        0u64..2_000_000,
        prop::collection::vec(
            (0..n, 0..n, 20u64..80_000).prop_filter("distinct endpoints", |(a, b, _)| a != b),
            1..6,
        ),
    )
        .prop_map(|(kind, delay_ns, flows)| {
            if kind < 3 {
                Step::Admit { delay_ns, flows }
            } else {
                Step::Drain
            }
        })
}

/// Drive the hierarchical solver and both oracles through the same
/// schedule, asserting equivalence at every observation point.
fn run_schedule(fairness: FairnessModel, n: usize, steps: &[Step]) -> Result<(), TestCaseError> {
    let ph = params_for(fairness, RateSolver::Hierarchical, false);
    let pi = params_for(fairness, RateSolver::Incremental, false);
    let pf = params_for(fairness, RateSolver::Full, false);
    let cap = ph.flow_cap();
    let mut hier = Network::new(FatTree::new(n), &ph);
    let mut inc = Network::new(FatTree::new(n), &pi);
    let mut full = Network::new(FatTree::new(n), &pf);
    let mut now = SimTime::ZERO;
    let mut live: Vec<u64> = Vec::new();
    let mut next_token = 0u64;
    for step in steps {
        match step {
            Step::Admit { delay_ns, flows } => {
                now += SimDuration::from_nanos(*delay_ns);
                hier.advance_to(now);
                inc.advance_to(now);
                full.advance_to(now);
                for &(src, dst, bytes) in flows {
                    let tok = next_token;
                    next_token += 1;
                    hier.add_flow(src, dst, bytes, cap, tok);
                    inc.add_flow(src, dst, bytes, cap, tok);
                    full.add_flow(src, dst, bytes, cap, tok);
                    live.push(tok);
                }
            }
            Step::Drain => {
                let th = hier.next_completion();
                let ti = inc.next_completion();
                let tf = full.next_completion();
                prop_assert_eq!(th, ti, "next_completion diverged from incremental");
                prop_assert_eq!(th, tf, "next_completion diverged from full");
                let Some(t) = th else { continue };
                now = t;
                hier.advance_to(now);
                inc.advance_to(now);
                full.advance_to(now);
                let dh = hier.take_completed();
                let di = inc.take_completed();
                let df = full.take_completed();
                let toks_h: Vec<u64> = dh.iter().map(|f| f.token).collect();
                let toks_i: Vec<u64> = di.iter().map(|f| f.token).collect();
                let toks_f: Vec<u64> = df.iter().map(|f| f.token).collect();
                prop_assert_eq!(&toks_h, &toks_i, "completion order diverged (inc)");
                prop_assert_eq!(&toks_h, &toks_f, "completion order diverged (full)");
                prop_assert!(!toks_h.is_empty(), "drain at a completion instant");
                live.retain(|t| !toks_h.contains(t));
            }
        }
        // Rates must agree bitwise for every live flow after every step.
        for &tok in &live {
            let rh = hier.flow_rate(tok);
            let ri = inc.flow_rate(tok);
            let rf = full.flow_rate(tok);
            prop_assert_eq!(rh, ri, "rate diverged from incremental for token {}", tok);
            prop_assert_eq!(rh, rf, "rate diverged from full for token {}", tok);
        }
        prop_assert_eq!(hier.active_flows(), inc.active_flows());
        prop_assert_eq!(hier.active_flows(), full.active_flows());
    }
    // Drain everything and compare the cumulative per-level byte accounting.
    while let Some(t) = hier.next_completion() {
        prop_assert_eq!(Some(t), inc.next_completion());
        prop_assert_eq!(Some(t), full.next_completion());
        hier.advance_to(t);
        inc.advance_to(t);
        full.advance_to(t);
        let ch = hier.take_completed();
        let ci = inc.take_completed();
        let cf = full.take_completed();
        prop_assert_eq!(ch.len(), ci.len());
        prop_assert_eq!(ch.len(), cf.len());
    }
    prop_assert!(inc.next_completion().is_none());
    prop_assert!(full.next_completion().is_none());
    prop_assert_eq!(hier.bytes_per_level(), inc.bytes_per_level());
    prop_assert_eq!(hier.bytes_per_level(), full.bytes_per_level());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random add/advance/drain schedules on a 32-node tree: max-min rates,
    /// completion order, and byte accounting are bit-identical across the
    /// hierarchical solver and both oracles.
    #[test]
    fn max_min_hierarchical_is_bit_identical(
        steps in prop::collection::vec(step_strategy(32), 1..24),
    ) {
        run_schedule(FairnessModel::MaxMin, 32, &steps)?;
    }

    /// Same property under the equal-share ablation model.
    #[test]
    fn equal_share_hierarchical_is_bit_identical(
        steps in prop::collection::vec(step_strategy(32), 1..24),
    ) {
        run_schedule(FairnessModel::EqualShare, 32, &steps)?;
    }

    /// A 64-node tree adds one more level of spine: subtree invalidation
    /// has genuinely partial cases (dirty clusters below an unoccupied
    /// level-2 spine) that a 32-node tree's shallow hierarchy rarely hits.
    #[test]
    fn max_min_hierarchical_is_bit_identical_at_64(
        steps in prop::collection::vec(step_strategy(64), 1..16),
    ) {
        run_schedule(FairnessModel::MaxMin, 64, &steps)?;
    }

    /// Whole simulations: every exchange algorithm, machine size, and send
    /// mode yields a bit-identical `SimReport` under all three solvers.
    #[test]
    fn simulations_are_bit_identical_across_all_solvers(
        alg_ix in 0usize..4,
        n_ix in 0usize..3,
        bytes in 0u64..2048,
        eager in any::<bool>(),
        fair_ix in 0usize..2,
    ) {
        let alg = ExchangeAlg::ALL[alg_ix];
        let n = [4usize, 8, 16][n_ix];
        let fairness = [FairnessModel::MaxMin, FairnessModel::EqualShare][fair_ix];
        let programs = lower(&alg.schedule(n, bytes));
        let run = |solver| {
            Simulation::new(n, params_for(fairness, solver, eager))
                .record_trace(true)
                .run_ops(&programs)
                .unwrap()
        };
        let h = run(RateSolver::Hierarchical);
        let i = run(RateSolver::Incremental);
        let f = run(RateSolver::Full);
        let what = format!("{alg:?} n={n} bytes={bytes} eager={eager} {fairness:?}");
        assert_reports_bitwise(&h, &i, &format!("{what} vs incremental"));
        assert_reports_bitwise(&h, &f, &format!("{what} vs full"));
    }
}

/// Async sends (Isend/WaitAll) exercise the completion-queue invalidation
/// and the batched-admission seq reservation under both send modes.
#[test]
fn async_programs_are_bit_identical_across_all_solvers() {
    let n = 8;
    let mut programs: Vec<Vec<Op>> = vec![Vec::new(); n];
    for (i, prog) in programs.iter_mut().enumerate() {
        // Everyone isends to two neighbours, receives two, then waits.
        prog.push(Op::Isend {
            to: (i + 1) % n,
            bytes: 1536,
            tag: ANY_TAG,
        });
        prog.push(Op::Isend {
            to: (i + 3) % n,
            bytes: 512,
            tag: ANY_TAG,
        });
        prog.push(Op::RecvAny { tag: ANY_TAG });
        prog.push(Op::RecvAny { tag: ANY_TAG });
        prog.push(Op::WaitAll);
        prog.push(Op::Barrier);
    }
    for eager in [false, true] {
        for fairness in [FairnessModel::MaxMin, FairnessModel::EqualShare] {
            let run = |solver| {
                Simulation::new(n, params_for(fairness, solver, eager))
                    .record_trace(true)
                    .run_ops(&programs)
                    .unwrap()
            };
            let h = run(RateSolver::Hierarchical);
            let i = run(RateSolver::Incremental);
            let f = run(RateSolver::Full);
            assert_reports_bitwise(&h, &i, &format!("async eager={eager} {fairness:?} vs inc"));
            assert_reports_bitwise(&h, &f, &format!("async eager={eager} {fairness:?} vs full"));
        }
    }
}

/// Whole exchange simulations at 128 nodes: deep enough for multi-level
/// spine invalidation, small enough for a debug-build test run.
#[test]
fn exchange_at_128_nodes_is_bit_identical() {
    for alg in [ExchangeAlg::Rex, ExchangeAlg::Pex] {
        let programs = lower(&alg.schedule(128, 256));
        let run = |solver| {
            Simulation::new(128, params_for(FairnessModel::MaxMin, solver, false))
                .run_ops(&programs)
                .unwrap()
        };
        let h = run(RateSolver::Hierarchical);
        let i = run(RateSolver::Incremental);
        assert_reports_bitwise(&h, &i, &format!("{alg:?} n=128"));
    }
}
