//! Every builtin schedule generator must verify clean.
//!
//! This is the static half of the verifier's contract (the dynamic half —
//! agreement with the simulator — lives in `verify_differential.rs`): all
//! of the paper's generators, across sizes and densities, produce schedules
//! with zero errors and zero warnings under the policy their family
//! promises. Contention *advice* is allowed — PEX deliberately saturates
//! the root, which is Figure 5's whole point — and asserted where the paper
//! predicts it.

use cm5_core::prelude::*;
use cm5_verify::{
    broadcast_policy, exchange_policy, irregular_policy, verify_schedule, Code, Severity,
    VerifyOptions,
};
use proptest::prelude::*;

fn assert_clean(name: &str, schedule: &Schedule, pattern: Option<&Pattern>, opts: &VerifyOptions) {
    let report = verify_schedule(schedule, pattern, opts);
    assert!(
        report.is_clean(),
        "{name} failed verification:\n{}",
        report.render_human()
    );
}

#[test]
fn exchanges_verify_clean_at_all_sizes() {
    for alg in ExchangeAlg::ALL {
        for k in 2..=8 {
            let n = 1usize << k; // 4..=256
            let schedule = alg.schedule(n, 1024);
            let pattern = Pattern::complete_exchange(n, 1024);
            assert_clean(
                &format!("{} n={n}", alg.name()),
                &schedule,
                Some(&pattern),
                &exchange_policy(alg),
            );
        }
    }
}

#[test]
fn broadcasts_verify_clean() {
    for n in [4usize, 8, 32, 128] {
        for root in [0, n / 2, n - 1] {
            assert_clean(
                &format!("lib n={n} root={root}"),
                &lib_linear(n, root, 4096),
                None,
                &broadcast_policy(BroadcastAlg::Linear),
            );
            assert_clean(
                &format!("reb n={n} root={root}"),
                &reb(n, root, 4096),
                None,
                &broadcast_policy(BroadcastAlg::Recursive),
            );
        }
    }
}

#[test]
fn irregular_schedulers_verify_clean_across_densities() {
    for alg in IrregularAlg::ALL {
        for density in [0.10, 0.25, 0.50, 0.75] {
            for seed in [1u64, 0x7AB1E] {
                let pattern = Pattern::seeded_random(32, density, 256, seed);
                assert_clean(
                    &format!("{} density={density} seed={seed:#x}", alg.name()),
                    &alg.schedule(&pattern),
                    Some(&pattern),
                    &irregular_policy(alg),
                );
            }
        }
        let paper = Pattern::paper_pattern_p(256);
        assert_clean(
            &format!("{} paper pattern", alg.name()),
            &alg.schedule(&paper),
            Some(&paper),
            &irregular_policy(alg),
        );
    }
}

#[test]
fn crystal_router_verifies_clean() {
    let pattern = Pattern::seeded_random(32, 0.25, 256, 0x7AB1E);
    let schedule = crystal(&pattern);
    assert!(schedule.store_and_forward);
    assert_clean(
        "crystal",
        &schedule,
        Some(&pattern),
        &VerifyOptions::default(),
    );
}

#[test]
fn async_lowering_verifies_clean_too() {
    // Isend + trailing WaitAll changes the blocking structure the deadlock
    // analysis walks; the builtins must stay clean under it.
    let mut opts = exchange_policy(ExchangeAlg::Pex);
    opts.lower.async_sends = true;
    let pattern = Pattern::complete_exchange(16, 512);
    assert_clean("pex async", &pex(16, 512), Some(&pattern), &opts);

    let mut opts = irregular_policy(IrregularAlg::Gs);
    opts.lower.async_sends = true;
    let paper = Pattern::paper_pattern_p(128);
    assert_clean("gs async", &gs(&paper), Some(&paper), &opts);
}

/// The paper's contention story, reproduced as static advice: PEX's global
/// steps double-book the root, BEX flattens all but its one all-global
/// step, REX crosses the root exactly once, and LEX's fan-in piles onto
/// the receiver's leaf link.
#[test]
fn hotspot_advice_lands_where_the_paper_predicts() {
    let count = |s: &Schedule, code: Code| {
        let p = Pattern::complete_exchange(s.n(), 1024);
        verify_schedule(s, Some(&p), &VerifyOptions::default())
            .iter()
            .filter(|d| d.code == code)
            .count()
    };
    assert_eq!(count(&pex(32, 1024), Code::RootHotspot), 16);
    assert_eq!(count(&bex(32, 1024), Code::RootHotspot), 16);
    assert_eq!(count(&rex(32, 1024), Code::RootHotspot), 1);
    assert_eq!(count(&lex(8, 1024), Code::LinkHotspot), 8);
    assert_eq!(count(&lex(8, 1024), Code::RootHotspot), 0);
    // Advice never dirties a report.
    let p = Pattern::complete_exchange(32, 1024);
    let report = verify_schedule(&pex(32, 1024), Some(&p), &exchange_policy(ExchangeAlg::Pex));
    assert!(report.is_clean());
    assert_eq!(report.count(Severity::Error), 0);
    assert_eq!(report.count(Severity::Warning), 0);
    assert!(report.count(Severity::Advice) > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any seeded pattern, any density, any power-of-two size: all four
    /// irregular schedulers stay clean under their own policy.
    #[test]
    fn random_patterns_verify_clean(
        k in 2usize..6,
        density in 0.05f64..0.95,
        bytes in 1u64..4096,
        seed in any::<u64>(),
    ) {
        let n = 1usize << k;
        let pattern = Pattern::seeded_random(n, density, bytes, seed);
        prop_assume!(pattern.nonzero_pairs() > 0);
        for alg in IrregularAlg::ALL {
            let report = verify_schedule(
                &alg.schedule(&pattern),
                Some(&pattern),
                &irregular_policy(alg),
            );
            prop_assert!(
                report.is_clean(),
                "{} n={n} density={density} seed={seed:#x}:\n{}",
                alg.name(),
                report.render_human()
            );
        }
    }

    /// Random complete exchanges: every regular algorithm is clean, and
    /// async lowering never changes the verdict.
    #[test]
    fn random_exchanges_verify_clean(
        k in 2usize..7,
        bytes in 1u64..8192,
        async_sends in any::<bool>(),
    ) {
        let n = 1usize << k;
        for alg in ExchangeAlg::ALL {
            let mut opts = exchange_policy(alg);
            opts.lower.async_sends = async_sends;
            let pattern = Pattern::complete_exchange(n, bytes);
            let report = verify_schedule(&alg.schedule(n, bytes), Some(&pattern), &opts);
            prop_assert!(
                report.is_clean(),
                "{} n={n} bytes={bytes} async={async_sends}:\n{}",
                alg.name(),
                report.render_human()
            );
        }
    }
}
