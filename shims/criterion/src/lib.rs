//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset its benches use: `Criterion::benchmark_group`,
//! group-level `sample_size`/`measurement_time`, `bench_function` /
//! `bench_with_input` with `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a plain
//! min/mean/max over `sample_size` timed samples after one warm-up —
//! no bootstrap statistics, HTML reports, or regression baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("benchmark group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            _criterion: self,
        }
    }
}

/// Identifier for one benchmark within a group: function name + parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name and a `Display`-able parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upper bound on total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = name.into();
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b); // warm-up pass
        b.samples.clear();
        let deadline = Instant::now() + self.measurement_time;
        // Always at least one timed sample, then fill until size or deadline.
        while b.samples.is_empty()
            || (b.samples.len() < self.sample_size && Instant::now() < deadline)
        {
            f(&mut b);
        }
        self.report(&id, &b.samples);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b, input); // warm-up pass
        b.samples.clear();
        let deadline = Instant::now() + self.measurement_time;
        // Always at least one timed sample, then fill until size or deadline.
        while b.samples.is_empty()
            || (b.samples.len() < self.sample_size && Instant::now() < deadline)
        {
            f(&mut b, input);
        }
        self.report(&id.id, &b.samples);
        self
    }

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            eprintln!("  {}/{id}: no samples", self.name);
            return;
        }
        let min = samples.iter().min().unwrap();
        let max = samples.iter().max().unwrap();
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        eprintln!(
            "  {}/{id}: [{min:?} {mean:?} {max:?}] ({} samples)",
            self.name,
            samples.len(),
        );
    }

    /// Close the group (kept for API compatibility; reporting is eager).
    pub fn finish(self) {}
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time one execution of `f`, keeping its output live via `black_box`.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        let out = f();
        self.samples.push(start.elapsed());
        black_box(out);
    }
}

/// Bundle benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(200));
        let mut runs = 0u32;
        g.bench_with_input(BenchmarkId::new("f", 1), &2u64, |b, &x| {
            runs += 1;
            b.iter(|| x * 2)
        });
        g.finish();
        assert!(runs >= 1);
    }
}
