//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the thin API subset it actually uses: [`Bytes`] (a cheaply
//! clonable, immutable byte buffer), [`BytesMut`] (a growable builder that
//! freezes into `Bytes`), and the [`BufMut`] write trait. Semantics match
//! the real crate for this subset; only the zero-copy slicing machinery is
//! omitted because nothing here needs it.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// The empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wrap a static byte slice.
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes { data: Arc::from(s) }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes { data: Arc::from(s) }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// A buffer holding `self[range]`. (The real crate is zero-copy here;
    /// this stand-in copies, which only changes performance, not behaviour.)
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.data.len(),
        };
        Bytes {
            data: Arc::from(&self.data[start..end]),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.data[..] == other[..]
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// The empty builder.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// Pre-allocate `cap` bytes.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.data),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side trait: the `put_*` little-endian appenders.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_freeze() {
        let mut b = BytesMut::with_capacity(16);
        b.put_f64_le(1.5);
        b.put_u32_le(7);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 12);
        assert_eq!(f64::from_le_bytes(frozen[..8].try_into().unwrap()), 1.5);
        assert_eq!(u32::from_le_bytes(frozen[8..].try_into().unwrap()), 7);
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn static_and_empty() {
        assert!(Bytes::new().is_empty());
        let s = Bytes::from_static(b"abc");
        assert_eq!(s.as_ref(), b"abc");
    }
}
