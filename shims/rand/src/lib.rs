//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset it uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and float ranges, and [`Rng::gen_bool`].
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction the real crate's `SmallRng` uses — so streams are
//! high-quality and fully determined by the seed. The streams do NOT match
//! real `rand 0.8` `StdRng` output; everything in this repo that consumes
//! randomness is seeded and compared against its own reproduced numbers,
//! never against externally published `StdRng` streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface over a uniform bit generator.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: Into<UniformRange<T>>,
        Self: Sized,
    {
        let mut next = || self.next_u64();
        T::sample(&mut next, range.into())
    }

    /// `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`, matching the real crate.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p must be in [0,1], got {p}"
        );
        // 53 uniform mantissa bits, same resolution as f64 sampling.
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }

    /// Sample a uniform value of `T` over its full/natural domain.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self.next_u64())
    }
}

/// Either-endpoint range carrier so `gen_range` accepts both `a..b` and `a..=b`.
pub struct UniformRange<T> {
    lo: T,
    hi: T,
    inclusive: bool,
}

impl<T> From<Range<T>> for UniformRange<T> {
    fn from(r: Range<T>) -> Self {
        UniformRange {
            lo: r.start,
            hi: r.end,
            inclusive: false,
        }
    }
}

impl<T: Copy> From<RangeInclusive<T>> for UniformRange<T> {
    fn from(r: RangeInclusive<T>) -> Self {
        UniformRange {
            lo: *r.start(),
            hi: *r.end(),
            inclusive: true,
        }
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    fn sample(next: &mut dyn FnMut() -> u64, range: UniformRange<Self>) -> Self;
}

/// Types with a natural "whole domain" uniform distribution (for `gen()`).
pub trait StandardSample {
    fn standard(bits: u64) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(next: &mut dyn FnMut() -> u64, range: UniformRange<$t>) -> $t {
                let lo = range.lo as i128;
                let hi = range.hi as i128;
                let span: u128 = if range.inclusive {
                    assert!(lo <= hi, "gen_range: empty range");
                    (hi - lo) as u128 + 1
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                    (hi - lo) as u128
                };
                // Multiply-shift mapping without rejection: span is tiny
                // relative to 2^64 at every call site, and determinism — not
                // exact uniformity at the 2^-64 level — is the contract here.
                let v = (next() as u128 * span) >> 64;
                (lo + v as i128) as $t
            }
        }
        impl StandardSample for $t {
            fn standard(bits: u64) -> $t {
                bits as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample(next: &mut dyn FnMut() -> u64, range: UniformRange<f64>) -> f64 {
        assert!(range.lo <= range.hi, "gen_range: empty range");
        let unit = (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.lo + unit * (range.hi - range.lo)
    }
}

impl StandardSample for f64 {
    fn standard(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn standard(bits: u64) -> bool {
        bits & 1 == 1
    }
}

pub mod rngs {
    use super::SeedableRng;

    /// Deterministic seeded generator: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the standard way to fill xoshiro state.
            let mut x = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *slot = z ^ (z >> 31);
            }
            StdRng { s }
        }
    }

    impl StdRng {
        pub(crate) fn next(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = r.gen_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
