//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset it uses: `channel::{unbounded, Sender, Receiver}`
//! (both halves clonable, so a `Receiver` doubles as a shared work queue)
//! and `thread::scope` (delegating to `std::thread::scope`). Built on
//! `std::sync::mpsc` with the receiver behind an `Arc<Mutex<..>>`; fairness
//! differs from real crossbeam but send/recv/disconnect semantics match.

#![forbid(unsafe_code)]

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders still exist.
        Empty,
        /// Every sender is gone and the buffer is drained.
        Disconnected,
    }

    /// The sending half of an unbounded channel. Clonable.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Queue a value; fails only if all receivers are dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    ///
    /// Clonable: clones share one queue, so each value is delivered to
    /// exactly one receiver — the work-queue pattern.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv().map_err(|_| RecvError)
        }

        /// Take a value if one is already queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            guard.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Iterate until every sender is dropped and the queue drains.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Blocking iterator over received values.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }
}

pub mod thread {
    /// Scoped threads; delegates to `std::thread::scope`, which provides the
    /// same non-'static borrow guarantees the crossbeam original pioneered.
    pub use std::thread::scope;
    pub use std::thread::Scope;
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cloned_receivers_partition_the_queue() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut seen = Vec::new();
        let receivers = [&rx, &rx2];
        let mut turn = 0;
        while let Ok(v) = receivers[turn % 2].try_recv() {
            seen.push(v);
            turn += 1;
        }
        while let Ok(v) = rx.try_recv() {
            seen.push(v);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
