//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset it uses: the [`Strategy`] trait with range, tuple,
//! and collection strategies plus `prop_map`/`prop_filter`; the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`]
//! macros; and [`ProptestConfig::with_cases`]. Cases are generated from a
//! deterministic per-test stream (seeded by test path + case index), so a
//! failure reproduces on every run and machine. Shrinking is not
//! implemented — the failure message reports the generated inputs instead.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A property assertion failed; the whole test fails.
    Fail(String),
    /// The inputs were rejected (e.g. by `prop_assume!`); the case is
    /// skipped and another one is drawn.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (skipped) case with the given reason.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-case random stream (SplitMix64).
///
/// Seeded from the test's module path + name and the case index, so every
/// run of the suite sees the same inputs in the same order.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Stream for case number `case` of the named test.
    pub fn for_case(test_path: &str, case: u64) -> TestRng {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`, resampling on rejection.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        // Local resampling keeps filters transparent to the case counter;
        // the call sites all use light filters (distinct endpoints etc.),
        // so exhaustion means the filter itself is broken.
        for _ in 0..100_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 100000 consecutive samples",
            self.reason
        );
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (*self.start() as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a whole-domain uniform distribution, for [`any`].
pub trait ArbitraryPrim: Sized {
    #[doc(hidden)]
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_arbitrary_prim {
    ($($t:ty),*) => {$(
        impl ArbitraryPrim for $t {
            fn from_bits(bits: u64) -> $t {
                bits as $t
            }
        }
    )*};
}

impl_arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryPrim for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: ArbitraryPrim> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::from_bits(rng.next_u64())
    }
}

/// Uniform over the full domain of `T`.
pub fn any<T: ArbitraryPrim>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bound for [`vec`]: a range (`1..30`) or an exact size (`20`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_excl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_excl: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_excl: n + 1,
            }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_excl - self.size.lo) as u128;
            let len = self.size.lo + ((rng.next_u64() as u128 * span) >> 64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Namespace mirror of the real crate's `prop::` path (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop, ProptestConfig, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Mirrors the real crate's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, v in prop::collection::vec(any::<u8>(), 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut accepted: u32 = 0;
            let mut rejected: u64 = 0;
            let mut case: u64 = 0;
            while accepted < config.cases {
                let mut rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                case += 1;
                $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < 1024 + 64 * config.cases as u64,
                            "{}: too many rejected cases ({} accepted so far)",
                            stringify!($name),
                            accepted,
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed at case #{}: {}",
                            stringify!($name),
                            case - 1,
                            msg,
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Property-scoped assertion: fails the current case, reporting `cond`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+),
            )));
        }
    };
}

/// Property-scoped equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {:?} != {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {:?} != {:?}: {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)+),
            )));
        }
    }};
}

/// Property-scoped inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`: both {:?}",
                stringify!($left),
                stringify!($right),
                l,
            )));
        }
    }};
}

/// Skip the current case when its inputs don't fit the property's domain.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn strategies_stay_in_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-2.0f64..=2.0).generate(&mut rng);
            assert!((-2.0..=2.0).contains(&f));
            let (a, b) = ((0u64..5), (10u64..20)).generate(&mut rng);
            assert!(a < 5 && (10..20).contains(&b));
        }
    }

    #[test]
    fn vec_and_combinators() {
        let mut rng = TestRng::for_case("vecs", 1);
        let s = collection::vec((0usize..10, 0usize..10), 2..6).prop_map(|v| v.len());
        for _ in 0..100 {
            let len = s.generate(&mut rng);
            assert!((2..6).contains(&len));
        }
        let distinct = (0usize..3, 0usize..3).prop_filter("ne", |(a, b)| a != b);
        for _ in 0..100 {
            let (a, b) = distinct.generate(&mut rng);
            assert_ne!(a, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro path itself: args, assume, assertions.
        #[test]
        fn macro_roundtrip(x in 1u64..50, v in collection::vec(any::<u8>(), 0..4)) {
            prop_assume!(x != 13);
            prop_assert!(x >= 1);
            prop_assert!(x < 50, "x was {}", x);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(x, 13);
        }
    }
}
