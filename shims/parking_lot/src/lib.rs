//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset it uses: [`Mutex`] and [`RwLock`] whose lock methods
//! return guards directly (no poisoning in the API, matching parking_lot).
//! Built on the std primitives; a poisoned std lock is transparently
//! re-entered, which is exactly parking_lot's behaviour of not poisoning.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
