//! Diagnostic codes, severities and the report type.
//!
//! Every finding the verifier can produce carries a stable machine-readable
//! code (`V001`–`V041`), a severity, and a span locating it in the schedule
//! (step/op indices) or in a lowered program (node/op indices). The
//! [`Diagnostics`] report renders both a human transcript and JSON, so the
//! `cm5 lint` pipeline and CI can consume the same data.

use std::fmt;

/// How bad a finding is.
///
/// `Error` and `Warning` findings fail a lint run; `Advice` findings are
/// informational — the paper's own schedules *deliberately* oversubscribe
/// the fat-tree root (that is what Figure 5 measures), so predicted
/// hotspots must not fail the builtin schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: the schedule is correct but has a predictable
    /// performance hazard.
    Advice,
    /// Suspicious but not provably wrong (e.g. a zero-byte transfer).
    Warning,
    /// The schedule is structurally wrong, does not conserve the pattern's
    /// bytes, or cannot complete under blocking CMMD semantics.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Advice => "advice",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable machine-readable diagnostic codes.
///
/// The numbering is grouped: `V00x` structural, `V01x` conservation/shape,
/// `V02x` blocking-semantics (deadlock), `V03x` contention, `V04x` buffer
/// occupancy. Codes are append-only; renumbering would break downstream
/// consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// V001: an op references a node outside `0..n`.
    BadNode,
    /// V002: an op sends a message from a node to itself.
    SelfMessage,
    /// V003: an op moves zero bytes (legal but almost always a bug).
    ZeroBytes,
    /// V010: a node appears in more than one op of a step that claims
    /// pairwise disjointness.
    StepConflict,
    /// V011: the same directed transfer appears twice in one step, so both
    /// messages carry the same tag and the payloads may be delivered in
    /// either order.
    DuplicatePair,
    /// V012: the schedule moves fewer bytes for a pair than the pattern
    /// requires.
    CoverageMissing,
    /// V013: the schedule moves more bytes for a pair than the pattern
    /// requires.
    CoverageExcess,
    /// V014: a step of a permutation-phase algorithm gives a node more than
    /// one send or receive partner.
    NotPermutation,
    /// V020: blocking sends/recvs form a wait-for cycle — the schedule
    /// deadlocks on the real machine. Carries the full witness path.
    DeadlockCycle,
    /// V021: an op blocks forever on a partner that never posts a matching
    /// operation (mispaired send/recv, wrong tag, or dropped op).
    StuckOp,
    /// V022: nodes reach different control-network collectives.
    CollectiveMismatch,
    /// V030: a step's concurrent transfers demand more than the fat-tree
    /// bisection (root link) capacity — a predicted hotspot.
    RootHotspot,
    /// V031: a step oversubscribes a link below the root (e.g. a fan-in
    /// serializing at one receiver's leaf link).
    LinkHotspot,
    /// V040: the static eager-send buffer bound of some node exceeds the
    /// configured receive-buffer budget — the "irregular pattern overflows
    /// receive buffers" failure mode the paper's GS scheduler prevents.
    EagerOverflow,
    /// V041: the static bound on rendezvous sends parked at a destination
    /// (posted `Isend`s whose receive has not been reached) exceeds the
    /// configured pending-message budget.
    PendingBacklog,
}

impl Code {
    /// Every code, in numbering order.
    pub const ALL: [Code; 15] = [
        Code::BadNode,
        Code::SelfMessage,
        Code::ZeroBytes,
        Code::StepConflict,
        Code::DuplicatePair,
        Code::CoverageMissing,
        Code::CoverageExcess,
        Code::NotPermutation,
        Code::DeadlockCycle,
        Code::StuckOp,
        Code::CollectiveMismatch,
        Code::RootHotspot,
        Code::LinkHotspot,
        Code::EagerOverflow,
        Code::PendingBacklog,
    ];

    /// The stable code string (`"V001"`…).
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::BadNode => "V001",
            Code::SelfMessage => "V002",
            Code::ZeroBytes => "V003",
            Code::StepConflict => "V010",
            Code::DuplicatePair => "V011",
            Code::CoverageMissing => "V012",
            Code::CoverageExcess => "V013",
            Code::NotPermutation => "V014",
            Code::DeadlockCycle => "V020",
            Code::StuckOp => "V021",
            Code::CollectiveMismatch => "V022",
            Code::RootHotspot => "V030",
            Code::LinkHotspot => "V031",
            Code::EagerOverflow => "V040",
            Code::PendingBacklog => "V041",
        }
    }

    /// The severity this code always carries.
    pub fn severity(&self) -> Severity {
        match self {
            Code::ZeroBytes | Code::DuplicatePair | Code::EagerOverflow | Code::PendingBacklog => {
                Severity::Warning
            }
            Code::RootHotspot | Code::LinkHotspot => Severity::Advice,
            _ => Severity::Error,
        }
    }

    /// One-line description for the code table.
    pub fn title(&self) -> &'static str {
        match self {
            Code::BadNode => "op references a node outside 0..n",
            Code::SelfMessage => "op sends a message from a node to itself",
            Code::ZeroBytes => "op moves zero bytes",
            Code::StepConflict => "node appears twice in a pairwise-disjoint step",
            Code::DuplicatePair => "duplicate directed transfer (tag collision) in a step",
            Code::CoverageMissing => "schedule moves fewer bytes than the pattern requires",
            Code::CoverageExcess => "schedule moves more bytes than the pattern requires",
            Code::NotPermutation => "permutation-phase step gives a node several partners",
            Code::DeadlockCycle => "blocking send/recv wait-for cycle (deadlock)",
            Code::StuckOp => "op waits forever on a partner that never matches",
            Code::CollectiveMismatch => "nodes reach different collectives",
            Code::RootHotspot => "step exceeds fat-tree bisection (root) capacity",
            Code::LinkHotspot => "step oversubscribes a link below the root",
            Code::EagerOverflow => "eager-send buffer bound exceeds the receive budget",
            Code::PendingBacklog => "pending-rendezvous bound exceeds the backlog budget",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a finding points: schedule coordinates (`step`/`op`) and/or
/// program coordinates (`node` — the op index of a lowered program goes in
/// `op`). All fields optional; a pattern-level finding has none.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Span {
    /// Schedule step index.
    pub step: Option<usize>,
    /// Op index (within the step, or within `node`'s lowered program).
    pub op: Option<usize>,
    /// Node id, for program-level findings.
    pub node: Option<usize>,
}

impl Span {
    /// A schedule-coordinate span.
    pub fn at(step: usize, op: usize) -> Span {
        Span {
            step: Some(step),
            op: Some(op),
            node: None,
        }
    }

    /// A step-only span.
    pub fn step(step: usize) -> Span {
        Span {
            step: Some(step),
            op: None,
            node: None,
        }
    }

    /// A program-coordinate span (`node`'s lowered program, op index `op`).
    pub fn program(node: usize, op: usize) -> Span {
        Span {
            step: None,
            op: Some(op),
            node: Some(node),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if let Some(s) = self.step {
            parts.push(format!("step {s}"));
        }
        if let Some(n) = self.node {
            parts.push(format!("node {n}"));
        }
        if let Some(o) = self.op {
            parts.push(format!("op {o}"));
        }
        if parts.is_empty() {
            f.write_str("<schedule>")
        } else {
            f.write_str(&parts.join(" "))
        }
    }
}

/// One verifier finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code.
    pub code: Code,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// Location of the finding.
    pub span: Span,
    /// Human-readable one-line message.
    pub message: String,
    /// Supporting evidence, one line per entry — for deadlocks, the full
    /// wait-for cycle witness path.
    pub witness: Vec<String>,
}

impl Diagnostic {
    /// Build a finding with the code's canonical severity and no witness.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            message: message.into(),
            witness: Vec::new(),
        }
    }

    /// Attach a witness path.
    pub fn with_witness(mut self, witness: Vec<String>) -> Diagnostic {
        self.witness = witness;
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} [{}]: {}",
            self.code, self.severity, self.span, self.message
        )?;
        for line in &self.witness {
            write!(f, "\n    {line}")?;
        }
        Ok(())
    }
}

/// The verifier's report: an ordered list of findings plus counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    diags: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty report.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Append a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Append every finding of `other`.
    pub fn extend(&mut self, other: impl IntoIterator<Item = Diagnostic>) {
        self.diags.extend(other);
    }

    /// The findings, in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter()
    }

    /// Number of findings (all severities).
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// True when there are no findings at all.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Findings at `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == sev).count()
    }

    /// True when the schedule passes the lint gate: no errors, no warnings
    /// (advice is allowed — see [`Severity`]).
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Error) == 0 && self.count(Severity::Warning) == 0
    }

    /// True when some finding carries `code`.
    pub fn has(&self, code: Code) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// True when the verifier proved the schedule cannot complete under
    /// blocking semantics (any `V02x` finding).
    pub fn has_deadlock(&self) -> bool {
        self.has(Code::DeadlockCycle)
            || self.has(Code::StuckOp)
            || self.has(Code::CollectiveMismatch)
    }

    /// The one-line summary used by the transcript and `cm5 lint`.
    pub fn summary(&self) -> String {
        format!(
            "{} error(s), {} warning(s), {} advice",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Advice)
        )
    }

    /// Human transcript: one block per finding plus a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&self.summary());
        out.push('\n');
        out
    }

    /// JSON rendering: `{"schema":"cm5-lint/1","diagnostics":[...],
    /// "errors":E,"warnings":W,"advice":A,"clean":bool}`. Hand-rolled (the
    /// workspace is offline; no serde), matching the style of the bench
    /// artifacts; the schema stamp comes from `cm5-obs` like every other
    /// JSON emitter in the workspace.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&cm5_obs::schema_field("lint", 1));
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\"",
                d.code, d.severity
            ));
            if let Some(s) = d.span.step {
                out.push_str(&format!(",\"step\":{s}"));
            }
            if let Some(n) = d.span.node {
                out.push_str(&format!(",\"node\":{n}"));
            }
            if let Some(o) = d.span.op {
                out.push_str(&format!(",\"op\":{o}"));
            }
            out.push_str(&format!(",\"message\":{}", json_escape(&d.message)));
            if !d.witness.is_empty() {
                out.push_str(",\"witness\":[");
                for (j, w) in d.witness.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_escape(w));
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push_str(&format!(
            "],\"errors\":{},\"warnings\":{},\"advice\":{},\"clean\":{}}}",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Advice),
            self.is_clean()
        ));
        out
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.diags.into_iter()
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let strs: Vec<&str> = Code::ALL.iter().map(|c| c.as_str()).collect();
        let mut dedup = strs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), Code::ALL.len(), "duplicate code strings");
        assert_eq!(Code::BadNode.as_str(), "V001");
        assert_eq!(Code::DeadlockCycle.as_str(), "V020");
        assert_eq!(Code::RootHotspot.severity(), Severity::Advice);
        assert_eq!(Code::StuckOp.severity(), Severity::Error);
    }

    #[test]
    fn clean_allows_advice_only() {
        let mut d = Diagnostics::new();
        assert!(d.is_clean() && d.is_empty());
        d.push(Diagnostic::new(Code::RootHotspot, Span::step(3), "hot"));
        assert!(d.is_clean());
        assert!(!d.is_empty());
        d.push(Diagnostic::new(Code::ZeroBytes, Span::at(0, 1), "zero"));
        assert!(!d.is_clean());
    }

    #[test]
    fn human_rendering_includes_witness() {
        let mut d = Diagnostics::new();
        d.push(
            Diagnostic::new(Code::DeadlockCycle, Span::program(0, 0), "cycle of 2 nodes")
                .with_witness(vec!["node 0: ...".into(), "node 1: ...".into()]),
        );
        let text = d.render_human();
        assert!(text.contains("V020 error [node 0 op 0]: cycle of 2 nodes"));
        assert!(text.contains("\n    node 0: ..."));
        assert!(text.contains("1 error(s), 0 warning(s), 0 advice"));
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let mut d = Diagnostics::new();
        d.push(Diagnostic::new(
            Code::CoverageMissing,
            Span::default(),
            "pair 0->1: \"missing\"",
        ));
        let json = d.render_json();
        assert!(json.contains("\"code\":\"V012\""));
        assert!(json.contains("\\\"missing\\\""));
        assert!(json.contains("\"clean\":false"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn span_display_forms() {
        assert_eq!(Span::at(2, 5).to_string(), "step 2 op 5");
        assert_eq!(Span::program(3, 7).to_string(), "node 3 op 7");
        assert_eq!(Span::default().to_string(), "<schedule>");
    }
}
