//! Static per-step contention analysis over the fat tree.
//!
//! For every step the analyzer lays each directed transfer onto its
//! up-then-down route and charges it the per-flow software cap
//! (`MachineParams::flow_cap`), then compares per-link demand against link
//! capacity. Because blocking lowering serializes the two directions of an
//! exchange (Figure 2: the lower node receives first, Figure 3 for
//! store-and-forward), the two directions are charged to separate *phases*
//! and the worse phase is reported — charging both at once would predict
//! 2× hotspots that the machine never sees.
//!
//! A step whose worst oversubscribed link is a root link exceeds the
//! bisection capacity — the paper's "all-global step" hazard that BEX
//! exists to spread (§3.4) — and is reported as [`Code::RootHotspot`];
//! oversubscription below the root (e.g. LEX's n−1-way fan-in into one
//! receiver's leaf link) is [`Code::LinkHotspot`]. Both are *advice*: the
//! schedule is correct, just predictably slow.

use cm5_core::schedule::{CommOp, Schedule};
use cm5_sim::{FatTree, MachineParams};

use crate::diag::{Code, Diagnostic, Span};

/// Tolerance on the oversubscription ratio: exactly-at-capacity steps
/// (e.g. GS packing four crossings under a 4-node group's root link) are
/// not hotspots.
const OVER_EPS: f64 = 1e-9;

/// Worst oversubscribed link of one phase.
struct Worst {
    ratio: f64,
    link_idx: usize,
    flows: usize,
    demand: f64,
    capacity: f64,
}

/// Analyze one schedule; returns at most one advice diagnostic per step
/// (the worst link over both phases).
pub fn analyze_contention(schedule: &Schedule, params: &MachineParams) -> Vec<Diagnostic> {
    let n = schedule.n();
    if n < 2 {
        return Vec::new();
    }
    let tree = FatTree::new(n);
    let links = tree.link_count();
    let capacity: Vec<f64> = (0..links)
        .map(|idx| tree.link_capacity(tree.link_from_index(idx), params))
        .collect();
    let cap = params.flow_cap();
    let saf = schedule.store_and_forward;

    let mut diags = Vec::new();
    let mut demand = vec![0.0f64; links];
    let mut flows = vec![0usize; links];
    for (s, step) in schedule.steps().iter().enumerate() {
        let mut worst: Option<Worst> = None;
        // Phase 0 = the transfers that go first under blocking lowering
        // (plain sends, plus the first exchange direction); phase 1 = the
        // return direction of every exchange.
        for phase in 0..2 {
            demand.fill(0.0);
            flows.fill(0);
            for op in &step.ops {
                let (src, dst, bytes) = match (*op, phase) {
                    (CommOp::Send { from, to, bytes }, 0) => (from, to, bytes),
                    (CommOp::Send { .. }, _) => continue,
                    // Direct exchanges: higher node sends first (Figure 2);
                    // store-and-forward: lower node sends first (Figure 3).
                    (
                        CommOp::Exchange {
                            a,
                            b,
                            bytes_ab,
                            bytes_ba,
                        },
                        0,
                    ) => {
                        if saf {
                            (a, b, bytes_ab)
                        } else {
                            (b, a, bytes_ba)
                        }
                    }
                    (
                        CommOp::Exchange {
                            a,
                            b,
                            bytes_ab,
                            bytes_ba,
                        },
                        _,
                    ) => {
                        if saf {
                            (b, a, bytes_ba)
                        } else {
                            (a, b, bytes_ab)
                        }
                    }
                };
                if bytes == 0 || src == dst || src >= n || dst >= n {
                    continue; // zero-byte/malformed ops carry no bandwidth
                }
                for link in tree.route(src, dst) {
                    demand[link] += cap;
                    flows[link] += 1;
                }
            }
            for idx in 0..links {
                if capacity[idx] <= 0.0 {
                    continue;
                }
                let ratio = demand[idx] / capacity[idx];
                if ratio > 1.0 + OVER_EPS && worst.as_ref().is_none_or(|w| ratio > w.ratio) {
                    worst = Some(Worst {
                        ratio,
                        link_idx: idx,
                        flows: flows[idx],
                        demand: demand[idx],
                        capacity: capacity[idx],
                    });
                }
            }
        }
        if let Some(w) = worst {
            let link = tree.link_from_index(w.link_idx);
            let is_root = link.level == tree.levels() - 1;
            let code = if is_root {
                Code::RootHotspot
            } else {
                Code::LinkHotspot
            };
            let kind = if is_root {
                "exceeds bisection (root link) capacity"
            } else {
                "oversubscribes a link"
            };
            diags.push(Diagnostic::new(
                code,
                Span::step(s),
                format!(
                    "predicted hotspot: step {s} {kind} — {} concurrent flows demand {:.0} MB/s on {:?}-link level {} group {} ({:.0} MB/s capacity, {:.1}x oversubscribed)",
                    w.flows,
                    w.demand / 1e6,
                    link.dir,
                    link.level,
                    link.group,
                    w.capacity / 1e6,
                    w.ratio
                ),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm5_core::prelude::*;

    fn advice(schedule: &Schedule) -> Vec<Diagnostic> {
        analyze_contention(schedule, &MachineParams::cm5_1992())
    }

    /// PEX on 32 nodes runs 16 consecutive all-global steps: 16 flows per
    /// phase over an 80 MB/s root link = 2× oversubscribed. This is the
    /// paper's Figure 5 story, surfaced statically.
    #[test]
    fn pex_32_has_root_hotspots() {
        let d = advice(&pex(32, 1024));
        let roots = d.iter().filter(|x| x.code == Code::RootHotspot).count();
        assert_eq!(roots, 16, "{d:?}");
        assert!(d[0].message.contains("2.0x"), "{}", d[0].message);
    }

    /// BEX balances crossings (2/16/14 per step at n=32) so only the single
    /// unavoidable all-global step hits PEX's 2.0× peak; the tail steps sit
    /// at a milder 1.75×. REX concentrates the whole bisection load in its
    /// one top-level exchange step.
    #[test]
    fn bex_32_flattens_the_root_peak_and_rex_concentrates_it() {
        let d = advice(&bex(32, 1024));
        let roots: Vec<_> = d.iter().filter(|x| x.code == Code::RootHotspot).collect();
        assert_eq!(roots.len(), 16, "{d:?}");
        let peaks = roots.iter().filter(|x| x.message.contains("2.0x")).count();
        assert_eq!(peaks, 1, "only the all-global step peaks: {roots:?}");
        assert!(roots
            .iter()
            .all(|x| { x.message.contains("2.0x") || x.message.contains("1.8x") }));

        let d = advice(&rex(32, 1024));
        let roots = d.iter().filter(|x| x.code == Code::RootHotspot).count();
        assert_eq!(roots, 1, "REX crosses the root in exactly one step: {d:?}");
    }

    /// LEX's fan-in serializes at the receiver's leaf link: 7 flows against
    /// a 20 MB/s leaf = 3.5× — reported below the root.
    #[test]
    fn lex_8_has_leaf_hotspots() {
        let d = advice(&lex(8, 1024));
        assert_eq!(d.len(), 8, "one per step: {d:?}");
        assert!(d.iter().all(|x| x.code == Code::LinkHotspot));
        assert!(d[0].message.contains("3.5x"), "{}", d[0].message);
    }

    /// Small pairwise steps fit: PEX on 8 nodes has 4 crossings per global
    /// step against a 40 MB/s level-1 link — exactly at capacity, no
    /// hotspot (the tolerance keeps exact fits quiet).
    #[test]
    fn pex_8_fits_bisection() {
        assert!(advice(&pex(8, 1024)).is_empty());
    }

    /// Zero-byte ops carry no bandwidth.
    #[test]
    fn zero_byte_ops_ignored() {
        let mut s = Schedule::new(8);
        let mut step = Step::default();
        for i in 0..4usize {
            step.ops.push(CommOp::Send {
                from: i,
                to: 4,
                bytes: 0,
            });
        }
        s.push_step(step);
        assert!(advice(&s).is_empty());
    }

    /// The exchange directions are phased, not summed: a single exchange
    /// pair never oversubscribes its own leaf links.
    #[test]
    fn single_exchange_is_quiet() {
        let mut s = Schedule::new(4);
        s.push_step(Step {
            ops: vec![CommOp::Exchange {
                a: 0,
                b: 1,
                bytes_ab: 1 << 20,
                bytes_ba: 1 << 20,
            }],
        });
        assert!(advice(&s).is_empty());
    }
}
