//! SARIF 2.1.0 rendering of verifier diagnostics.
//!
//! [SARIF](https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html)
//! is the interchange format code-review tooling ingests natively; this
//! module renders any set of lint runs as one deterministic SARIF log:
//! rules come from [`Code::ALL`] in declaration order, results follow the
//! input order, and the output is schema-stamped (a `cm5-sarif/1` property
//! bag entry) like every other artifact emitter in the workspace, so CI can
//! byte-compare logs across runs.
//!
//! Schedules have no files or line numbers, so findings carry their
//! [`Span`](crate::Span) as a *logical location* (`step 3 node 7 op 1`)
//! plus the span coordinates in the result's property bag.

use crate::diag::{json_escape, Code, Diagnostics, Severity};

/// SARIF severity level for a diagnostic severity.
fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Advice => "note",
    }
}

/// Render one or more named lint runs (`(target name, diagnostics)`) as a
/// single-run SARIF 2.1.0 log. Deterministic: byte-identical output for
/// identical input.
pub fn render_sarif(targets: &[(String, &Diagnostics)]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\"");
    out.push_str(",\"version\":\"2.1.0\"");
    out.push_str(",\"properties\":{");
    out.push_str(&cm5_obs::schema_field("sarif", 1));
    out.push_str("},\"runs\":[{\"tool\":{\"driver\":{");
    out.push_str("\"name\":\"cm5-verify\",\"rules\":[");
    for (i, code) in Code::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":{}}},\
             \"defaultConfiguration\":{{\"level\":\"{}\"}}}}",
            code.as_str(),
            json_escape(code.title()),
            level(code.severity()),
        ));
    }
    out.push_str("]}},\"results\":[");
    let mut first = true;
    for (target, report) in targets {
        for d in report.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            let rule_index = Code::ALL
                .iter()
                .position(|c| c == &d.code)
                .expect("every code is in ALL");
            out.push_str(&format!(
                "{{\"ruleId\":\"{}\",\"ruleIndex\":{rule_index},\"level\":\"{}\",\
                 \"message\":{{\"text\":{}}}",
                d.code.as_str(),
                level(d.severity),
                json_escape(&d.message),
            ));
            out.push_str(&format!(
                ",\"locations\":[{{\"logicalLocations\":[{{\"name\":{},\
                 \"fullyQualifiedName\":{}}}]}}]",
                json_escape(&d.span.to_string()),
                json_escape(&format!("{target}::{}", d.span)),
            ));
            out.push_str(",\"properties\":{");
            out.push_str(&format!("\"target\":{}", json_escape(target)));
            if let Some(s) = d.span.step {
                out.push_str(&format!(",\"step\":{s}"));
            }
            if let Some(n) = d.span.node {
                out.push_str(&format!(",\"node\":{n}"));
            }
            if let Some(o) = d.span.op {
                out.push_str(&format!(",\"op\":{o}"));
            }
            if !d.witness.is_empty() {
                out.push_str(",\"witness\":[");
                for (i, w) in d.witness.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_escape(w));
                }
                out.push(']');
            }
            out.push_str("}}");
        }
    }
    out.push_str("]}]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exchange_policy, verify_schedule};
    use cm5_core::prelude::*;

    #[test]
    fn sarif_log_is_well_formed_and_deterministic() {
        let schedule = pex(32, 1024);
        let report = verify_schedule(&schedule, None, &exchange_policy(ExchangeAlg::Pex));
        let targets = vec![("pex n=32".to_string(), &report)];
        let a = render_sarif(&targets);
        let b = render_sarif(&targets);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\""));
        assert!(a.contains("\"version\":\"2.1.0\""));
        assert!(a.contains("\"schema\":\"cm5-sarif/1\""));
        // PEX at 32 nodes predicts 16 root hotspots → 16 note-level results.
        assert_eq!(a.matches("\"ruleId\":\"V030\"").count(), 16);
        assert!(a.contains("\"level\":\"note\""));
        // Every rule is declared exactly once.
        for code in Code::ALL {
            assert_eq!(
                a.matches(&format!("\"id\":\"{}\"", code.as_str())).count(),
                1
            );
        }
    }

    #[test]
    fn clean_runs_render_empty_results() {
        let schedule = pex(8, 1024);
        let report = verify_schedule(&schedule, None, &exchange_policy(ExchangeAlg::Pex));
        assert!(report.is_clean());
        let sarif = render_sarif(&[("pex n=8".to_string(), &report)]);
        assert!(sarif.contains("\"results\":[]"));
    }

    #[test]
    fn multiple_targets_share_one_run() {
        let r1 = verify_schedule(&pex(32, 1024), None, &exchange_policy(ExchangeAlg::Pex));
        let r2 = verify_schedule(&lex(8, 1024), None, &exchange_policy(ExchangeAlg::Lex));
        let sarif = render_sarif(&[("pex n=32".to_string(), &r1), ("lex n=8".to_string(), &r2)]);
        assert_eq!(sarif.matches("\"runs\":[{").count(), 1);
        assert!(sarif.contains("\"target\":\"pex n=32\""));
        assert!(sarif.contains("\"target\":\"lex n=8\""));
        // LEX at 8 nodes predicts 8 link hotspots (V031).
        assert_eq!(sarif.matches("\"ruleId\":\"V031\"").count(), 8);
    }
}
