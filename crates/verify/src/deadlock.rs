//! Blocking-semantics (CMMD rendezvous) deadlock analysis.
//!
//! The analysis runs the lowered per-node programs through an *un-timed*
//! abstract execution that mirrors the simulator's matching rules exactly:
//! a blocking `Send` completes only when the destination posts a `Recv`
//! naming its source and tag (and vice versa), `Isend` posts without
//! blocking, `WaitAll` blocks until every outstanding `Isend` has matched,
//! and collectives synchronize all nodes. Local ops (`Compute`, `Memcpy`,
//! `Flops`) always complete and are skipped.
//!
//! Because every receive names its source and tags are matched exactly,
//! rendezvous matching is *confluent*: firing one enabled match never
//! disables another, so whether the programs complete is independent of
//! timing — which is why a static analysis can promise anything about the
//! simulator. (`RecvAny` breaks this; see [`RECV_ANY_NOTE`].) When the
//! abstract execution gets stuck, the blocked nodes form a wait-for graph;
//! the analyzer extracts its cycles as [`Code::DeadlockCycle`] witnesses
//! and reports chains that end at a finished partner as [`Code::StuckOp`].

use cm5_sim::{Op, OpProgram};

use crate::diag::{Code, Diagnostic, Span};

/// Caveat for programs using `RecvAny`: which sender a wildcard receive
/// matches depends on message timing, so the analysis resolves it
/// deterministically (lowest pending sender first). Schedule lowering never
/// emits `RecvAny`, so the differential guarantee is unaffected.
pub const RECV_ANY_NOTE: &str =
    "recv-any matching is timing-dependent; the analysis resolves it lowest-sender-first";

/// What a blocked node is waiting on.
// `WaitAll` deliberately mirrors `Op::WaitAll`, not the enum name.
#[allow(clippy::enum_variant_names)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wait {
    /// Blocking send to `to` with `tag`, unmatched.
    Send { to: usize, tag: u32 },
    /// Blocking receive from `from` with `tag`, unmatched.
    Recv { from: usize, tag: u32 },
    /// Wildcard receive with `tag`, unmatched.
    RecvAny { tag: u32 },
    /// `WaitAll` with outstanding isends (first unmatched destination).
    WaitAll { first_to: usize },
    /// Parked at a collective (index into [`CollKind`] description).
    Collective,
}

/// Collective kinds must line up across nodes (the engine reports a
/// mismatch as an error; the abstract execution does the same).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CollKind {
    Barrier,
    Bcast { root: usize },
    Reduce,
    Scan,
}

impl CollKind {
    fn name(&self) -> String {
        match self {
            CollKind::Barrier => "barrier".into(),
            CollKind::Bcast { root } => format!("system-bcast(root {root})"),
            CollKind::Reduce => "reduce".into(),
            CollKind::Scan => "scan".into(),
        }
    }
}

struct State<'a> {
    programs: &'a [OpProgram],
    pc: Vec<usize>,
    done: Vec<bool>,
    wait: Vec<Option<Wait>>,
    coll: Vec<Option<CollKind>>,
    /// Unmatched isends per sender, in post order: `(to, tag, op_index)`.
    async_out: Vec<Vec<(usize, u32, usize)>>,
    queue: std::collections::VecDeque<usize>,
    queued: Vec<bool>,
}

impl<'a> State<'a> {
    fn new(programs: &'a [OpProgram]) -> State<'a> {
        let n = programs.len();
        State {
            programs,
            pc: vec![0; n],
            done: vec![false; n],
            wait: vec![None; n],
            coll: vec![None; n],
            async_out: vec![Vec::new(); n],
            queue: (0..n).collect(),
            queued: vec![true; n],
        }
    }

    fn enqueue(&mut self, node: usize) {
        if !self.queued[node] && !self.done[node] {
            self.queued[node] = true;
            self.queue.push_back(node);
        }
    }

    /// Whether node `to`'s parked receive matches a message `(from, tag)`.
    fn recv_matches(&self, to: usize, from: usize, tag: u32) -> bool {
        match self.wait[to] {
            Some(Wait::Recv { from: f, tag: t }) => f == from && t == tag,
            Some(Wait::RecvAny { tag: t }) => t == tag,
            _ => false,
        }
    }

    /// Complete node `to`'s parked receive and let it continue.
    fn complete_recv(&mut self, to: usize) {
        self.wait[to] = None;
        self.pc[to] += 1;
        self.enqueue(to);
    }

    /// Try to consume an unmatched isend `from → to` with `tag`. On success
    /// the sender's `WaitAll` (if parked) may unblock.
    fn take_isend(&mut self, from: usize, to: usize, tag: u32) -> bool {
        let Some(pos) = self.async_out[from]
            .iter()
            .position(|&(t, g, _)| t == to && g == tag)
        else {
            return false;
        };
        self.async_out[from].remove(pos);
        if self.async_out[from].is_empty() && matches!(self.wait[from], Some(Wait::WaitAll { .. }))
        {
            self.wait[from] = None;
            self.pc[from] += 1; // past the WaitAll
            self.enqueue(from);
        }
        true
    }

    /// Lowest-id sender with a message `(→ me, tag)` available: a parked
    /// blocking send, or an unmatched isend.
    fn find_any_sender(&self, me: usize, tag: u32) -> Option<(usize, bool)> {
        for from in 0..self.programs.len() {
            if from == me {
                continue;
            }
            if self.wait[from] == Some(Wait::Send { to: me, tag }) {
                return Some((from, false));
            }
            if self.async_out[from]
                .iter()
                .any(|&(t, g, _)| t == me && g == tag)
            {
                return Some((from, true));
            }
        }
        None
    }

    /// Run node `i` forward until it blocks or finishes.
    fn advance(&mut self, i: usize) {
        self.wait[i] = None;
        self.coll[i] = None;
        loop {
            let Some(op) = self.programs[i].get(self.pc[i]) else {
                self.done[i] = true;
                return;
            };
            match *op {
                Op::Compute(_) | Op::Memcpy { .. } | Op::Flops { .. } => {
                    self.pc[i] += 1;
                }
                Op::Send { to, tag, .. } => {
                    if self.recv_matches(to, i, tag) {
                        self.complete_recv(to);
                        self.pc[i] += 1;
                    } else {
                        self.wait[i] = Some(Wait::Send { to, tag });
                        return;
                    }
                }
                Op::Isend { to, tag, .. } => {
                    if self.recv_matches(to, i, tag) {
                        self.complete_recv(to);
                    } else {
                        self.async_out[i].push((to, tag, self.pc[i]));
                    }
                    self.pc[i] += 1;
                }
                Op::WaitAll => {
                    if self.async_out[i].is_empty() {
                        self.pc[i] += 1;
                    } else {
                        let first_to = self.async_out[i][0].0;
                        self.wait[i] = Some(Wait::WaitAll { first_to });
                        return;
                    }
                }
                Op::Recv { from, tag } => {
                    if self.wait[from] == Some(Wait::Send { to: i, tag }) {
                        self.wait[from] = None;
                        self.pc[from] += 1;
                        self.enqueue(from);
                        self.pc[i] += 1;
                    } else if self.take_isend(from, i, tag) {
                        self.pc[i] += 1;
                    } else {
                        self.wait[i] = Some(Wait::Recv { from, tag });
                        return;
                    }
                }
                Op::RecvAny { tag } => match self.find_any_sender(i, tag) {
                    Some((from, true)) => {
                        let taken = self.take_isend(from, i, tag);
                        debug_assert!(taken, "indexed isend must be consumable");
                        self.pc[i] += 1;
                    }
                    Some((from, false)) => {
                        self.wait[from] = None;
                        self.pc[from] += 1;
                        self.enqueue(from);
                        self.pc[i] += 1;
                    }
                    None => {
                        self.wait[i] = Some(Wait::RecvAny { tag });
                        return;
                    }
                },
                Op::Barrier => {
                    self.wait[i] = Some(Wait::Collective);
                    self.coll[i] = Some(CollKind::Barrier);
                    return;
                }
                Op::SystemBcast { root, .. } => {
                    self.wait[i] = Some(Wait::Collective);
                    self.coll[i] = Some(CollKind::Bcast { root });
                    return;
                }
                Op::Reduce => {
                    self.wait[i] = Some(Wait::Collective);
                    self.coll[i] = Some(CollKind::Reduce);
                    return;
                }
                Op::Scan => {
                    self.wait[i] = Some(Wait::Collective);
                    self.coll[i] = Some(CollKind::Scan);
                    return;
                }
            }
        }
    }

    /// Drain the work queue, then release collectives when every live node
    /// has arrived at one; repeat to fixpoint. Returns a collective-mismatch
    /// diagnostic if the nodes disagree on which collective they reached.
    fn run(&mut self) -> Option<Diagnostic> {
        loop {
            while let Some(i) = self.queue.pop_front() {
                self.queued[i] = false;
                if !self.done[i] {
                    self.advance(i);
                }
            }
            // Collective release requires EVERY node to arrive: a node that
            // finishes (or blocks) elsewhere leaves the others waiting
            // forever — the engine reports that as deadlock, and so do we
            // (via the stuck analysis).
            let live: Vec<usize> = (0..self.programs.len())
                .filter(|&i| !self.done[i])
                .collect();
            if live.is_empty() {
                return None;
            }
            if live.len() != self.programs.len() || !live.iter().all(|&i| self.coll[i].is_some()) {
                return None; // stuck (or waiting on point-to-point): caller reports
            }
            let first = self.coll[live[0]].expect("checked above");
            if let Some(&bad) = live[1..].iter().find(|&&i| self.coll[i] != Some(first)) {
                let got = self.coll[bad].expect("checked above");
                return Some(Diagnostic::new(
                    Code::CollectiveMismatch,
                    Span::program(bad, self.pc[bad]),
                    format!(
                        "node {bad} reached {} while node {} reached {}",
                        got.name(),
                        live[0],
                        first.name()
                    ),
                ));
            }
            for &i in &live {
                self.wait[i] = None;
                self.coll[i] = None;
                self.pc[i] += 1;
                self.enqueue(i);
            }
        }
    }

    /// Describe node `i`'s current (blocking) op for witness lines.
    fn describe(&self, i: usize) -> String {
        let op = match self.programs[i].get(self.pc[i]) {
            Some(op) => op,
            None => return format!("node {i}: finished"),
        };
        let desc = match *op {
            Op::Send { to, bytes, tag } => {
                format!("blocking send of {bytes} B to node {to} (tag {tag})")
            }
            Op::Recv { from, tag } => format!("blocking recv from node {from} (tag {tag})"),
            Op::RecvAny { tag } => format!("blocking recv-any (tag {tag})"),
            Op::WaitAll => {
                let pending: Vec<String> = self.async_out[i]
                    .iter()
                    .map(|&(to, tag, _)| format!("{to} (tag {tag})"))
                    .collect();
                format!("wait-all on unmatched isends to {}", pending.join(", "))
            }
            Op::Barrier => "barrier".into(),
            Op::SystemBcast { root, bytes } => {
                format!("system-bcast of {bytes} B from node {root}")
            }
            Op::Reduce => "reduce".into(),
            Op::Scan => "scan".into(),
            ref other => format!("{other:?}"),
        };
        format!("node {i}: op[{}] {desc}", self.pc[i])
    }

    /// Primary wait target of a blocked node, for the wait-for graph. `None`
    /// for `RecvAny` (no specific partner).
    fn target(&self, i: usize) -> Option<usize> {
        match self.wait[i]? {
            Wait::Send { to, .. } => Some(to),
            Wait::Recv { from, .. } => Some(from),
            Wait::RecvAny { .. } => None,
            Wait::WaitAll { first_to } => Some(first_to),
            // A collective waits on the lowest node that has not arrived.
            Wait::Collective => (0..self.programs.len()).find(|&j| self.coll[j].is_none()),
        }
    }
}

/// Analyze lowered programs for blocking-semantics deadlock. Returns one
/// [`Code::DeadlockCycle`] per wait-for cycle (with the full witness path),
/// one [`Code::StuckOp`] per node blocked directly on a finished partner,
/// and [`Code::CollectiveMismatch`] when nodes reach different collectives.
/// An empty result proves the programs complete under rendezvous semantics
/// (up to the `RecvAny` caveat).
pub fn analyze_programs_deadlock(programs: &[OpProgram]) -> Vec<Diagnostic> {
    let mut st = State::new(programs);
    if let Some(mismatch) = st.run() {
        return vec![mismatch];
    }
    let blocked: Vec<usize> = (0..programs.len()).filter(|&i| !st.done[i]).collect();
    if blocked.is_empty() {
        return Vec::new();
    }

    let mut diags = Vec::new();
    let mut reported = vec![false; programs.len()];

    // The wait-for graph is (at most) functional: each blocked node has one
    // primary target. Walk each unvisited node's chain; a revisit inside the
    // current walk is a cycle.
    let mut color = vec![0u32; programs.len()]; // 0 unvisited, else walk id
    let mut walk_id = 0u32;
    for &start in &blocked {
        if color[start] != 0 {
            continue;
        }
        walk_id += 1;
        let mut path = vec![start];
        color[start] = walk_id;
        let mut cur = start;
        loop {
            let Some(next) = st.target(cur) else {
                // RecvAny with no sender: report directly.
                if !reported[cur] {
                    reported[cur] = true;
                    diags.push(Diagnostic::new(
                        Code::StuckOp,
                        Span::program(cur, st.pc[cur]),
                        format!(
                            "{} can never match: no node ever sends it a message with this tag ({RECV_ANY_NOTE})",
                            st.describe(cur)
                        ),
                    ));
                }
                break;
            };
            if st.done[next] {
                // Chain ends at a finished partner: the node adjacent to it
                // is provably stuck.
                if !reported[cur] {
                    reported[cur] = true;
                    diags.push(Diagnostic::new(
                        Code::StuckOp,
                        Span::program(cur, st.pc[cur]),
                        format!(
                            "{} waits on node {next}, which finished without posting a matching operation",
                            st.describe(cur)
                        ),
                    ));
                }
                break;
            }
            if color[next] == walk_id {
                // Found a cycle: the suffix of `path` starting at `next`.
                let pos = path.iter().position(|&p| p == next).expect("on path");
                let cycle = &path[pos..];
                let witness: Vec<String> = cycle
                    .iter()
                    .enumerate()
                    .map(|(k, &node)| {
                        let waits_on = cycle[(k + 1) % cycle.len()];
                        format!("{} — waits on node {waits_on}", st.describe(node))
                    })
                    .collect();
                for &node in cycle {
                    reported[node] = true;
                }
                diags.push(
                    Diagnostic::new(
                        Code::DeadlockCycle,
                        Span::program(cycle[0], st.pc[cycle[0]]),
                        format!(
                            "blocking send/recv cycle of {} node(s): {}",
                            cycle.len(),
                            cycle
                                .iter()
                                .map(|n| n.to_string())
                                .collect::<Vec<_>>()
                                .join(" -> ")
                        ),
                    )
                    .with_witness(witness),
                );
                break;
            }
            if color[next] != 0 {
                break; // joins an earlier walk (already reported)
            }
            color[next] = walk_id;
            path.push(next);
            cur = next;
        }
    }

    let swept = blocked.iter().filter(|&&i| !reported[i]).count();
    if swept > 0 {
        if let Some(first) = diags.first_mut() {
            first.witness.push(format!(
                "({swept} more node(s) blocked transitively behind these)"
            ));
        }
    }
    diags
}

/// Program-level structural checks, mirroring the engine's `BadProgram`
/// errors: point-to-point ops must name a peer inside `0..n` (V001) and
/// never the node itself (V002).
pub fn check_program_structure(programs: &[OpProgram]) -> Vec<Diagnostic> {
    let n = programs.len();
    let mut diags = Vec::new();
    for (node, prog) in programs.iter().enumerate() {
        for (idx, op) in prog.iter().enumerate() {
            let peer = match *op {
                Op::Send { to, .. } | Op::Isend { to, .. } => Some(to),
                Op::Recv { from, .. } => Some(from),
                Op::SystemBcast { root, .. } => {
                    if root >= n {
                        diags.push(Diagnostic::new(
                            Code::BadNode,
                            Span::program(node, idx),
                            format!("system-bcast root {root} out of range 0..{n}"),
                        ));
                    }
                    None
                }
                _ => None,
            };
            let Some(peer) = peer else { continue };
            if peer >= n {
                diags.push(Diagnostic::new(
                    Code::BadNode,
                    Span::program(node, idx),
                    format!("op names node {peer}, out of range 0..{n}"),
                ));
            } else if peer == node {
                diags.push(Diagnostic::new(
                    Code::SelfMessage,
                    Span::program(node, idx),
                    format!("node {node} sends/receives a message to itself"),
                ));
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(to: usize, tag: u32) -> Op {
        Op::Send { to, bytes: 8, tag }
    }
    fn recv(from: usize, tag: u32) -> Op {
        Op::Recv { from, tag }
    }

    #[test]
    fn figure_2_pairing_completes() {
        // Lower node receives first (paper Figure 2) — the safe ordering.
        let progs = vec![vec![recv(1, 0), send(1, 0)], vec![send(0, 0), recv(0, 0)]];
        assert!(analyze_programs_deadlock(&progs).is_empty());
    }

    #[test]
    fn both_recv_first_is_a_cycle_with_witness() {
        let progs = vec![vec![recv(1, 0), send(1, 0)], vec![recv(0, 0), send(0, 0)]];
        let diags = analyze_programs_deadlock(&progs);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::DeadlockCycle);
        assert_eq!(diags[0].witness.len(), 2, "{:?}", diags[0].witness);
        assert!(diags[0].message.contains("0 -> 1") || diags[0].message.contains("1 -> 0"));
    }

    #[test]
    fn both_send_first_is_a_cycle() {
        let progs = vec![vec![send(1, 0), recv(1, 0)], vec![send(0, 0), recv(0, 0)]];
        let diags = analyze_programs_deadlock(&progs);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::DeadlockCycle);
    }

    #[test]
    fn tag_mismatch_is_a_two_cycle() {
        // 0 sends tag 1, 1 expects tag 2: each waits on the other.
        let progs = vec![vec![send(1, 1)], vec![recv(0, 2)]];
        let diags = analyze_programs_deadlock(&progs);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::DeadlockCycle);
        assert!(diags[0].witness.iter().any(|w| w.contains("tag 1")));
        assert!(diags[0].witness.iter().any(|w| w.contains("tag 2")));
    }

    #[test]
    fn dropped_recv_reports_stuck_on_finished_partner() {
        let progs = vec![vec![send(1, 0)], vec![]];
        let diags = analyze_programs_deadlock(&progs);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::StuckOp);
        assert!(diags[0].message.contains("finished without posting"));
    }

    #[test]
    fn three_cycle_found() {
        // 0 -> 1 -> 2 -> 0 ring, everyone sends first with no one receiving
        // until their own send completes.
        let progs = vec![
            vec![send(1, 0), recv(2, 0)],
            vec![send(2, 0), recv(0, 0)],
            vec![send(0, 0), recv(1, 0)],
        ];
        let diags = analyze_programs_deadlock(&progs);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::DeadlockCycle);
        assert_eq!(diags[0].witness.len(), 3);
    }

    #[test]
    fn isend_waitall_completes_and_unblocks() {
        let progs = vec![
            vec![
                Op::Isend {
                    to: 1,
                    bytes: 8,
                    tag: 0,
                },
                Op::WaitAll,
            ],
            vec![
                Op::Compute(cm5_sim::SimDuration::from_micros(5)),
                recv(0, 0),
            ],
        ];
        assert!(analyze_programs_deadlock(&progs).is_empty());
    }

    #[test]
    fn unmatched_isend_blocks_waitall() {
        let progs = vec![
            vec![
                Op::Isend {
                    to: 1,
                    bytes: 8,
                    tag: 7,
                },
                Op::WaitAll,
            ],
            vec![recv(0, 9)],
        ];
        let diags = analyze_programs_deadlock(&progs);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::DeadlockCycle);
        assert!(diags[0].witness.iter().any(|w| w.contains("wait-all")));
    }

    #[test]
    fn barrier_alignment_completes_and_misalignment_stalls() {
        let ok = vec![vec![Op::Barrier], vec![Op::Barrier]];
        assert!(analyze_programs_deadlock(&ok).is_empty());
        // Node 1 finishes without the barrier: node 0 waits forever.
        let stuck = vec![vec![Op::Barrier], vec![]];
        let diags = analyze_programs_deadlock(&stuck);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::StuckOp);
    }

    #[test]
    fn collective_kind_mismatch_reported() {
        let progs = vec![vec![Op::Barrier], vec![Op::Reduce]];
        let diags = analyze_programs_deadlock(&progs);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::CollectiveMismatch);
    }

    #[test]
    fn recv_any_matches_lowest_sender() {
        let progs = vec![
            vec![send(2, 3)],
            vec![send(2, 3)],
            vec![Op::RecvAny { tag: 3 }, Op::RecvAny { tag: 3 }],
        ];
        assert!(analyze_programs_deadlock(&progs).is_empty());
        let stuck = vec![vec![], vec![Op::RecvAny { tag: 3 }]];
        let diags = analyze_programs_deadlock(&stuck);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::StuckOp);
    }

    #[test]
    fn structure_checks_catch_bad_peer_and_self_message() {
        let progs = vec![vec![send(5, 0), send(0, 0)], vec![]];
        let diags = check_program_structure(&progs);
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].code, Code::BadNode);
        assert_eq!(diags[1].code, Code::SelfMessage);
    }

    #[test]
    fn transitively_blocked_nodes_are_counted() {
        // 1 and 2 deadlock; 0 waits on 1 behind the cycle.
        let progs = vec![
            vec![recv(1, 5)],
            vec![send(2, 0), recv(2, 0), send(0, 5)],
            vec![send(1, 0), recv(1, 0)],
        ];
        let diags = analyze_programs_deadlock(&progs);
        assert!(diags.iter().any(|d| d.code == Code::DeadlockCycle));
        let all_witness: String = diags
            .iter()
            .flat_map(|d| d.witness.iter())
            .cloned()
            .collect::<Vec<_>>()
            .join("\n");
        assert!(
            all_witness.contains("blocked transitively"),
            "{all_witness}"
        );
    }
}
