//! Conservation and shape lints over a [`Schedule`], plus the top-level
//! [`verify_schedule`]/[`verify_programs`] entry points.
//!
//! The structural and conservation checks subsume `cm5-core`'s ad-hoc
//! `check_nodes`/`check_pairwise_disjoint`/`check_coverage`: the verifier
//! reports *every* violation (not just the first), attaches spans, and
//! renders each finding with the same code-prefixed message the core
//! `ScheduleError` now displays — one vocabulary across the stack.

use cm5_core::exec::{lower_with, LowerOptions};
use cm5_core::pattern::Pattern;
use cm5_core::schedule::{CommOp, Schedule, ScheduleError};
use cm5_sim::{MachineParams, OpProgram};

use crate::contention::analyze_contention;
use crate::deadlock::{analyze_programs_deadlock, check_program_structure};
use crate::diag::{Code, Diagnostic, Diagnostics, Span};

/// What to verify and against which expectations. The policy flags exist
/// because the paper's linear algorithms *legitimately* serialize (LEX/LS
/// put one receiver in every op of a step), so step-disjointness is an
/// error only where the algorithm family promises it.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Report [`Code::StepConflict`] when a node appears in two ops of one
    /// step (the pairwise families' invariant).
    pub expect_disjoint: bool,
    /// Report [`Code::StepConflict`] when a node *sends* twice or *receives*
    /// twice in one step. This is the greedy scheduler's weaker invariant:
    /// Table 10 of the paper has node 0 send to 5 and receive from 7 in the
    /// same step, so GS promises per-direction availability, not full
    /// disjointness. Subsumed by `expect_disjoint`.
    pub expect_directional: bool,
    /// Report [`Code::NotPermutation`] when a step gives a node several
    /// send or several receive partners (the regular exchanges' invariant).
    pub expect_permutation: bool,
    /// Run the blocking-semantics deadlock analysis on the lowered
    /// programs.
    pub check_deadlock: bool,
    /// Run the static fat-tree contention analysis.
    pub check_contention: bool,
    /// Lowering options the deadlock analysis mirrors (async sends change
    /// the blocking structure).
    pub lower: LowerOptions,
    /// Machine parameters for the contention bounds.
    pub params: MachineParams,
}

impl Default for VerifyOptions {
    fn default() -> VerifyOptions {
        VerifyOptions {
            expect_disjoint: false,
            expect_directional: false,
            expect_permutation: false,
            check_deadlock: true,
            check_contention: true,
            lower: LowerOptions::default(),
            params: MachineParams::cm5_1992(),
        }
    }
}

/// Statically verify a schedule. `pattern` is the coverage target for
/// direct schedules (ignored, like `check_coverage`, for store-and-forward
/// schedules whose ops carry aggregated bytes).
pub fn verify_schedule(
    schedule: &Schedule,
    pattern: Option<&Pattern>,
    opts: &VerifyOptions,
) -> Diagnostics {
    let mut diags = Diagnostics::new();
    structural_lints(schedule, opts, &mut diags);
    if let Some(p) = pattern {
        if !schedule.store_and_forward {
            coverage_lints(schedule, p, &mut diags);
        }
    }
    // Out-of-range or self-addressed ops make the lowered programs
    // meaningless (and would panic the lowering), so stop here.
    if diags.has(Code::BadNode) || diags.has(Code::SelfMessage) {
        return diags;
    }
    if opts.check_contention {
        diags.extend(analyze_contention(schedule, &opts.params));
    }
    if opts.check_deadlock {
        let programs = lower_with(schedule, &opts.lower);
        diags.extend(analyze_programs_deadlock(&programs));
    }
    diags
}

/// Statically verify lowered per-node programs (the form `cm5 lint
/// --inject` mutates and the differential harness exercises directly):
/// program structure plus the deadlock analysis.
pub fn verify_programs(programs: &[OpProgram]) -> Diagnostics {
    let mut diags = Diagnostics::new();
    let structure = check_program_structure(programs);
    let malformed = !structure.is_empty();
    diags.extend(structure);
    if !malformed {
        diags.extend(analyze_programs_deadlock(programs));
    }
    diags
}

/// Per-op structural lints (V001/V002/V003) plus the policy-gated step
/// shape lints (V010/V011/V014).
fn structural_lints(schedule: &Schedule, opts: &VerifyOptions, diags: &mut Diagnostics) {
    let n = schedule.n();
    // A uniformly zero-byte schedule is a latency measurement (the paper's
    // 88 µs zero-byte exchange, Figure 5's bytes=0 column) — deliberate,
    // not a bug. V003 only flags a stray zero-byte op among real traffic.
    let all_zero = schedule.total_bytes() == 0;
    for (s, step) in schedule.steps().iter().enumerate() {
        // Node occupancy for V010, directed-pair occupancy for V011, and
        // per-direction partner counts for V014.
        let mut seen = vec![false; n];
        let mut conflicted = vec![false; n];
        let mut sends: Vec<(usize, usize)> = Vec::with_capacity(step.ops.len() * 2);
        for (o, op) in step.ops.iter().enumerate() {
            let (a, b) = op.endpoints();
            for node in [a, b] {
                if node >= n {
                    // Render through ScheduleError so core and verifier
                    // emit byte-identical messages.
                    diags.push(Diagnostic::new(
                        Code::BadNode,
                        Span::at(s, o),
                        strip_code(&ScheduleError::BadNode { step: s, node }.to_string()),
                    ));
                }
            }
            if a == b {
                diags.push(Diagnostic::new(
                    Code::SelfMessage,
                    Span::at(s, o),
                    strip_code(&ScheduleError::SelfMessage { step: s, node: a }.to_string()),
                ));
            }
            if op.bytes() == 0 && !all_zero {
                diags.push(Diagnostic::new(
                    Code::ZeroBytes,
                    Span::at(s, o),
                    format!("op moves zero bytes ({op:?})"),
                ));
            }
            if a >= n || b >= n || a == b {
                continue;
            }
            if opts.expect_disjoint {
                for node in [a, b] {
                    if seen[node] && !conflicted[node] {
                        conflicted[node] = true;
                        diags.push(Diagnostic::new(
                            Code::StepConflict,
                            Span::at(s, o),
                            strip_code(&ScheduleError::NodeConflict { step: s, node }.to_string()),
                        ));
                    }
                    seen[node] = true;
                }
            }
            match *op {
                CommOp::Exchange { a, b, .. } => {
                    sends.push((a, b));
                    sends.push((b, a));
                }
                CommOp::Send { from, to, .. } => sends.push((from, to)),
            }
        }
        // V011: the same directed transfer twice in one step shares a tag.
        let mut sorted = sends.clone();
        sorted.sort_unstable();
        let mut reported: Option<(usize, usize)> = None;
        for w in sorted.windows(2) {
            if w[0] == w[1] && reported != Some(w[0]) {
                reported = Some(w[0]);
                let (from, to) = w[0];
                diags.push(Diagnostic::new(
                    Code::DuplicatePair,
                    Span::step(s),
                    format!(
                        "step {s} transfers {from}->{to} twice; both messages carry tag {s}, so delivery order is ambiguous"
                    ),
                ));
            }
        }
        if opts.expect_directional && !opts.expect_disjoint {
            directional_lint(s, &sends, n, diags);
        }
        if opts.expect_permutation {
            permutation_lint(s, &sends, n, diags);
        }
    }
}

/// V010 (directional form): within one step, each node issues at most one
/// send and at most one receive — two ops may still share a node in
/// *opposite* directions (GS's Table 10 invariant).
fn directional_lint(s: usize, sends: &[(usize, usize)], n: usize, diags: &mut Diagnostics) {
    let mut out = vec![0usize; n];
    let mut inn = vec![0usize; n];
    for &(from, to) in sends {
        out[from] += 1;
        if out[from] == 2 {
            diags.push(Diagnostic::new(
                Code::StepConflict,
                Span::step(s),
                format!("node {from} sends twice in step {s}"),
            ));
        }
        inn[to] += 1;
        if inn[to] == 2 {
            diags.push(Diagnostic::new(
                Code::StepConflict,
                Span::step(s),
                format!("node {to} receives twice in step {s}"),
            ));
        }
    }
}

/// V014: within one step, each node must have at most one send partner and
/// at most one receive partner (each phase of a regular exchange is a
/// permutation).
fn permutation_lint(s: usize, sends: &[(usize, usize)], n: usize, diags: &mut Diagnostics) {
    let mut out = vec![usize::MAX; n];
    let mut inn = vec![usize::MAX; n];
    for &(from, to) in sends {
        if out[from] != usize::MAX && out[from] != to {
            diags.push(Diagnostic::new(
                Code::NotPermutation,
                Span::step(s),
                format!(
                    "step {s} is not a permutation: node {from} sends to both {} and {to}",
                    out[from]
                ),
            ));
        }
        out[from] = to;
        if inn[to] != usize::MAX && inn[to] != from {
            diags.push(Diagnostic::new(
                Code::NotPermutation,
                Span::step(s),
                format!(
                    "step {s} is not a permutation: node {to} receives from both {} and {from}",
                    inn[to]
                ),
            ));
        }
        inn[to] = from;
    }
}

/// V012/V013: byte conservation against the pattern, every ordered pair.
fn coverage_lints(schedule: &Schedule, pattern: &Pattern, diags: &mut Diagnostics) {
    let n = schedule.n();
    if pattern.n() != n {
        diags.push(Diagnostic::new(
            Code::CoverageMissing,
            Span::default(),
            format!(
                "pattern is over {} nodes but the schedule is over {n}",
                pattern.n()
            ),
        ));
        return;
    }
    let mut moved = vec![0u64; n * n];
    for step in schedule.steps() {
        for op in &step.ops {
            match *op {
                CommOp::Exchange {
                    a,
                    b,
                    bytes_ab,
                    bytes_ba,
                } => {
                    if a < n && b < n {
                        moved[a * n + b] += bytes_ab;
                        moved[b * n + a] += bytes_ba;
                    }
                }
                CommOp::Send { from, to, bytes } => {
                    if from < n && to < n {
                        moved[from * n + to] += bytes;
                    }
                }
            }
        }
    }
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let expected = pattern.get(i, j);
            let actual = moved[i * n + j];
            if expected == actual {
                continue;
            }
            let code = if actual < expected {
                Code::CoverageMissing
            } else {
                Code::CoverageExcess
            };
            diags.push(Diagnostic::new(
                code,
                Span::default(),
                strip_code(
                    &ScheduleError::Coverage {
                        from: i,
                        to: j,
                        expected,
                        actual,
                    }
                    .to_string(),
                ),
            ));
        }
    }
}

/// `ScheduleError::Display` now renders `"V0xx: message"`; the diagnostic
/// stores the bare message (the code lives in `Diagnostic::code`) so the
/// rendered transcript says the code exactly once — and matches core's
/// rendering character for character.
fn strip_code(rendered: &str) -> String {
    match rendered.split_once(": ") {
        Some((code, rest)) if code.starts_with('V') => rest.to_string(),
        _ => rendered.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm5_core::prelude::*;

    fn strict() -> VerifyOptions {
        VerifyOptions {
            expect_disjoint: true,
            expect_permutation: true,
            ..VerifyOptions::default()
        }
    }

    #[test]
    fn pex_is_clean_and_permutation() {
        let s = pex(16, 256);
        let p = Pattern::complete_exchange(16, 256);
        let d = verify_schedule(&s, Some(&p), &strict());
        assert!(d.is_clean(), "{}", d.render_human());
    }

    #[test]
    fn lex_conflicts_only_under_disjoint_policy() {
        let s = lex(8, 256);
        let p = Pattern::complete_exchange(8, 256);
        let relaxed = verify_schedule(&s, Some(&p), &VerifyOptions::default());
        assert!(relaxed.is_clean(), "{}", relaxed.render_human());
        let d = verify_schedule(&s, Some(&p), &strict());
        assert!(d.has(Code::StepConflict));
        assert!(!d.is_clean());
    }

    #[test]
    fn gs_passes_directional_but_not_full_disjointness() {
        // Table 10's step 3 has node 0 send to 5 and receive from 7: legal
        // under GS's per-direction policy, a conflict under the pairwise one.
        let p = Pattern::paper_pattern_p(64);
        let s = gs(&p);
        let d = verify_schedule(&s, Some(&p), &crate::irregular_policy(IrregularAlg::Gs));
        assert!(d.is_clean(), "{}", d.render_human());
        let d = verify_schedule(&s, Some(&p), &strict());
        assert!(d.has(Code::StepConflict));
    }

    #[test]
    fn directional_conflict_reported() {
        let mut s = Schedule::new(4);
        s.push_step(Step {
            ops: vec![
                CommOp::Send {
                    from: 0,
                    to: 1,
                    bytes: 8,
                },
                CommOp::Send {
                    from: 0,
                    to: 2,
                    bytes: 8,
                },
                CommOp::Send {
                    from: 3,
                    to: 1,
                    bytes: 8,
                },
            ],
        });
        let opts = VerifyOptions {
            expect_directional: true,
            ..VerifyOptions::default()
        };
        let d = verify_schedule(&s, None, &opts);
        let conflicts: Vec<_> = d.iter().filter(|x| x.code == Code::StepConflict).collect();
        assert_eq!(conflicts.len(), 2, "{}", d.render_human());
        assert!(conflicts[0].message.contains("sends twice"));
        assert!(conflicts[1].message.contains("receives twice"));
    }

    #[test]
    fn coverage_missing_and_excess_both_reported() {
        let p = Pattern::complete_exchange(4, 10);
        let mut s = Schedule::new(4);
        s.push_step(Step {
            ops: vec![CommOp::Exchange {
                a: 0,
                b: 1,
                bytes_ab: 10,
                bytes_ba: 25,
            }],
        });
        let d = verify_schedule(&s, Some(&p), &VerifyOptions::default());
        assert!(d.has(Code::CoverageMissing)); // every un-covered pair
        assert!(d.has(Code::CoverageExcess)); // 1->0 moves 25 > 10
                                              // 12 ordered pairs minus the exact 0->1 = 11 findings.
        assert_eq!(
            d.iter()
                .filter(|x| x.severity == crate::Severity::Error)
                .count(),
            11
        );
    }

    #[test]
    fn core_and_verifier_render_identical_messages() {
        let mut s = Schedule::new(4);
        s.push_step(Step {
            ops: vec![
                CommOp::Send {
                    from: 0,
                    to: 9,
                    bytes: 1,
                },
                CommOp::Send {
                    from: 1,
                    to: 1,
                    bytes: 1,
                },
            ],
        });
        let core_err = s.check_nodes().unwrap_err();
        let d = verify_schedule(&s, None, &VerifyOptions::default());
        let bad = d.iter().find(|x| x.code == Code::BadNode).expect("V001");
        assert_eq!(
            core_err.to_string(),
            format!("{}: {}", bad.code, bad.message),
            "core Display and verifier rendering must agree"
        );
        assert_eq!(core_err.code(), bad.code.as_str());
        assert!(d.has(Code::SelfMessage));
    }

    #[test]
    fn duplicate_directed_pair_warns() {
        let mut s = Schedule::new(4);
        s.push_step(Step {
            ops: vec![
                CommOp::Send {
                    from: 0,
                    to: 1,
                    bytes: 8,
                },
                CommOp::Send {
                    from: 0,
                    to: 1,
                    bytes: 8,
                },
            ],
        });
        let d = verify_schedule(&s, None, &VerifyOptions::default());
        assert!(d.has(Code::DuplicatePair));
        assert_eq!(d.count(crate::Severity::Warning), 1, "reported once");
    }

    #[test]
    fn non_permutation_step_reported() {
        let mut s = Schedule::new(4);
        s.push_step(Step {
            ops: vec![
                CommOp::Send {
                    from: 0,
                    to: 1,
                    bytes: 8,
                },
                CommOp::Send {
                    from: 0,
                    to: 2,
                    bytes: 8,
                },
            ],
        });
        let opts = VerifyOptions {
            expect_permutation: true,
            ..VerifyOptions::default()
        };
        let d = verify_schedule(&s, None, &opts);
        assert!(d.has(Code::NotPermutation));
    }

    #[test]
    fn zero_byte_op_warns_only_amid_real_traffic() {
        let mut s = Schedule::new(4);
        s.push_step(Step {
            ops: vec![
                CommOp::Send {
                    from: 0,
                    to: 1,
                    bytes: 0,
                },
                CommOp::Send {
                    from: 2,
                    to: 3,
                    bytes: 64,
                },
            ],
        });
        let d = verify_schedule(&s, None, &VerifyOptions::default());
        assert!(d.has(Code::ZeroBytes));
        assert!(!d.is_clean());

        // A uniformly zero-byte schedule is a latency measurement, not a bug.
        let z = pex(8, 0);
        let d = verify_schedule(&z, None, &VerifyOptions::default());
        assert!(d.is_clean(), "{}", d.render_human());
    }

    #[test]
    fn rex_coverage_skipped_for_store_and_forward() {
        let s = rex(8, 256);
        assert!(s.store_and_forward);
        let p = Pattern::complete_exchange(8, 256);
        let d = verify_schedule(&s, Some(&p), &strict());
        assert!(d.is_clean(), "{}", d.render_human());
    }

    #[test]
    fn pattern_size_mismatch_is_an_error() {
        let s = pex(8, 64);
        let p = Pattern::complete_exchange(16, 64);
        let d = verify_schedule(&s, Some(&p), &VerifyOptions::default());
        assert!(d.has(Code::CoverageMissing));
    }

    #[test]
    fn bad_node_short_circuits_deadlock_analysis() {
        let mut s = Schedule::new(2);
        s.push_step(Step {
            ops: vec![CommOp::Send {
                from: 0,
                to: 7,
                bytes: 1,
            }],
        });
        let d = verify_schedule(&s, None, &VerifyOptions::default());
        assert!(d.has(Code::BadNode));
        assert!(!d.has_deadlock());
    }
}
