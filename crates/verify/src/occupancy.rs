//! Static per-node buffer-occupancy bounds.
//!
//! The paper's GS scheduler exists because an unscheduled irregular pattern
//! can land an unbounded pile of messages on one node at once — on a real
//! CM-5 that overflows the receive buffers CMMD manages. This module bounds
//! that pile *statically*, per node, from the lowered programs alone:
//!
//! * **Eager occupancy** — under buffered ([`SendMode::Eager`]) semantics a
//!   message occupies the destination's buffer from arrival until the
//!   matching receive claims it. In the worst case every inbound message is
//!   resident at once, so the bound for node `d` is the total inbound
//!   payload of `d`. The simulator's per-run `buffer_peak` differential
//!   (see [`cm5_sim::SimReport`]) must stay at or below this.
//! * **Pending-rendezvous occupancy** — under rendezvous semantics blocking
//!   sends are never buffered (the transfer runs in place), but
//!   *non-blocking* sends park until the receiver posts. A sender can only
//!   have the isends of its current send window (since the last
//!   [`Op::WaitAll`]) outstanding, so the bound for node `d` sums, over
//!   every sender, that sender's largest per-window payload toward `d`.
//!
//! When a budget is configured, bounds above it raise `V040`
//! ([`Code::EagerOverflow`]) or `V041` ([`Code::PendingBacklog`]) — both
//! warnings, because a generous host buffer may still absorb the worst
//! case; the point is that the worst case is now a printed number instead
//! of a runtime surprise.

use crate::diag::{Code, Diagnostic, Diagnostics, Span};
use cm5_sim::{MachineParams, Op, OpProgram, SendMode};

/// Configurable buffer budgets, in payload bytes per node. `None` disables
/// the corresponding diagnostic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OccupancyBudget {
    /// Budget for eager-mode receive buffering (`V040`).
    pub eager_bytes: Option<u64>,
    /// Budget for pending non-blocking rendezvous sends (`V041`).
    pub pending_bytes: Option<u64>,
}

/// Static per-node occupancy bounds for one lowered program set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancyBounds {
    /// Worst-case eager receive-buffer residency per node, payload bytes.
    pub eager_peak: Vec<u64>,
    /// Worst-case pending non-blocking send backlog per destination node,
    /// payload bytes.
    pub pending_peak: Vec<u64>,
    /// The send mode the programs will run under (decides which bound the
    /// simulator differential compares against).
    pub mode: SendMode,
}

impl OccupancyBounds {
    /// Largest eager bound across nodes.
    pub fn max_eager(&self) -> u64 {
        self.eager_peak.iter().copied().max().unwrap_or(0)
    }

    /// Largest pending bound across nodes.
    pub fn max_pending(&self) -> u64 {
        self.pending_peak.iter().copied().max().unwrap_or(0)
    }

    /// The bound the simulator's measured `buffer_peak` must respect under
    /// this mode, per node.
    pub fn sim_bound(&self) -> &[u64] {
        match self.mode {
            SendMode::Eager => &self.eager_peak,
            SendMode::Rendezvous => &self.pending_peak,
        }
    }

    /// Check the bounds against a budget, emitting `V040`/`V041` findings.
    pub fn diagnose(&self, budget: &OccupancyBudget) -> Diagnostics {
        let mut out = Diagnostics::new();
        if let Some(limit) = budget.eager_bytes {
            for (node, &peak) in self.eager_peak.iter().enumerate() {
                if peak > limit {
                    out.push(Diagnostic::new(
                        Code::EagerOverflow,
                        Span {
                            step: None,
                            op: None,
                            node: Some(node),
                        },
                        format!(
                            "eager receive buffering on node {node} may reach {peak} B \
                             (budget {limit} B)"
                        ),
                    ));
                }
            }
        }
        if let Some(limit) = budget.pending_bytes {
            for (node, &peak) in self.pending_peak.iter().enumerate() {
                if peak > limit {
                    out.push(Diagnostic::new(
                        Code::PendingBacklog,
                        Span {
                            step: None,
                            op: None,
                            node: Some(node),
                        },
                        format!(
                            "pending non-blocking sends toward node {node} may reach {peak} B \
                             (budget {limit} B)"
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// Compute static occupancy bounds for `programs` under `params.send_mode`.
pub fn occupancy_bounds(programs: &[OpProgram], params: &MachineParams) -> OccupancyBounds {
    let n = programs.len();
    let mut eager_peak = vec![0u64; n];
    let mut pending_peak = vec![0u64; n];
    for prog in programs.iter() {
        // Per-destination payload of this sender's current isend window and
        // the largest window seen so far.
        let mut window = vec![0u64; n];
        let mut worst = vec![0u64; n];
        for op in prog {
            match *op {
                Op::Send { to, bytes, .. } if to < n => {
                    eager_peak[to] += bytes;
                }
                Op::Isend { to, bytes, .. } if to < n => {
                    eager_peak[to] += bytes;
                    window[to] += bytes;
                    if window[to] > worst[to] {
                        worst[to] = window[to];
                    }
                }
                Op::WaitAll => {
                    window.iter_mut().for_each(|w| *w = 0);
                }
                _ => {}
            }
        }
        // A program that never waits keeps its whole backlog pending.
        for (d, &w) in worst.iter().enumerate() {
            pending_peak[d] += w;
        }
    }
    OccupancyBounds {
        eager_peak,
        pending_peak,
        mode: params.send_mode,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm5_core::prelude::*;

    #[test]
    fn eager_bound_is_total_inbound_payload() {
        let params = MachineParams::cm5_1992_buffered();
        let progs = cm5_core::exec::exchange_programs(ExchangeAlg::Pex, 8, 1024);
        let b = occupancy_bounds(&progs, &params);
        // Complete exchange: each node receives from the 7 others.
        assert_eq!(b.eager_peak, vec![7 * 1024; 8]);
        assert_eq!(b.mode, SendMode::Eager);
    }

    #[test]
    fn blocking_rendezvous_has_no_pending_backlog() {
        let params = MachineParams::cm5_1992();
        let progs = cm5_core::exec::exchange_programs(ExchangeAlg::Lex, 8, 1024);
        let b = occupancy_bounds(&progs, &params);
        assert_eq!(b.max_pending(), 0);
        assert!(b.sim_bound().iter().all(|&x| x == 0));
    }

    #[test]
    fn waitall_resets_the_pending_window() {
        let params = MachineParams::cm5_1992();
        let isend = |to: usize, bytes: u64, tag: u32| Op::Isend { to, bytes, tag };
        // Two windows of 64 B toward node 1 — bounded by the larger window,
        // not their sum.
        let progs: Vec<OpProgram> = vec![
            vec![isend(1, 64, 0), Op::WaitAll, isend(1, 64, 1), Op::WaitAll],
            vec![Op::Recv { from: 0, tag: 0 }, Op::Recv { from: 0, tag: 1 }],
        ];
        let b = occupancy_bounds(&progs, &params);
        assert_eq!(b.pending_peak[1], 64);

        // Without the WaitAll the windows accumulate.
        let progs2: Vec<OpProgram> = vec![
            vec![isend(1, 64, 0), isend(1, 64, 1), Op::WaitAll],
            vec![Op::Recv { from: 0, tag: 0 }, Op::Recv { from: 0, tag: 1 }],
        ];
        let b2 = occupancy_bounds(&progs2, &params);
        assert_eq!(b2.pending_peak[1], 128);
    }

    #[test]
    fn budget_raises_v040_and_v041() {
        let eager = MachineParams::cm5_1992_buffered();
        let progs = cm5_core::exec::exchange_programs(ExchangeAlg::Pex, 8, 1024);
        let bounds = occupancy_bounds(&progs, &eager);
        let report = bounds.diagnose(&OccupancyBudget {
            eager_bytes: Some(4096),
            pending_bytes: None,
        });
        assert_eq!(report.count(crate::Severity::Warning), 8);
        assert!(report.has(Code::EagerOverflow));

        // No budget, no findings.
        assert!(bounds.diagnose(&OccupancyBudget::default()).is_clean());

        let rendezvous = MachineParams::cm5_1992();
        let opts = LowerOptions {
            async_sends: true,
            ..Default::default()
        };
        let progs = cm5_core::exec::lower_with(&pex(8, 1024), &opts);
        let bounds = occupancy_bounds(&progs, &rendezvous);
        let report = bounds.diagnose(&OccupancyBudget {
            eager_bytes: None,
            pending_bytes: Some(512),
        });
        assert!(report.has(Code::PendingBacklog));
    }
}
