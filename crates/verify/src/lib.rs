//! # cm5-verify — static schedule verification
//!
//! The paper's schedules run on *synchronous* (blocking) CMMD send/recv: a
//! mispaired send hangs the whole machine, and LEX/LS lose Figure 5
//! precisely because blocking semantics serialize their fan-ins. This crate
//! proves a [`Schedule`](cm5_core::schedule::Schedule) safe **before** it
//! runs:
//!
//! * **Deadlock analysis** ([`deadlock`]): an un-timed abstract execution
//!   of the lowered per-node programs under rendezvous matching; stuck
//!   states are reported as wait-for cycles with full witness paths
//!   (`V020`), stuck ops (`V021`), or collective mismatches (`V022`).
//!   Rendezvous matching with named sources is confluent, so the verdict
//!   is timing-independent — the property the differential test suite
//!   checks against the simulator on thousands of mutated schedules.
//! * **Conservation & shape lints** ([`lints`]): node ranges (`V001`),
//!   self-messages (`V002`), zero-byte ops (`V003`), step disjointness
//!   (`V010`), tag collisions (`V011`), byte conservation against a
//!   [`Pattern`](cm5_core::pattern::Pattern) (`V012`/`V013`), and
//!   per-step permutation shape (`V014`).
//! * **Contention analysis** ([`contention`]): static per-step link-load
//!   bounds over the fat tree; steps that exceed bisection capacity are
//!   flagged as predicted hotspots (`V030`/`V031`) — advice, not errors,
//!   because the paper's own PEX deliberately saturates the root.
//! * **Makespan certification** ([`certify`]): a whole-program abstract
//!   interpreter that replays the lowered programs under closed-form
//!   optimistic/pessimistic transfer rates and emits a certified interval
//!   `[LB, UB]` the simulated makespan provably lands in, plus the
//!   per-step critical-path transcript behind it (`cm5 certify`).
//! * **Buffer-occupancy bounds** ([`occupancy`]): static per-node bounds
//!   on eager-send buffer usage and pending rendezvous backlog, with
//!   budget diagnostics (`V040`/`V041`) — the "irregular pattern overflows
//!   receive buffers" failure mode the paper's GS scheduler exists to
//!   prevent.
//! * **SARIF rendering** ([`sarif`]): deterministic SARIF 2.1.0 export of
//!   any diagnostics run for code-review tooling.
//!
//! Findings carry stable codes, severities and spans in a [`Diagnostics`]
//! report with human and JSON rendering; `cm5 lint` wires it to the shell.
//!
//! ```
//! use cm5_core::prelude::*;
//! use cm5_verify::{exchange_policy, verify_schedule, Code};
//!
//! let schedule = bex(32, 1024);
//! let pattern = Pattern::complete_exchange(32, 1024);
//! let report = verify_schedule(&schedule, Some(&pattern), &exchange_policy(ExchangeAlg::Bex));
//! assert!(report.is_clean()); // no errors or warnings...
//! assert!(report.has(Code::RootHotspot)); // ...but BEX's one all-global step is flagged
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certify;
pub mod contention;
pub mod deadlock;
pub mod diag;
pub mod lints;
pub mod mutate;
pub mod occupancy;
pub mod sarif;

pub use certify::{certify_meta, certify_programs, certify_schedule, Certificate, CertifyError};
pub use diag::{Code, Diagnostic, Diagnostics, Severity, Span};
pub use lints::{verify_programs, verify_schedule, VerifyOptions};
pub use occupancy::{occupancy_bounds, OccupancyBounds, OccupancyBudget};
pub use sarif::render_sarif;

use cm5_core::broadcast::BroadcastAlg;
use cm5_core::irregular::IrregularAlg;
use cm5_core::regular::ExchangeAlg;

/// The verification policy a regular exchange algorithm promises: the
/// pairwise families (PEX/REX/BEX) guarantee disjoint permutation steps;
/// LEX's whole point is that it does not.
pub fn exchange_policy(alg: ExchangeAlg) -> VerifyOptions {
    let pairwise = !matches!(alg, ExchangeAlg::Lex);
    VerifyOptions {
        expect_disjoint: pairwise,
        expect_permutation: pairwise,
        ..VerifyOptions::default()
    }
}

/// The verification policy an irregular scheduler promises: PS/BS build
/// pairwise-disjoint steps; GS only promises per-direction availability
/// (Table 10 has a node send *and* receive in one step); LS serializes a
/// receiver per step by design. (None promises permutation steps —
/// irregular patterns are lopsided.)
pub fn irregular_policy(alg: IrregularAlg) -> VerifyOptions {
    VerifyOptions {
        expect_disjoint: matches!(alg, IrregularAlg::Ps | IrregularAlg::Bs),
        expect_directional: !matches!(alg, IrregularAlg::Ls),
        ..VerifyOptions::default()
    }
}

/// The verification policy of the schedule-based broadcasts (LIB's steps
/// hold a single send; REB's binomial steps are disjoint).
pub fn broadcast_policy(_alg: BroadcastAlg) -> VerifyOptions {
    VerifyOptions {
        expect_disjoint: true,
        ..VerifyOptions::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm5_core::prelude::*;

    #[test]
    fn policies_match_algorithm_families() {
        assert!(!exchange_policy(ExchangeAlg::Lex).expect_disjoint);
        assert!(exchange_policy(ExchangeAlg::Pex).expect_permutation);
        assert!(!irregular_policy(IrregularAlg::Ls).expect_disjoint);
        assert!(!irregular_policy(IrregularAlg::Ls).expect_directional);
        assert!(irregular_policy(IrregularAlg::Ps).expect_disjoint);
        assert!(!irregular_policy(IrregularAlg::Gs).expect_disjoint);
        assert!(irregular_policy(IrregularAlg::Gs).expect_directional);
        assert!(broadcast_policy(BroadcastAlg::Recursive).expect_disjoint);
    }

    #[test]
    fn doc_example_holds() {
        let schedule = bex(32, 1024);
        let pattern = Pattern::complete_exchange(32, 1024);
        let report = verify_schedule(
            &schedule,
            Some(&pattern),
            &exchange_policy(ExchangeAlg::Bex),
        );
        assert!(report.is_clean(), "{}", report.render_human());
        assert!(report.has(Code::RootHotspot));
    }
}
