//! Static makespan certification: a whole-program abstract interpreter
//! over lowered schedule programs.
//!
//! The paper's thesis is that schedule *structure* determines completion
//! time on the fat tree — so completion time should be provable from the
//! program text alone. This module computes a certified makespan interval
//! `[LB, UB]` for any lowered [`OpProgram`] set by replaying the programs
//! through a discrete abstract executor that mirrors the simulator's
//! matching and charging semantics exactly (send/recv software overheads,
//! rendezvous vs eager matching, wire latency, collective fences), but
//! prices every transfer with a *closed-form* rate instead of the dynamic
//! max-min flow solver:
//!
//! * **Lower bound** — the optimistic replay gives every message the best
//!   rate it could ever see: `min(flow_cap, min over route links of
//!   capacity)`. Because the real solver can never beat the per-flow cap
//!   and matching of named-source receives is structural (timing cannot
//!   change *who* matches *whom*), event times in the real run dominate the
//!   optimistic replay — this is the dependency-critical-path bound. It is
//!   combined with the aggregate link-load bound `max_l (total wire bytes
//!   over l) / capacity_l`: no run can finish before its most loaded link
//!   drains.
//! * **Upper bound** — the pessimistic replay prices each message at
//!   `min(flow_cap, min over route links of capacity_l / U_l)` where `U_l`
//!   bounds the number of flows that can *ever* cross link `l`
//!   concurrently: under blocking rendezvous each sender has at most one
//!   outbound and each receiver at most one inbound flow in flight, so
//!   `U_l = min(#distinct senders over l, #distinct receivers over l)`;
//!   with non-blocking sends only the receiver side survives
//!   (`U_l = #receivers`); under eager sends neither does (`U_l = #messages`).
//!   Max-min fairness guarantees every flow at least
//!   `min(flow_cap, capacity_l / concurrent_l)` at each instant, and
//!   `concurrent_l ≤ U_l` always, so by induction over the (fixed) matching
//!   DAG every real event time is dominated by the pessimistic replay.
//!
//! Both bounds are padded by a small rounding slack (a few nanoseconds per
//! event) so integer-nanosecond rounding drift between the replay and the
//! flow solver's piecewise byte integration can never produce a false
//! containment failure.
//!
//! The certificate also carries per-step finish times from the optimistic
//! replay (when lowered with provenance, [`LoweredMeta`]) — the per-step
//! critical-path transcript `cm5 certify` prints.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

use cm5_core::exec::{lower_annotated, LowerOptions, LoweredMeta};
use cm5_core::schedule::Schedule;
use cm5_sim::{FatTree, LinkDir, MachineParams, Op, OpProgram, SendMode, SimDuration, SimTime};

/// Why a program set cannot be certified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertifyError {
    /// The programs use a construct outside the certifiable fragment
    /// (wildcard receives, out-of-range nodes, duplicate message keys).
    Unsupported(String),
    /// The abstract execution got stuck: the programs deadlock under
    /// blocking semantics (run `cm5 lint` for the witness).
    Stuck(String),
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertifyError::Unsupported(m) => write!(f, "uncertifiable program: {m}"),
            CertifyError::Stuck(m) => write!(f, "abstract execution stuck: {m}"),
        }
    }
}

impl std::error::Error for CertifyError {}

/// The most contended link of the pessimistic pricing — the static
/// bottleneck the certificate blames the `UB/LB` gap on.
#[derive(Debug, Clone, PartialEq)]
pub struct Bottleneck {
    /// Tree level of the link (0 = leaf).
    pub level: u32,
    /// Group index at that level.
    pub group: usize,
    /// Whether the link points up (towards the root).
    pub up: bool,
    /// The concurrency bound `U_l` used to price flows over this link.
    pub concurrency: u64,
    /// Total wire bytes routed over the link.
    pub load_bytes: u64,
    /// Link capacity, bytes/second.
    pub capacity: f64,
}

/// A certified makespan interval plus the evidence behind it.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// Certified lower bound: the simulated makespan cannot be below this.
    pub lb: SimDuration,
    /// Certified upper bound: the simulated makespan cannot exceed this.
    pub ub: SimDuration,
    /// The optimistic replay's makespan (dependency critical path).
    pub critical_path: SimDuration,
    /// The aggregate link-drain bound `max_l load_l / capacity_l`.
    pub link_bound: SimDuration,
    /// Rounding slack subtracted from `lb` and added to `ub`.
    pub slack: SimDuration,
    /// Point-to-point messages the programs post.
    pub messages: u64,
    /// User bytes the programs move point-to-point.
    pub payload_bytes: u64,
    /// Worst ratio of optimistic to pessimistic per-message rate.
    pub max_stretch: f64,
    /// The statically most contended link (None for message-free programs).
    pub bottleneck: Option<Bottleneck>,
    /// Optimistic-replay finish time per schedule step (empty when the
    /// programs were certified without lowering provenance).
    pub step_finish: Vec<SimDuration>,
}

impl Certificate {
    /// Interval tightness `UB / LB` (1.0 for an empty program).
    pub fn tightness(&self) -> f64 {
        if self.lb.as_nanos() == 0 {
            if self.ub.as_nanos() == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.ub.as_nanos() as f64 / self.lb.as_nanos() as f64
        }
    }

    /// Whether a simulated makespan lands inside the certified interval.
    pub fn contains(&self, makespan: SimDuration) -> bool {
        self.lb <= makespan && makespan <= self.ub
    }

    /// JSON rendering, schema-stamped like every other artifact emitter.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&cm5_obs::schema_field("certify", 1));
        out.push_str(&format!(
            ",\"lb_ns\":{},\"ub_ns\":{},\"critical_path_ns\":{},\"link_bound_ns\":{},\"slack_ns\":{},\"tightness\":{:.6},\"messages\":{},\"payload_bytes\":{},\"max_stretch\":{:.6}",
            self.lb.as_nanos(),
            self.ub.as_nanos(),
            self.critical_path.as_nanos(),
            self.link_bound.as_nanos(),
            self.slack.as_nanos(),
            self.tightness(),
            self.messages,
            self.payload_bytes,
            self.max_stretch,
        ));
        if let Some(b) = &self.bottleneck {
            out.push_str(&format!(
                ",\"bottleneck\":{{\"level\":{},\"group\":{},\"dir\":\"{}\",\"concurrency\":{},\"load_bytes\":{},\"capacity\":{:.0}}}",
                b.level,
                b.group,
                if b.up { "up" } else { "down" },
                b.concurrency,
                b.load_bytes,
                b.capacity,
            ));
        }
        if !self.step_finish.is_empty() {
            out.push_str(",\"step_finish_ns\":[");
            for (i, t) in self.step_finish.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&t.as_nanos().to_string());
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

/// Certify a schedule: lower it with `opts` and certify the programs.
pub fn certify_schedule(
    schedule: &Schedule,
    opts: &LowerOptions,
    params: &MachineParams,
) -> Result<Certificate, CertifyError> {
    certify_meta(&lower_annotated(schedule, opts), params)
}

/// Certify lowered programs that carry step provenance.
pub fn certify_meta(
    meta: &LoweredMeta,
    params: &MachineParams,
) -> Result<Certificate, CertifyError> {
    certify(
        &meta.programs,
        Some((&meta.step_of, meta.num_steps)),
        params,
    )
}

/// Certify raw per-node programs (no per-step transcript).
pub fn certify_programs(
    programs: &[OpProgram],
    params: &MachineParams,
) -> Result<Certificate, CertifyError> {
    certify(programs, None, params)
}

/// Message key: matching of named-source receives is purely structural.
type Key = (usize, usize, u32);

/// Static per-link traffic statistics from the pre-pass.
struct LinkStats {
    senders: HashSet<usize>,
    receivers: HashSet<usize>,
    msgs: u64,
    load: u64,
}

/// Everything the pre-pass learns about the programs' network usage.
struct NetStats {
    tree: Option<FatTree>,
    links: Vec<LinkStats>,
    pairs: HashSet<(usize, usize)>,
    has_isend: bool,
    messages: u64,
    payload_bytes: u64,
    collectives: u64,
}

fn analyze(programs: &[OpProgram], params: &MachineParams) -> Result<NetStats, CertifyError> {
    let n = programs.len();
    let tree = if n >= 2 { Some(FatTree::new(n)) } else { None };
    let link_count = tree.as_ref().map_or(0, |t| t.link_count());
    let mut links: Vec<LinkStats> = (0..link_count)
        .map(|_| LinkStats {
            senders: HashSet::new(),
            receivers: HashSet::new(),
            msgs: 0,
            load: 0,
        })
        .collect();
    let mut pairs = HashSet::new();
    let mut seen_keys: HashSet<Key> = HashSet::new();
    let mut has_isend = false;
    let mut messages = 0u64;
    let mut payload_bytes = 0u64;
    let mut collectives = 0u64;
    for (node, prog) in programs.iter().enumerate() {
        for (i, op) in prog.iter().enumerate() {
            match *op {
                Op::Send { to, bytes, tag } | Op::Isend { to, bytes, tag } => {
                    if to >= n || to == node {
                        return Err(CertifyError::Unsupported(format!(
                            "node {node} op {i}: send to invalid destination {to}"
                        )));
                    }
                    if !seen_keys.insert((node, to, tag)) {
                        return Err(CertifyError::Unsupported(format!(
                            "node {node} op {i}: duplicate message key {node}->{to} tag {tag} \
                             (matching order would be timing-dependent)"
                        )));
                    }
                    if matches!(op, Op::Isend { .. }) {
                        has_isend = true;
                    }
                    messages += 1;
                    payload_bytes += bytes;
                    let wire = params.wire_bytes(bytes);
                    let tree = tree.as_ref().expect("n >= 2 when sends exist");
                    for l in tree.route(node, to) {
                        links[l].senders.insert(node);
                        links[l].receivers.insert(to);
                        links[l].msgs += 1;
                        links[l].load += wire;
                    }
                    pairs.insert((node, to));
                }
                Op::Recv { from, tag: _ } if from >= n || from == node => {
                    return Err(CertifyError::Unsupported(format!(
                        "node {node} op {i}: recv from invalid source {from}"
                    )));
                }
                Op::Recv { .. } => {}
                Op::RecvAny { .. } => {
                    return Err(CertifyError::Unsupported(format!(
                        "node {node} op {i}: wildcard receive (RecvAny) — matching is \
                         timing-dependent, outside the certifiable fragment"
                    )));
                }
                Op::Barrier | Op::SystemBcast { .. } | Op::Reduce | Op::Scan => {
                    collectives += 1;
                }
                _ => {}
            }
        }
    }
    Ok(NetStats {
        tree,
        links,
        pairs,
        has_isend,
        messages,
        payload_bytes,
        collectives,
    })
}

/// Concurrency bound `U_l` for one link under the programs' send semantics.
fn concurrency_bound(stats: &LinkStats, mode: SendMode, has_isend: bool) -> u64 {
    match mode {
        SendMode::Eager => stats.msgs,
        SendMode::Rendezvous if has_isend => stats.receivers.len() as u64,
        SendMode::Rendezvous => stats.senders.len().min(stats.receivers.len()) as u64,
    }
}

/// Per-pair closed-form rates: optimistic divides by 1, pessimistic by `U_l`.
fn rate_map(
    net: &NetStats,
    params: &MachineParams,
    pessimistic: bool,
) -> HashMap<(usize, usize), f64> {
    let mut rates = HashMap::with_capacity(net.pairs.len());
    let Some(tree) = &net.tree else {
        return rates;
    };
    let cap: Vec<f64> = (0..tree.link_count())
        .map(|idx| tree.link_capacity(tree.link_from_index(idx), params))
        .collect();
    for &(src, dst) in &net.pairs {
        let mut rate = params.flow_cap();
        for l in tree.route(src, dst) {
            let div = if pessimistic {
                concurrency_bound(&net.links[l], params.send_mode, net.has_isend).max(1) as f64
            } else {
                1.0
            };
            rate = rate.min(cap[l] / div);
        }
        rates.insert((src, dst), rate);
    }
    rates
}

/// What a node is currently parked on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocked {
    No,
    Send,
    Recv,
    Wait,
    Collective,
}

struct NodeSt {
    pc: usize,
    clock: SimTime,
    outstanding: Vec<Option<SimTime>>,
    blocked: Blocked,
    coll_count: usize,
    done: bool,
}

#[derive(Debug, Clone, PartialEq)]
enum CollKind {
    Barrier,
    Bcast { root: usize, bytes: u64 },
    Reduce,
    Scan,
}

struct CollSlot {
    kind: CollKind,
    arrivals: usize,
    max: SimTime,
    members: Vec<usize>,
}

struct SendEntry {
    node: usize,
    ready: SimTime,
    bytes: u64,
    /// `Some(handle)` for non-blocking sends, `None` for blocking ones.
    handle: Option<usize>,
}

struct RecvEntry {
    node: usize,
    posted: SimTime,
}

struct ReplayOut {
    makespan: SimDuration,
    step_finish: Vec<SimDuration>,
}

/// The abstract executor: a deterministic replay of the programs under
/// fixed per-message rates. Matching is structural (unique keys), so the
/// worklist order cannot change the outcome.
struct Exec<'a> {
    programs: &'a [OpProgram],
    step_of: Option<&'a [Vec<usize>]>,
    params: &'a MachineParams,
    rates: &'a HashMap<(usize, usize), f64>,
    /// Pessimistic replays round ambiguous eager resumes up; optimistic
    /// replays round them down (both directions stay sound).
    pessimistic: bool,
    nodes: Vec<NodeSt>,
    send_wait: HashMap<Key, VecDeque<SendEntry>>,
    recv_wait: HashMap<Key, VecDeque<RecvEntry>>,
    eager_done: HashMap<Key, VecDeque<SimTime>>,
    colls: Vec<CollSlot>,
    runnable: VecDeque<usize>,
    queued: Vec<bool>,
    step_finish: Vec<SimDuration>,
}

impl<'a> Exec<'a> {
    fn new(
        programs: &'a [OpProgram],
        provenance: Option<(&'a [Vec<usize>], usize)>,
        params: &'a MachineParams,
        rates: &'a HashMap<(usize, usize), f64>,
        pessimistic: bool,
    ) -> Exec<'a> {
        let n = programs.len();
        let (step_of, num_steps) = match provenance {
            Some((s, k)) => (Some(s), k),
            None => (None, 0),
        };
        Exec {
            programs,
            step_of,
            params,
            rates,
            pessimistic,
            nodes: (0..n)
                .map(|_| NodeSt {
                    pc: 0,
                    clock: SimTime::ZERO,
                    outstanding: Vec::new(),
                    blocked: Blocked::No,
                    coll_count: 0,
                    done: false,
                })
                .collect(),
            send_wait: HashMap::new(),
            recv_wait: HashMap::new(),
            eager_done: HashMap::new(),
            colls: Vec::new(),
            runnable: (0..n).collect(),
            queued: vec![true; n],
            step_finish: vec![SimDuration::ZERO; num_steps],
        }
    }

    fn transfer(&self, src: usize, dst: usize, bytes: u64) -> SimDuration {
        let rate = *self
            .rates
            .get(&(src, dst))
            .expect("pre-pass saw every pair");
        SimDuration::from_rate(self.params.wire_bytes(bytes) as f64, rate)
    }

    /// Record an op completion for the per-step transcript.
    fn record(&mut self, node: usize, op_idx: usize, t: SimTime) {
        if let Some(step_of) = self.step_of {
            if let Some(&s) = step_of[node].get(op_idx) {
                if s < self.step_finish.len() {
                    let d = t.since(SimTime::ZERO);
                    if d > self.step_finish[s] {
                        self.step_finish[s] = d;
                    }
                }
            }
        }
    }

    fn enqueue(&mut self, node: usize) {
        if !self.queued[node] {
            self.queued[node] = true;
            self.runnable.push_back(node);
        }
    }

    /// Wake a node parked on a blocking op: the op at `pc - 1` completes at
    /// `t`.
    fn wake(&mut self, node: usize, t: SimTime) {
        self.nodes[node].clock = t;
        self.nodes[node].blocked = Blocked::No;
        let op_idx = self.nodes[node].pc - 1;
        self.record(node, op_idx, t);
        self.enqueue(node);
    }

    /// A non-blocking send completed for the sender at `tc`: fill the
    /// outstanding slot and re-check a parked `WaitAll`.
    fn complete_async(&mut self, sender: usize, handle: usize, tc: SimTime) {
        self.nodes[sender].outstanding[handle] = Some(tc);
        if self.nodes[sender].blocked == Blocked::Wait
            && self.nodes[sender].outstanding.iter().all(|c| c.is_some())
        {
            let resume = self.wait_resume(sender);
            self.nodes[sender].outstanding.clear();
            self.wake(sender, resume);
        }
    }

    fn wait_resume(&self, node: usize) -> SimTime {
        let mut t = self.nodes[node].clock;
        for c in &self.nodes[node].outstanding {
            t = t.max(c.expect("all completions known"));
        }
        t
    }

    /// Eager receive resume rule. The engine resumes at `r_post` when the
    /// message already sits in the mailbox and at `tc + λ` when the receive
    /// claimed it first; the branch is not monotone in `r_post`, so each
    /// replay takes the sound side: optimistic `max(r_post, tc)` ≤ real ≤
    /// pessimistic `max(r_post, tc + λ)`.
    fn eager_resume(&self, r_post: SimTime, tc: SimTime) -> SimTime {
        if self.pessimistic {
            r_post.max(tc + self.params.wire_latency)
        } else {
            r_post.max(tc)
        }
    }

    /// Deliver an eager message posted at `s_post` (transfer fully priced at
    /// post time): wake a parked receiver or bank the completion.
    fn eager_deliver(&mut self, key: Key, tc: SimTime) {
        let waiting = self.recv_wait.get_mut(&key).and_then(|q| q.pop_front());
        if let Some(r) = waiting {
            let resume = self.eager_resume(r.posted, tc);
            self.wake(r.node, resume);
        } else {
            self.eager_done.entry(key).or_default().push_back(tc);
        }
    }

    fn run(mut self) -> Result<ReplayOut, CertifyError> {
        while let Some(id) = self.runnable.pop_front() {
            self.queued[id] = false;
            if self.nodes[id].done || self.nodes[id].blocked != Blocked::No {
                continue;
            }
            self.step(id)?;
        }
        if let Some(stuck) = self.nodes.iter().position(|s| !s.done) {
            return Err(CertifyError::Stuck(format!(
                "node {stuck} blocked at op {} ({:?}) with no matching partner",
                self.nodes[stuck].pc.saturating_sub(1),
                self.nodes[stuck].blocked,
            )));
        }
        let makespan = self
            .nodes
            .iter()
            .map(|s| s.clock)
            .fold(SimTime::ZERO, SimTime::max)
            .since(SimTime::ZERO);
        Ok(ReplayOut {
            makespan,
            step_finish: self.step_finish,
        })
    }

    /// Advance one node until it parks or finishes.
    fn step(&mut self, id: usize) -> Result<(), CertifyError> {
        let eager = self.params.send_mode == SendMode::Eager;
        loop {
            let Some(op) = self.programs[id].get(self.nodes[id].pc) else {
                self.nodes[id].done = true;
                return Ok(());
            };
            let op = op.clone();
            self.nodes[id].pc += 1;
            let op_idx = self.nodes[id].pc - 1;
            match op {
                Op::Compute(d) => {
                    self.nodes[id].clock += d;
                    let t = self.nodes[id].clock;
                    self.record(id, op_idx, t);
                }
                Op::Memcpy { bytes } => {
                    self.nodes[id].clock += self.params.memcpy_time(bytes);
                    let t = self.nodes[id].clock;
                    self.record(id, op_idx, t);
                }
                Op::Flops { flops } => {
                    self.nodes[id].clock += self.params.flops_time(flops);
                    let t = self.nodes[id].clock;
                    self.record(id, op_idx, t);
                }
                Op::Send { to, bytes, tag } => {
                    self.nodes[id].clock += self.params.send_overhead;
                    let s_post = self.nodes[id].clock;
                    let key = (id, to, tag);
                    if eager {
                        // Transfer starts at post; the sender resumes once
                        // its bytes are injected at the leaf link rate.
                        let tc = s_post + self.transfer(id, to, bytes);
                        self.eager_deliver(key, tc);
                        self.nodes[id].clock = s_post
                            + SimDuration::from_rate(
                                self.params.wire_bytes(bytes) as f64,
                                self.params.leaf_bandwidth,
                            );
                        let t = self.nodes[id].clock;
                        self.record(id, op_idx, t);
                    } else {
                        let waiting = self.recv_wait.get_mut(&key).and_then(|q| q.pop_front());
                        if let Some(r) = waiting {
                            let start = s_post.max(r.posted);
                            let tc = start + self.transfer(id, to, bytes);
                            self.nodes[id].clock = tc;
                            self.record(id, op_idx, tc);
                            self.wake(r.node, tc + self.params.wire_latency);
                        } else {
                            self.send_wait.entry(key).or_default().push_back(SendEntry {
                                node: id,
                                ready: s_post,
                                bytes,
                                handle: None,
                            });
                            self.nodes[id].blocked = Blocked::Send;
                            return Ok(());
                        }
                    }
                }
                Op::Isend { to, bytes, tag } => {
                    self.nodes[id].clock += self.params.send_overhead;
                    let s_post = self.nodes[id].clock;
                    self.record(id, op_idx, s_post);
                    let key = (id, to, tag);
                    let handle = self.nodes[id].outstanding.len();
                    if eager {
                        let tc = s_post + self.transfer(id, to, bytes);
                        self.nodes[id].outstanding.push(Some(tc));
                        self.eager_deliver(key, tc);
                    } else {
                        let waiting = self.recv_wait.get_mut(&key).and_then(|q| q.pop_front());
                        if let Some(r) = waiting {
                            let start = s_post.max(r.posted);
                            let tc = start + self.transfer(id, to, bytes);
                            self.nodes[id].outstanding.push(Some(tc));
                            self.wake(r.node, tc + self.params.wire_latency);
                        } else {
                            self.nodes[id].outstanding.push(None);
                            self.send_wait.entry(key).or_default().push_back(SendEntry {
                                node: id,
                                ready: s_post,
                                bytes,
                                handle: Some(handle),
                            });
                        }
                    }
                }
                Op::WaitAll => {
                    if self.nodes[id].outstanding.iter().all(|c| c.is_some()) {
                        let resume = self.wait_resume(id);
                        self.nodes[id].outstanding.clear();
                        self.nodes[id].clock = resume;
                        self.record(id, op_idx, resume);
                    } else {
                        self.nodes[id].blocked = Blocked::Wait;
                        return Ok(());
                    }
                }
                Op::Recv { from, tag } => {
                    self.nodes[id].clock += self.params.recv_overhead;
                    let r_post = self.nodes[id].clock;
                    let key = (from, id, tag);
                    if eager {
                        let done = self.eager_done.get_mut(&key).and_then(|q| q.pop_front());
                        if let Some(tc) = done {
                            self.nodes[id].clock = self.eager_resume(r_post, tc);
                            let t = self.nodes[id].clock;
                            self.record(id, op_idx, t);
                        } else {
                            self.recv_wait.entry(key).or_default().push_back(RecvEntry {
                                node: id,
                                posted: r_post,
                            });
                            self.nodes[id].blocked = Blocked::Recv;
                            return Ok(());
                        }
                    } else {
                        let pending = self.send_wait.get_mut(&key).and_then(|q| q.pop_front());
                        if let Some(e) = pending {
                            let start = e.ready.max(r_post);
                            let tc = start + self.transfer(from, id, e.bytes);
                            self.nodes[id].clock = tc + self.params.wire_latency;
                            let t = self.nodes[id].clock;
                            self.record(id, op_idx, t);
                            match e.handle {
                                None => self.wake(e.node, tc),
                                Some(h) => self.complete_async(e.node, h, tc),
                            }
                        } else {
                            self.recv_wait.entry(key).or_default().push_back(RecvEntry {
                                node: id,
                                posted: r_post,
                            });
                            self.nodes[id].blocked = Blocked::Recv;
                            return Ok(());
                        }
                    }
                }
                Op::RecvAny { .. } => {
                    return Err(CertifyError::Unsupported(
                        "wildcard receive reached the executor".into(),
                    ));
                }
                Op::Barrier => return self.collective(id, CollKind::Barrier),
                Op::SystemBcast { root, bytes } => {
                    return self.collective(id, CollKind::Bcast { root, bytes })
                }
                Op::Reduce => return self.collective(id, CollKind::Reduce),
                Op::Scan => return self.collective(id, CollKind::Scan),
            }
        }
    }

    /// Park `id` on its next collective; resolve the slot once all nodes
    /// arrive.
    fn collective(&mut self, id: usize, kind: CollKind) -> Result<(), CertifyError> {
        let k = self.nodes[id].coll_count;
        self.nodes[id].coll_count += 1;
        if k == self.colls.len() {
            self.colls.push(CollSlot {
                kind: kind.clone(),
                arrivals: 0,
                max: SimTime::ZERO,
                members: Vec::new(),
            });
        }
        if self.colls[k].kind != kind {
            return Err(CertifyError::Stuck(format!(
                "collective mismatch at ordinal {k}: node {id} posts {kind:?}, others {:?}",
                self.colls[k].kind,
            )));
        }
        let clock = self.nodes[id].clock;
        self.colls[k].arrivals += 1;
        self.colls[k].max = self.colls[k].max.max(clock);
        self.colls[k].members.push(id);
        self.nodes[id].blocked = Blocked::Collective;
        if self.colls[k].arrivals == self.programs.len() {
            let mut finish = self.colls[k].max + self.params.control_latency;
            if let CollKind::Bcast { bytes, .. } = self.colls[k].kind {
                finish = finish
                    + self.params.system_bcast_overhead
                    + SimDuration::from_rate(
                        self.params.wire_bytes(bytes) as f64,
                        self.params.system_bcast_bandwidth,
                    );
            }
            let members = std::mem::take(&mut self.colls[k].members);
            for m in members {
                self.wake(m, finish);
            }
        }
        Ok(())
    }
}

fn certify(
    programs: &[OpProgram],
    provenance: Option<(&[Vec<usize>], usize)>,
    params: &MachineParams,
) -> Result<Certificate, CertifyError> {
    let net = analyze(programs, params)?;
    let opt_rates = rate_map(&net, params, false);
    let pess_rates = rate_map(&net, params, true);
    let optimistic = Exec::new(programs, provenance, params, &opt_rates, false).run()?;
    let pessimistic = Exec::new(programs, provenance, params, &pess_rates, true).run()?;

    // Aggregate drain bound and the static bottleneck link.
    let mut link_bound = SimDuration::ZERO;
    let mut bottleneck = None;
    if let Some(tree) = &net.tree {
        for (idx, stats) in net.links.iter().enumerate() {
            if stats.load == 0 {
                continue;
            }
            let link = tree.link_from_index(idx);
            let cap = tree.link_capacity(link, params);
            let drain = SimDuration::from_rate(stats.load as f64, cap);
            if drain > link_bound {
                link_bound = drain;
                bottleneck = Some(Bottleneck {
                    level: link.level,
                    group: link.group,
                    up: link.dir == LinkDir::Up,
                    concurrency: concurrency_bound(stats, params.send_mode, net.has_isend),
                    load_bytes: stats.load,
                    capacity: cap,
                });
            }
        }
    }

    let mut max_stretch = 1.0f64;
    for (pair, opt) in &opt_rates {
        let pess = pess_rates[pair];
        if pess > 0.0 {
            max_stretch = max_stretch.max(opt / pess);
        }
    }

    // Integer-nanosecond rounding drift: the replay and the flow solver both
    // round transfer durations independently, so pad each bound by a few
    // nanoseconds per discrete event before comparing against a simulation.
    let slack = SimDuration::from_nanos(4 * (net.messages + net.collectives + 16));
    let critical_path = optimistic.makespan;
    let raw_lb = critical_path.max(link_bound);
    let lb = SimDuration::from_nanos(raw_lb.as_nanos().saturating_sub(slack.as_nanos()));
    let ub = pessimistic.makespan + slack;

    Ok(Certificate {
        lb,
        ub,
        critical_path,
        link_bound,
        slack,
        messages: net.messages,
        payload_bytes: net.payload_bytes,
        max_stretch,
        bottleneck,
        step_finish: optimistic.step_finish,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm5_core::prelude::*;
    use cm5_sim::Simulation;

    fn sim(schedule: &Schedule, params: &MachineParams) -> SimDuration {
        cm5_core::exec::run_schedule(schedule, params)
            .unwrap()
            .makespan
    }

    #[test]
    fn single_message_interval_is_tight() {
        let mut s = Schedule::new(2);
        s.push_step(Step {
            ops: vec![CommOp::Send {
                from: 0,
                to: 1,
                bytes: 0,
            }],
        });
        let params = MachineParams::cm5_1992();
        let cert = certify_schedule(&s, &LowerOptions::default(), &params).unwrap();
        let m = sim(&s, &params);
        assert!(cert.contains(m), "{m} not in [{}, {}]", cert.lb, cert.ub);
        // One uncontended message: both replays agree up to the slack.
        assert!(cert.tightness() < 1.01, "{}", cert.tightness());
    }

    #[test]
    fn regular_algorithms_are_contained_and_tight() {
        let params = MachineParams::cm5_1992();
        for alg in ExchangeAlg::ALL {
            for bytes in [0u64, 256, 1920] {
                let schedule = alg.schedule(32, bytes);
                let cert = certify_schedule(&schedule, &LowerOptions::default(), &params).unwrap();
                let m = sim(&schedule, &params);
                assert!(
                    cert.contains(m),
                    "{} @ {bytes}B: {m} outside [{}, {}]",
                    alg.name(),
                    cert.lb,
                    cert.ub
                );
                if bytes >= 1024 {
                    assert!(
                        cert.tightness() <= 2.0,
                        "{} @ {bytes}B: tightness {:.3}",
                        alg.name(),
                        cert.tightness()
                    );
                }
            }
        }
    }

    #[test]
    fn async_lowering_is_contained() {
        let params = MachineParams::cm5_1992();
        let schedule = lex(16, 256);
        let opts = LowerOptions {
            async_sends: true,
            ..Default::default()
        };
        let cert = certify_schedule(&schedule, &opts, &params).unwrap();
        let progs = cm5_core::exec::lower_with(&schedule, &opts);
        let m = Simulation::new(16, params.clone())
            .run_ops(&progs)
            .unwrap()
            .makespan;
        assert!(cert.contains(m), "{m} outside [{}, {}]", cert.lb, cert.ub);
    }

    #[test]
    fn barrier_lowering_is_contained() {
        let params = MachineParams::cm5_1992();
        let schedule = pex(16, 512);
        let opts = LowerOptions {
            barrier_between_steps: true,
            ..Default::default()
        };
        let cert = certify_schedule(&schedule, &opts, &params).unwrap();
        let progs = cm5_core::exec::lower_with(&schedule, &opts);
        let m = Simulation::new(16, params.clone())
            .run_ops(&progs)
            .unwrap()
            .makespan;
        assert!(cert.contains(m), "{m} outside [{}, {}]", cert.lb, cert.ub);
    }

    #[test]
    fn eager_mode_is_contained() {
        let params = MachineParams::cm5_1992_buffered();
        for alg in [ExchangeAlg::Lex, ExchangeAlg::Pex] {
            let schedule = alg.schedule(16, 256);
            let cert = certify_schedule(&schedule, &LowerOptions::default(), &params).unwrap();
            let m = sim(&schedule, &params);
            assert!(
                cert.contains(m),
                "{}: {m} outside [{}, {}]",
                alg.name(),
                cert.lb,
                cert.ub
            );
        }
    }

    #[test]
    fn broadcast_programs_certify() {
        let params = MachineParams::cm5_1992();
        for alg in BroadcastAlg::ALL {
            let progs = cm5_core::exec::broadcast_programs(alg, 16, 0, 4096);
            let cert = certify_programs(&progs, &params).unwrap();
            let m = Simulation::new(16, params.clone())
                .run_ops(&progs)
                .unwrap()
                .makespan;
            assert!(
                cert.contains(m),
                "{}: {m} outside [{}, {}]",
                alg.name(),
                cert.lb,
                cert.ub
            );
        }
    }

    /// The System broadcast is a closed-form collective: LB and UB collapse
    /// to the same value (up to slack).
    #[test]
    fn system_broadcast_is_exact() {
        let params = MachineParams::cm5_1992();
        let progs = cm5_core::exec::broadcast_programs(BroadcastAlg::System, 32, 0, 8192);
        let cert = certify_programs(&progs, &params).unwrap();
        assert!(cert.tightness() < 1.01, "{}", cert.tightness());
    }

    #[test]
    fn irregular_schedules_certify() {
        let params = MachineParams::cm5_1992();
        let pattern = Pattern::paper_pattern_p(3);
        for alg in IrregularAlg::ALL {
            let schedule = alg.schedule(&pattern);
            let cert = certify_schedule(&schedule, &LowerOptions::default(), &params).unwrap();
            let m = sim(&schedule, &params);
            assert!(
                cert.contains(m),
                "{}: {m} outside [{}, {}]",
                alg.name(),
                cert.lb,
                cert.ub
            );
        }
    }

    #[test]
    fn step_transcript_is_monotone_and_full() {
        let params = MachineParams::cm5_1992();
        let schedule = pex(16, 1024);
        let cert = certify_schedule(&schedule, &LowerOptions::default(), &params).unwrap();
        assert_eq!(cert.step_finish.len(), schedule.num_steps());
        assert!(cert.step_finish.iter().all(|d| d.as_nanos() > 0));
        // The last step's finish is the critical path.
        let max = cert.step_finish.iter().copied().max().unwrap();
        assert_eq!(max, cert.critical_path);
    }

    #[test]
    fn wildcard_receives_are_rejected() {
        let params = MachineParams::cm5_1992();
        let progs = vec![
            vec![Op::Send {
                to: 1,
                bytes: 8,
                tag: 0,
            }],
            vec![Op::RecvAny { tag: 0 }],
        ];
        assert!(matches!(
            certify_programs(&progs, &params),
            Err(CertifyError::Unsupported(_))
        ));
    }

    #[test]
    fn deadlock_is_reported_as_stuck() {
        let params = MachineParams::cm5_1992();
        // Two nodes both receive first: classic rendezvous deadlock.
        let progs = vec![
            vec![
                Op::Recv { from: 1, tag: 0 },
                Op::Send {
                    to: 1,
                    bytes: 8,
                    tag: 0,
                },
            ],
            vec![
                Op::Recv { from: 0, tag: 0 },
                Op::Send {
                    to: 0,
                    bytes: 8,
                    tag: 0,
                },
            ],
        ];
        assert!(matches!(
            certify_programs(&progs, &params),
            Err(CertifyError::Stuck(_))
        ));
    }

    #[test]
    fn json_rendering_is_schema_stamped() {
        let params = MachineParams::cm5_1992();
        let cert = certify_schedule(&pex(8, 256), &LowerOptions::default(), &params).unwrap();
        let json = cert.render_json();
        assert!(json.starts_with("{\"schema\":\"cm5-certify/1\""), "{json}");
        assert!(json.contains("\"lb_ns\":"));
        assert!(json.contains("\"step_finish_ns\":["));
    }
}
