//! Fault injection for the differential validation harness.
//!
//! The mutation-style tests (and `cm5 lint --inject`) take a *valid*
//! lowered schedule and break it the ways hand-written CMMD code breaks:
//! reorder a node's blocking ops, drop one, point a receive at the wrong
//! source, or corrupt a tag. The differential suite then asserts that the
//! verifier's verdict matches the blocking-mode simulator's on every
//! mutant — the verifier may neither miss an injected deadlock nor cry
//! wolf on a mutant that still completes.

use cm5_sim::{Op, OpProgram};

/// One injected fault, expressed over lowered per-node programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Swap the comm op at `idx` with the next comm op of the same node
    /// (e.g. turning Figure 2's recv-then-send into send-then-send with the
    /// partner — the classic rendezvous deadlock).
    SwapWithNext {
        /// Node whose program is mutated.
        node: usize,
        /// Index into [`comm_sites`] for that node's program.
        site: usize,
    },
    /// Remove one comm op (a dropped send or receive — the partner blocks
    /// forever).
    Drop {
        /// Node whose program is mutated.
        node: usize,
        /// Index into [`comm_sites`] for that node's program.
        site: usize,
    },
    /// Re-point a `Recv`'s source at `(from + 1) mod n` (a mispaired
    /// receive).
    RetargetRecv {
        /// Node whose program is mutated.
        node: usize,
        /// Index into [`comm_sites`] for that node's program.
        site: usize,
    },
    /// Bump an op's tag by a large constant (a tag mismatch).
    Retag {
        /// Node whose program is mutated.
        node: usize,
        /// Index into [`comm_sites`] for that node's program.
        site: usize,
    },
}

/// Indices of the point-to-point comm ops (`Send`/`Isend`/`Recv`/`RecvAny`)
/// of one program — the mutation sites.
pub fn comm_sites(program: &OpProgram) -> Vec<usize> {
    program
        .iter()
        .enumerate()
        .filter(|(_, op)| {
            matches!(
                op,
                Op::Send { .. } | Op::Isend { .. } | Op::Recv { .. } | Op::RecvAny { .. }
            )
        })
        .map(|(i, _)| i)
        .collect()
}

/// Apply `m` to `programs`. Returns `false` (leaving the programs intact)
/// when the mutation does not apply — no such site, or a retarget that
/// would alias the node itself.
pub fn apply(programs: &mut [OpProgram], m: Mutation) -> bool {
    let n = programs.len();
    let (node, site) = match m {
        Mutation::SwapWithNext { node, site }
        | Mutation::Drop { node, site }
        | Mutation::RetargetRecv { node, site }
        | Mutation::Retag { node, site } => (node, site),
    };
    if node >= n {
        return false;
    }
    let sites = comm_sites(&programs[node]);
    if sites.is_empty() {
        return false;
    }
    let site = sites[site % sites.len()];
    match m {
        Mutation::SwapWithNext { .. } => {
            let Some(&next) = comm_sites(&programs[node]).iter().find(|&&i| i > site) else {
                return false;
            };
            programs[node].swap(site, next);
            true
        }
        Mutation::Drop { .. } => {
            programs[node].remove(site);
            true
        }
        Mutation::RetargetRecv { .. } => match programs[node][site] {
            Op::Recv { from, tag } => {
                let mut new_from = (from + 1) % n;
                if new_from == node {
                    new_from = (new_from + 1) % n;
                }
                if new_from == from {
                    return false; // n == 2: no other source exists
                }
                programs[node][site] = Op::Recv {
                    from: new_from,
                    tag,
                };
                true
            }
            _ => false,
        },
        Mutation::Retag { .. } => {
            let op = &mut programs[node][site];
            match op {
                Op::Send { tag, .. }
                | Op::Isend { tag, .. }
                | Op::Recv { tag, .. }
                | Op::RecvAny { tag } => {
                    *tag += 1_000_000;
                    true
                }
                _ => false,
            }
        }
    }
}

/// Named demonstration faults for `cm5 lint --inject` (documented in
/// EXPERIMENTS.md). Returns a description of what was broken, or `None` if
/// the programs offer no applicable site.
pub fn inject_demo(programs: &mut [OpProgram], kind: &str) -> Option<String> {
    match kind {
        // Break Figure 2's ordering: find the first node whose next two
        // comm ops are recv-then-send and swap them, so both partners send
        // first — a rendezvous cycle.
        "swap-order" => {
            for (node, prog) in programs.iter_mut().enumerate() {
                let sites = comm_sites(prog);
                for (k, &i) in sites.iter().enumerate() {
                    let Some(&j) = sites.get(k + 1) else { continue };
                    if matches!(prog[i], Op::Recv { .. })
                        && matches!(prog[j], Op::Send { .. } | Op::Isend { .. })
                    {
                        prog.swap(i, j);
                        return Some(format!(
                            "swapped node {node}'s ops {i} and {j} (recv-then-send became send-then-recv)"
                        ));
                    }
                }
            }
            None
        }
        // Drop the first receive in the lowest-numbered program that has
        // one: its partner's blocking send never matches.
        "drop-recv" => {
            for (node, prog) in programs.iter_mut().enumerate() {
                if let Some(i) = prog.iter().position(|op| matches!(op, Op::Recv { .. })) {
                    let op = prog.remove(i);
                    return Some(format!("dropped node {node}'s op {i} ({op:?})"));
                }
            }
            None
        }
        // Corrupt the first comm op's tag: a mispaired message.
        "retag" => {
            for (node, prog) in programs.iter_mut().enumerate() {
                for (i, op) in prog.iter_mut().enumerate() {
                    if let Op::Send { tag, .. }
                    | Op::Isend { tag, .. }
                    | Op::Recv { tag, .. }
                    | Op::RecvAny { tag } = op
                    {
                        *tag += 1_000_000;
                        return Some(format!("corrupted the tag of node {node}'s op {i}"));
                    }
                }
            }
            None
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_programs;
    use cm5_core::prelude::*;

    #[test]
    fn swap_with_next_injects_a_deadlock_in_pex() {
        let mut progs = lower(&pex(8, 64));
        assert!(apply(
            &mut progs,
            Mutation::SwapWithNext { node: 0, site: 0 }
        ));
        let d = verify_programs(&progs);
        assert!(d.has_deadlock(), "{}", d.render_human());
    }

    #[test]
    fn drop_injects_a_stuck_partner() {
        let mut progs = lower(&pex(8, 64));
        assert!(apply(&mut progs, Mutation::Drop { node: 3, site: 1 }));
        let d = verify_programs(&progs);
        assert!(d.has_deadlock(), "{}", d.render_human());
    }

    #[test]
    fn inapplicable_mutations_refuse() {
        let mut progs: Vec<OpProgram> = vec![vec![], vec![]];
        assert!(!apply(&mut progs, Mutation::Drop { node: 0, site: 0 }));
        assert!(!apply(&mut progs, Mutation::Drop { node: 9, site: 0 }));
        // Retarget with n == 2 has no other source to point at.
        let mut two = lower(&pex(2, 64));
        let site = comm_sites(&two[0])
            .iter()
            .position(|&i| matches!(two[0][i], Op::Recv { .. }))
            .unwrap();
        assert!(!apply(&mut two, Mutation::RetargetRecv { node: 0, site }));
    }

    #[test]
    fn demo_injections_apply_and_are_caught() {
        for kind in ["swap-order", "drop-recv", "retag"] {
            let mut progs = lower(&pex(8, 64));
            let what = inject_demo(&mut progs, kind).expect(kind);
            assert!(!what.is_empty());
            let d = verify_programs(&progs);
            assert!(d.has_deadlock(), "{kind}: {}", d.render_human());
        }
        assert!(inject_demo(&mut lower(&pex(4, 8)), "bogus").is_none());
    }
}
