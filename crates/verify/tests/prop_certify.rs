//! Property-based tests of the static certifier: for random communication
//! patterns the certified interval must bracket the simulated makespan,
//! and the static buffer-occupancy bound must dominate the engine's
//! measured per-node peak. These are the soundness properties the paper
//! grids spot-check, pushed across the whole input space.

use cm5_core::exec::lower_annotated;
use cm5_core::prelude::*;
use cm5_sim::{MachineParams, Simulation};
use cm5_verify::{certify_meta, occupancy_bounds};
use cm5_workloads::synthetic::synthetic_pattern_exact;
use proptest::prelude::*;

/// Certify `schedule` under `params`, simulate it, and assert containment
/// plus the occupancy differential (static bound >= engine buffer peak).
fn check_certified(
    label: &str,
    schedule: &Schedule,
    params: &MachineParams,
) -> Result<(), TestCaseError> {
    let opts = LowerOptions::default();
    let meta = lower_annotated(schedule, &opts);
    let cert = cm5_verify::certify_meta(&meta, params)
        .map_err(|e| TestCaseError::fail(format!("{label}: certify failed: {e}")))?;
    let report = Simulation::new(meta.programs.len(), params.clone())
        .run_ops(&meta.programs)
        .map_err(|e| TestCaseError::fail(format!("{label}: simulation failed: {e}")))?;
    prop_assert!(
        cert.contains(report.makespan),
        "{label}: simulated {} outside [{}, {}]",
        report.makespan,
        cert.lb,
        cert.ub
    );
    let bounds = occupancy_bounds(&meta.programs, params);
    let static_bound = bounds.sim_bound();
    for (node, &peak) in report.buffer_peak.iter().enumerate() {
        prop_assert!(
            peak <= static_bound[node],
            "{label}: node {node} buffered {peak} B, static bound {} B",
            static_bound[node]
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random irregular patterns, all four scheduling algorithms, both
    /// machine modes: LB <= simulated makespan <= UB, and the engine's
    /// per-node buffer peak never exceeds the static occupancy bound.
    #[test]
    fn irregular_certificates_bracket_the_simulator(
        density in 0.05f64..0.6,
        msg_bytes in 1u64..4096,
        seed in 0u64..1_000_000,
    ) {
        let pattern = synthetic_pattern_exact(16, density, msg_bytes, seed);
        for alg in IrregularAlg::ALL {
            let schedule = alg.schedule(&pattern);
            check_certified(alg.name(), &schedule, &MachineParams::cm5_1992())?;
            check_certified(alg.name(), &schedule, &MachineParams::cm5_1992_buffered())?;
        }
    }

    /// Random sizes for the four regular exchange algorithms: same
    /// containment and occupancy dominance, on rendezvous and eager modes.
    #[test]
    fn regular_certificates_bracket_the_simulator(
        n_pow in 2u32..6,
        bytes in 0u64..4096,
    ) {
        let n = 1usize << n_pow;
        for alg in ExchangeAlg::ALL {
            let schedule = alg.schedule(n, bytes);
            check_certified(alg.name(), &schedule, &MachineParams::cm5_1992())?;
            check_certified(alg.name(), &schedule, &MachineParams::cm5_1992_buffered())?;
        }
    }

    /// Async (isend/waitall) lowering of random irregular patterns: the
    /// pending-rendezvous occupancy bound must dominate, and the interval
    /// must still bracket the simulated makespan.
    #[test]
    fn async_lowering_certificates_hold(
        density in 0.05f64..0.5,
        seed in 0u64..1_000_000,
    ) {
        let pattern = synthetic_pattern_exact(8, density, 512, seed);
        let schedule = IrregularAlg::Gs.schedule(&pattern);
        let opts = LowerOptions {
            async_sends: true,
            ..Default::default()
        };
        let params = MachineParams::cm5_1992();
        let meta = lower_annotated(&schedule, &opts);
        let cert = certify_meta(&meta, &params)
            .map_err(|e| TestCaseError::fail(format!("certify failed: {e}")))?;
        let report = Simulation::new(meta.programs.len(), params.clone())
            .run_ops(&meta.programs)
            .map_err(|e| TestCaseError::fail(format!("simulation failed: {e}")))?;
        prop_assert!(
            cert.contains(report.makespan),
            "async: simulated {} outside [{}, {}]",
            report.makespan,
            cert.lb,
            cert.ub
        );
        let bounds = occupancy_bounds(&meta.programs, &params);
        let static_bound = bounds.sim_bound();
        for (node, &peak) in report.buffer_peak.iter().enumerate() {
            prop_assert!(
                peak <= static_bound[node],
                "async: node {node} buffered {peak} B, static bound {} B",
                static_bound[node]
            );
        }
    }
}
