//! Golden test: the canonical span-tree export (`cm5-serve-spans/1`) for
//! one advise+verify+simulate query is pinned byte for byte.
//!
//! The canonical export strips every wall-clock field (durations live only
//! in the Chrome-trace view, which is quarantined like
//! `cm5-serve-timing/1`), so the document is a pure function of the
//! request — any diff means the span *shape* changed: a phase added,
//! dropped, renamed, or its advise-hit/advise-miss derivation altered.
//! All must be deliberate. To re-bless after a deliberate change:
//!
//! ```sh
//! CM5_BLESS=1 cargo test -p cm5-serve --test golden_spans
//! ```

use cm5_obs::spans_json;
use cm5_serve::{Service, ServiceConfig};

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/query_spans.json");

/// Two queries sharing one advise key: the first records `advise-miss`,
/// the second `advise-hit`, and both run verify + simulate.
fn spanned_queries() -> String {
    let service = Service::new(ServiceConfig::default());
    let line =
        r#"{"id":1,"query":{"kind":"exchange","n":8,"bytes":256},"verify":true,"simulate":true}"#;
    let repeat =
        r#"{"id":2,"query":{"kind":"exchange","n":8,"bytes":256},"verify":true,"simulate":true}"#;
    let (resp, span0) = service.handle_line_spanned(0, line);
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let (resp, span1) = service.handle_line_spanned(1, repeat);
    assert!(resp.contains("\"ok\":true"), "{resp}");
    spans_json(&[span0, span1])
}

#[test]
fn advise_verify_simulate_span_tree_is_pinned() {
    let actual = spanned_queries();
    if std::env::var_os("CM5_BLESS").is_some() {
        std::fs::write(GOLDEN, &actual).expect("write golden");
    }
    let expected =
        std::fs::read_to_string(GOLDEN).expect("golden file exists (bless with CM5_BLESS=1)");
    assert_eq!(
        actual, expected,
        "span-tree export drifted from the golden file; \
         if the change is deliberate, re-bless with CM5_BLESS=1"
    );
}

#[test]
fn span_tree_is_stable_across_runs() {
    assert_eq!(spanned_queries(), spanned_queries());
}

#[test]
fn golden_covers_every_phase_kind_and_both_cache_outcomes() {
    let json = spanned_queries();
    for phase in [
        "parse",
        "advise-miss",
        "advise-hit",
        "verify",
        "simulate",
        "render",
    ] {
        assert!(
            json.contains(&format!("\"phase\": \"{phase}\"")),
            "golden query must exercise the {phase} phase:\n{json}"
        );
    }
    // The canonical export must stay wall-clock-free.
    assert!(!json.contains("_ns"), "no timing fields allowed:\n{json}");
}
