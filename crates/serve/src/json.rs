//! A minimal JSON value: recursive-descent parser and deterministic
//! renderer, no external deps.
//!
//! The service's wire protocol is JSON-lines, and the repo policy is
//! hand-rolled JSON everywhere (every artifact is schema-stamped via
//! `cm5_obs::schema_field`), so this module is the one place the serve
//! crate reads *and* writes the format. Two properties matter:
//!
//! * **No panics on hostile input** — the parser returns `Err` for
//!   anything malformed and bounds recursion depth, so a fuzzer (or a
//!   misbehaving client) cannot crash the service (the codec proptests
//!   pin this).
//! * **Deterministic rendering** — objects preserve insertion order
//!   (`Vec<(String, Json)>`, not a hash map), numbers render via Rust's
//!   shortest-round-trip formatting, so equal values always produce
//!   byte-identical text. Byte-identical response streams across worker
//!   counts build on this.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always an f64, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved and rendered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one JSON document. The whole input must be consumed (trailing
    /// whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Render compactly (no whitespace), deterministically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(*x, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Field lookup on an object (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a u64, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload as a usize, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|x| x as usize)
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for a number value.
    pub fn num(x: f64) -> Json {
        Json::Num(x)
    }

    /// Shorthand for an integer value.
    pub fn int(x: u64) -> Json {
        Json::Num(x as f64)
    }
}

/// Numbers render integer-exact when they are integers, else with Rust's
/// shortest round-trip float formatting; NaN/inf (unrepresentable in JSON)
/// render as null.
fn write_num(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad keyword at byte {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape bytes")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogates and other unpaired code points
                            // degrade to the replacement character rather
                            // than erroring: good enough for a protocol
                            // that never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar (input is &str, so
                    // slicing at char boundaries is safe via char_indices).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control character at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| {
            b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-'
        }) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        let x: f64 = text
            .parse()
            .map_err(|_| format!("bad number '{text}' at byte {start}"))?;
        if !x.is_finite() {
            return Err(format!("non-finite number '{text}'"));
        }
        Ok(Json::Num(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for text in [
            r#"{"id":1,"query":{"kind":"exchange","n":32,"bytes":1024}}"#,
            r#"[1,2.5,-3,"x",true,false,null]"#,
            r#"{"s":"a\"b\\c\nd"}"#,
            r#"{}"#,
            r#"[]"#,
        ] {
            let v = Json::parse(text).unwrap();
            let rendered = v.render();
            assert_eq!(Json::parse(&rendered).unwrap(), v, "{text}");
            // Render is a fixed point: parse(render(v)) renders identically.
            assert_eq!(Json::parse(&rendered).unwrap().render(), rendered);
        }
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for text in [
            "",
            "{",
            "}",
            "[",
            "nul",
            "truee x",
            r#"{"a"}"#,
            r#"{"a":}"#,
            "{\"a\":1,}",
            "[1,]",
            "\"\\q\"",
            "\"unterminated",
            "1e999",
            "--1",
            "{\"a\":1}x",
            "\u{1}",
            "\"\u{1}\"",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
        // Depth bomb: deep nesting is rejected, not a stack overflow.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn numbers_render_canonically() {
        assert_eq!(Json::int(0).render(), "0");
        assert_eq!(Json::num(1.5).render(), "1.5");
        assert_eq!(Json::num(-2.0).render(), "-2");
        assert_eq!(Json::num(f64::NAN).render(), "null");
        assert_eq!(Json::parse("1e3").unwrap().render(), "1000");
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("missing"), None);
    }
}
