//! The scheduling service: classify → advise → (verify) → (simulate).
//!
//! One [`Service`] lives for the whole process and is shared by every
//! worker thread. Determinism contract: everything that reaches a
//! *response line* or the *deterministic metrics document* is a pure
//! function of the request stream (as a set) and the machine parameters —
//! independent of worker count and interleaving. That is achieved by:
//!
//! * the advisor's key-hash-sharded `DecisionKey` cache (no global lock on
//!   the hot path; racing threads recompute the same pure value);
//! * a sharded verification memo that amortizes `cm5-verify` runs across
//!   the queue the same way (the first request with a given schedule pays,
//!   duplicates hit the memo);
//! * counters that are order-independent sums ([`AtomicU64`]), and cache
//!   *hit* counts derived as `queries − distinct entries` instead of being
//!   counted per-request (a per-request hit/miss flag would depend on
//!   which racing thread inserted first);
//! * histograms that only record *simulated or modeled* values.
//!
//! Host timing (per-stage latency, queue depth, wall-clock QPS) is real
//! but nondeterministic, so it lives in a separate timing document
//! (`cm5-serve-timing/1`) that is excluded from determinism comparisons —
//! the same split the simulator makes for [`cm5_sim::SimPerf`].

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use cm5_core::prelude::*;
use cm5_model::{Advisor, Algorithm, PatternStats, Recommendation, Workload};
use cm5_obs::{schema_field, FlightRecorder, Histogram, Metrics, PhaseKind, QueryCtx, QuerySpan};
use cm5_sim::tenant::{run_tenants_jobs, Placement, TenantSpec};
use cm5_sim::{FatTree, MachineParams, OpProgram, SimReport, Simulation};
use cm5_verify::{exchange_policy, irregular_policy, verify_programs, verify_schedule, Severity};

use crate::json::Json;
use crate::request::{Query, Request, TenantQuery};
use crate::response::{error_line, recommendation_json, response_base, stats_json, tenants_json};

/// Per-request simulation ceiling. Advising scales to [`crate::request::MAX_NODES`];
/// *simulating* is O(n²) messages for an exchange, so a service bounds it.
pub const SIM_MAX_NODES: usize = 1024;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Machine the advisor and simulator model.
    pub params: MachineParams,
    /// Advisor-cache and verify-memo shard count (≥ 1).
    pub shards: usize,
    /// Worker threads inside each simulation
    /// ([`cm5_sim::Simulation::sim_jobs`]; 1 = serial engine). Results are
    /// bit-identical across values, so this is purely a latency knob for
    /// large simulate-mode queries.
    pub sim_jobs: usize,
    /// Record simulate-mode queries' event traces into a bounded ring of
    /// this capacity ([`cm5_sim::Simulation::trace_capacity`]). Evictions
    /// accumulate into the deterministic `sim_trace_dropped` counter;
    /// tracing never changes simulated results. `None` (default) disables
    /// tracing.
    pub trace_ring: Option<usize>,
    /// Flight-recorder ring capacity: how many recent fully-spanned
    /// queries are retained.
    pub flight_capacity: usize,
    /// Latency SLO in milliseconds: queries at or above it (or erroring)
    /// get dumped by the flight recorder. `0` dumps every query (the
    /// deterministic-forcing mode tests use); `None` dumps errors only.
    pub flight_slo_ms: Option<u64>,
    /// Directory for flight-recorder dumps (`cm5-flight/1`). `None`
    /// records the ring without writing dumps.
    pub flight_dir: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            params: MachineParams::cm5_1992(),
            shards: 8,
            sim_jobs: 1,
            trace_ring: None,
            flight_capacity: 64,
            flight_slo_ms: None,
            flight_dir: None,
        }
    }
}

/// Memoized outcome of one static verification.
#[derive(Debug, Clone, PartialEq, Eq)]
struct VerifySummary {
    clean: bool,
    errors: usize,
    warnings: usize,
}

#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    q_exchange: AtomicU64,
    q_broadcast: AtomicU64,
    q_irregular: AtomicU64,
    q_pattern: AtomicU64,
    q_workload: AtomicU64,
    q_tenants: AtomicU64,
    verify_requests: AtomicU64,
    simulations: AtomicU64,
}

/// Host-side stage timings: real, nondeterministic, never part of the
/// deterministic metrics document.
#[derive(Debug, Default)]
pub struct Timing {
    advise_ns: Mutex<Histogram>,
    verify_ns: Mutex<Histogram>,
    simulate_ns: Mutex<Histogram>,
    total_ns: Mutex<Histogram>,
    /// Queue depth sampled by the replay pool at each dequeue.
    pub(crate) queue_depth: Mutex<Histogram>,
}

impl Timing {
    fn hist_json(h: &Mutex<Histogram>) -> Json {
        let h = h.lock().expect("timing poisoned");
        Json::Obj(vec![
            ("count".into(), Json::int(h.count)),
            ("mean_ns".into(), Json::num(h.mean())),
            ("max_ns".into(), Json::int(h.max)),
        ])
    }
}

/// The long-running scheduling service.
#[derive(Debug)]
pub struct Service {
    params: MachineParams,
    sim_jobs: usize,
    trace_ring: Option<usize>,
    advisor: Advisor,
    verify_memo: Vec<Mutex<HashMap<u64, VerifySummary>>>,
    counters: Counters,
    predicted_ns: Mutex<Histogram>,
    sim_makespan_ns: Mutex<Histogram>,
    sim_trace_dropped: AtomicU64,
    spans_observed: AtomicU64,
    timing: Timing,
    flight: Mutex<FlightRecorder>,
    /// Service start instant: span `ts` offsets and uptime are relative
    /// to it.
    epoch: Instant,
    /// Arrival-order sequence numbers for spans opened via
    /// [`Service::handle_line`] (the replay pool supplies its own input
    /// order instead).
    arrival: AtomicU64,
}

impl Service {
    /// Build a service with `config.shards` cache/memo shards.
    pub fn new(config: ServiceConfig) -> Service {
        let shards = config.shards.max(1);
        let mut flight = FlightRecorder::new(config.flight_capacity);
        if let Some(ms) = config.flight_slo_ms {
            flight = flight.slo_ms(ms);
        }
        if let Some(dir) = config.flight_dir {
            flight = flight.dump_dir(dir);
        }
        Service {
            params: config.params,
            sim_jobs: config.sim_jobs.max(1),
            trace_ring: config.trace_ring,
            advisor: Advisor::with_shards(shards),
            verify_memo: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            counters: Counters::default(),
            predicted_ns: Mutex::new(Histogram::default()),
            sim_makespan_ns: Mutex::new(Histogram::default()),
            sim_trace_dropped: AtomicU64::new(0),
            spans_observed: AtomicU64::new(0),
            timing: Timing::default(),
            flight: Mutex::new(flight),
            epoch: Instant::now(),
            arrival: AtomicU64::new(0),
        }
    }

    /// The machine this service advises for.
    pub fn params(&self) -> &MachineParams {
        &self.params
    }

    /// Shard count of the advisor cache and verify memo.
    pub fn shard_count(&self) -> usize {
        self.advisor.shard_count()
    }

    /// Handle one request line: parse, answer, render. Never panics on
    /// malformed input; errors become `ok:false` response lines.
    ///
    /// The query is fully spanned and observed immediately (arrival
    /// order); batch callers that need worker-count-independent span
    /// ordering use [`Service::handle_line_spanned`] +
    /// [`Service::observe`] instead.
    pub fn handle_line(&self, line: &str) -> String {
        let seq = self.arrival.fetch_add(1, Ordering::Relaxed);
        let (out, span) = self.handle_line_spanned(seq, line);
        self.observe(&span);
        out
    }

    /// [`Service::handle_line`] with an explicit span sequence number,
    /// returning the response line and the query's span tree without
    /// observing it. The replay pool calls this from workers and observes
    /// the spans in input order after the merge, so flight-recorder
    /// contents and dumps are byte-identical at any worker count.
    pub fn handle_line_spanned(&self, seq: u64, line: &str) -> (String, QuerySpan) {
        let mut ctx = QueryCtx::new(seq, line, self.epoch);
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let t = ctx.start();
        let parsed = Request::parse_line(line);
        ctx.phase(PhaseKind::Parse, "", t);
        match parsed {
            Err(e) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                // Best-effort id recovery so the client can correlate.
                let id = Json::parse(line)
                    .ok()
                    .and_then(|d| d.get("id").and_then(Json::as_u64))
                    .unwrap_or(0);
                (error_line(id, &e), ctx.finish(id, "invalid", Err(e)))
            }
            Ok(req) => match self.answer(&req, &mut ctx) {
                Ok(fields) => {
                    self.counters.ok.fetch_add(1, Ordering::Relaxed);
                    let t = ctx.start();
                    let out = Json::Obj(fields).render();
                    ctx.phase(PhaseKind::Render, "", t);
                    (out, ctx.finish(req.id, req.query.kind(), Ok(())))
                }
                Err(e) => {
                    self.counters.errors.fetch_add(1, Ordering::Relaxed);
                    (
                        error_line(req.id, &e),
                        ctx.finish(req.id, req.query.kind(), Err(e)),
                    )
                }
            },
        }
    }

    /// Fold one finished span into the host-timing histograms and the
    /// flight recorder. Dump IO failures are swallowed (telemetry must
    /// never fail a query that already succeeded).
    pub fn observe(&self, span: &QuerySpan) {
        self.spans_observed.fetch_add(1, Ordering::Relaxed);
        for p in &span.phases {
            let field = match p.kind {
                PhaseKind::Advise => Some(&self.timing.advise_ns),
                PhaseKind::Verify => Some(&self.timing.verify_ns),
                PhaseKind::Simulate => Some(&self.timing.simulate_ns),
                PhaseKind::Parse | PhaseKind::Render => None,
            };
            if let Some(f) = field {
                f.lock().expect("timing poisoned").record(p.dur_ns);
            }
        }
        self.timing
            .total_ns
            .lock()
            .expect("timing poisoned")
            .record(span.total_ns);
        let _ = self.flight.lock().expect("flight poisoned").observe(span);
    }

    /// Answer a parsed request: the response object's fields, or an error
    /// string.
    fn answer(&self, req: &Request, ctx: &mut QueryCtx) -> Result<Vec<(String, Json)>, String> {
        let mut fields = response_base(req.id, true);
        match &req.query {
            Query::Exchange { n, bytes } => {
                self.counters.q_exchange.fetch_add(1, Ordering::Relaxed);
                let w = Workload::Exchange {
                    n: *n,
                    bytes: *bytes,
                };
                let rec = self.advise(ctx, &w, *n);
                if req.verify {
                    fields.push((
                        "verify".into(),
                        self.verify_regular(ctx, req, &rec, *n, *bytes)?,
                    ));
                }
                if req.simulate {
                    let report = self.simulate_schedule(
                        ctx,
                        &self.pick_exchange(&rec)?.schedule(*n, *bytes),
                        *n,
                    )?;
                    fields.push(("simulated".into(), sim_json(&report)));
                }
                fields.push(("recommendation".into(), recommendation_json(&rec)));
            }
            Query::Broadcast { n, bytes } => {
                self.counters.q_broadcast.fetch_add(1, Ordering::Relaxed);
                let w = Workload::Broadcast {
                    n: *n,
                    bytes: *bytes,
                };
                let rec = self.advise(ctx, &w, *n);
                let alg = match rec.algorithm {
                    Algorithm::Broadcast(b) => b,
                    other => return Err(format!("advisor returned non-broadcast pick {other}")),
                };
                let programs = broadcast_programs(alg, *n, 0, *bytes);
                if req.verify {
                    fields.push((
                        "verify".into(),
                        self.verified(ctx, req, rec.algorithm.name(), || {
                            summarize(&verify_programs(&programs))
                        }),
                    ));
                }
                if req.simulate {
                    let report = self.simulate_programs(ctx, &programs, *n)?;
                    fields.push(("simulated".into(), sim_json(&report)));
                }
                fields.push(("recommendation".into(), recommendation_json(&rec)));
            }
            Query::Irregular {
                n,
                density,
                bytes,
                seed,
            } => {
                self.counters.q_irregular.fetch_add(1, Ordering::Relaxed);
                let pattern = Pattern::seeded_random(*n, *density, (*bytes).max(1), *seed);
                self.answer_pattern(ctx, req, &pattern, &mut fields)?;
            }
            Query::Pattern { text } => {
                self.counters.q_pattern.fetch_add(1, Ordering::Relaxed);
                let pattern = Pattern::parse_text(text)?;
                let n = pattern.n();
                if !(2..=crate::request::MAX_NODES).contains(&n) || !n.is_power_of_two() {
                    return Err(format!(
                        "pattern must cover a power-of-two node count in 2..={}, got {n}",
                        crate::request::MAX_NODES
                    ));
                }
                self.answer_pattern(ctx, req, &pattern, &mut fields)?;
            }
            Query::Workload { name, n } => {
                self.counters.q_workload.fetch_add(1, Ordering::Relaxed);
                let pattern = named_pattern(name, *n)?;
                self.answer_pattern(ctx, req, &pattern, &mut fields)?;
            }
            Query::Tenants {
                shared_n,
                placement,
                tenants,
            } => {
                self.counters.q_tenants.fetch_add(1, Ordering::Relaxed);
                let report =
                    self.run_tenant_query(ctx, req, *shared_n, *placement, tenants, &mut fields)?;
                fields.push(("tenants".into(), report));
            }
        }
        Ok(fields)
    }

    /// Classify + advise + verify + simulate an irregular pattern.
    fn answer_pattern(
        &self,
        ctx: &mut QueryCtx,
        req: &Request,
        pattern: &Pattern,
        fields: &mut Vec<(String, Json)>,
    ) -> Result<(), String> {
        let n = pattern.n();
        let tree = FatTree::new(n);
        let stats = PatternStats::of(pattern, &tree);
        let w = Workload::Irregular(stats.clone());
        let rec = self.advise(ctx, &w, n);
        let alg = match rec.algorithm {
            Algorithm::Irregular(a) => a,
            other => return Err(format!("advisor returned non-irregular pick {other}")),
        };
        fields.push(("stats".into(), stats_json(&stats)));
        if req.verify {
            let schedule = alg.schedule(pattern);
            fields.push((
                "verify".into(),
                self.verified(ctx, req, rec.algorithm.name(), || {
                    let mut opts = irregular_policy(alg);
                    opts.params = self.params.clone();
                    summarize(&verify_schedule(&schedule, Some(pattern), &opts))
                }),
            ));
        }
        if req.simulate {
            let report = self.simulate_schedule(ctx, &alg.schedule(pattern), n)?;
            fields.push(("simulated".into(), sim_json(&report)));
        }
        fields.push(("recommendation".into(), recommendation_json(&rec)));
        Ok(())
    }

    /// Advise one workload, recording the predicted time and an advise
    /// phase (carrying the cache key so exporters can derive hit/miss
    /// deterministically).
    fn advise(&self, ctx: &mut QueryCtx, w: &Workload, n: usize) -> Recommendation {
        let t = ctx.start();
        let (rec, outcome) = self
            .advisor
            .recommend_traced(w, &self.params, &FatTree::new(n));
        ctx.phase_advise(rec.algorithm.name(), outcome.key, t);
        self.predicted_ns
            .lock()
            .expect("hist poisoned")
            .record(rec.predicted.as_nanos());
        rec
    }

    fn pick_exchange(&self, rec: &Recommendation) -> Result<ExchangeAlg, String> {
        match rec.algorithm {
            Algorithm::Exchange(a) => Ok(a),
            other => Err(format!("advisor returned non-exchange pick {other}")),
        }
    }

    /// Verify the recommended exchange schedule (memoized).
    fn verify_regular(
        &self,
        ctx: &mut QueryCtx,
        req: &Request,
        rec: &Recommendation,
        n: usize,
        bytes: u64,
    ) -> Result<Json, String> {
        let alg = self.pick_exchange(rec)?;
        Ok(self.verified(ctx, req, rec.algorithm.name(), || {
            let mut opts = exchange_policy(alg);
            opts.params = self.params.clone();
            summarize(&verify_schedule(&alg.schedule(n, bytes), None, &opts))
        }))
    }

    /// Memoized verification: the first request with a given
    /// (query, algorithm) pair runs the verifier; identical queries queued
    /// behind it hit the memo, amortizing the batch. The memo key hashes
    /// the canonical query encoding, so it is interleaving-independent.
    ///
    /// The verify phase covers the memo lookup too (hits record a
    /// near-zero wall duration), so the span *shape* is the same whether
    /// the memo hit or not — memo hits are interleaving-dependent and must
    /// not change the exported span tree.
    fn verified(
        &self,
        ctx: &mut QueryCtx,
        req: &Request,
        alg: &str,
        run: impl FnOnce() -> VerifySummary,
    ) -> Json {
        let t = ctx.start();
        let json = self.verified_inner(req, alg, run);
        ctx.phase(PhaseKind::Verify, alg, t);
        json
    }

    fn verified_inner(
        &self,
        req: &Request,
        alg: &str,
        run: impl FnOnce() -> VerifySummary,
    ) -> Json {
        self.counters
            .verify_requests
            .fetch_add(1, Ordering::Relaxed);
        let mut h = DefaultHasher::new();
        Request {
            id: 0,
            query: req.query.clone(),
            verify: false,
            simulate: false,
        }
        .render_line()
        .hash(&mut h);
        alg.hash(&mut h);
        let key = h.finish();
        let shard = &self.verify_memo[(key % self.verify_memo.len() as u64) as usize];
        if let Some(hit) = shard.lock().expect("memo poisoned").get(&key) {
            return verify_json(hit);
        }
        // Run outside the lock (same determinism argument as the advisor:
        // racing duplicates compute the identical pure summary).
        let summary = run();
        let json = verify_json(&summary);
        shard.lock().expect("memo poisoned").insert(key, summary);
        json
    }

    fn check_sim_size(&self, n: usize) -> Result<(), String> {
        if n > SIM_MAX_NODES {
            return Err(format!(
                "simulation is capped at {SIM_MAX_NODES} nodes per request, got {n}"
            ));
        }
        Ok(())
    }

    fn simulate_schedule(
        &self,
        ctx: &mut QueryCtx,
        schedule: &Schedule,
        n: usize,
    ) -> Result<SimReport, String> {
        self.check_sim_size(n)?;
        self.simulate_programs(ctx, &lower(schedule), n)
    }

    fn simulate_programs(
        &self,
        ctx: &mut QueryCtx,
        programs: &[OpProgram],
        n: usize,
    ) -> Result<SimReport, String> {
        self.check_sim_size(n)?;
        self.counters.simulations.fetch_add(1, Ordering::Relaxed);
        let t = ctx.start();
        let mut sim = Simulation::new(n, self.params.clone()).sim_jobs(self.sim_jobs);
        if let Some(cap) = self.trace_ring {
            sim = sim.record_trace(true).trace_capacity(cap);
        }
        let report = sim.run_ops(programs).map_err(|e| e.to_string())?;
        ctx.phase(PhaseKind::Simulate, &format!("n={n}"), t);
        // Per-query drop counts are bit-identical across sim-jobs, so this
        // sum is deterministic for a given request set.
        self.sim_trace_dropped
            .fetch_add(report.trace_dropped, Ordering::Relaxed);
        self.sim_makespan_ns
            .lock()
            .expect("hist poisoned")
            .record(report.makespan.as_nanos());
        Ok(report)
    }

    /// Advise each tenant's exchange, lower the picked schedules, and run
    /// all tenants concurrently on the shared tree.
    fn run_tenant_query(
        &self,
        ctx: &mut QueryCtx,
        req: &Request,
        shared_n: usize,
        placement: Placement,
        tenants: &[TenantQuery],
        fields: &mut Vec<(String, Json)>,
    ) -> Result<Json, String> {
        self.check_sim_size(shared_n)?;
        let mut specs = Vec::with_capacity(tenants.len());
        let mut recs = Vec::with_capacity(tenants.len());
        for t in tenants {
            let w = Workload::Exchange {
                n: t.n,
                bytes: t.bytes,
            };
            let rec = self.advise(ctx, &w, t.n);
            let alg = self.pick_exchange(&rec)?;
            specs.push(TenantSpec {
                name: t.name.clone(),
                programs: lower(&alg.schedule(t.n, t.bytes)),
            });
            recs.push(Json::Obj(vec![
                ("name".into(), Json::str(t.name.clone())),
                ("recommendation".into(), recommendation_json(&rec)),
            ]));
        }
        if req.verify {
            fields.push((
                "verify".into(),
                self.verified(ctx, req, "tenants", || {
                    // Verify the merged shared-tree programs: structure +
                    // blocking-semantics deadlock analysis.
                    let sizes: Vec<usize> = specs.iter().map(|s| s.programs.len()).collect();
                    match cm5_sim::tenant::TenantLayout::new(shared_n, &sizes, placement)
                        .and_then(|l| l.merge_programs(&specs))
                    {
                        Ok(merged) => summarize(&verify_programs(&merged)),
                        Err(_) => VerifySummary {
                            clean: false,
                            errors: 1,
                            warnings: 0,
                        },
                    }
                }),
            ));
        }
        self.counters.simulations.fetch_add(1, Ordering::Relaxed);
        let t = ctx.start();
        let report = run_tenants_jobs(shared_n, placement, &specs, &self.params, self.sim_jobs)
            .map_err(|e| e.to_string())?;
        ctx.phase(
            PhaseKind::Simulate,
            &format!("tenants={} n={shared_n}", specs.len()),
            t,
        );
        self.sim_makespan_ns
            .lock()
            .expect("hist poisoned")
            .record(report.report.makespan.as_nanos());
        fields.push(("tenant_recommendations".into(), Json::Arr(recs)));
        Ok(tenants_json(&report))
    }

    /// Snapshot the deterministic metrics document: counters, cache/memo
    /// occupancy and hit rates, and histograms of modeled/simulated values.
    /// Byte-identical across worker counts for the same request set.
    pub fn metrics(&self) -> Metrics {
        let mut m = Metrics::default();
        let c = &self.counters;
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        m.counters.insert("requests", get(&c.requests));
        m.counters.insert("responses_ok", get(&c.ok));
        m.counters.insert("responses_error", get(&c.errors));
        m.counters.insert("queries_exchange", get(&c.q_exchange));
        m.counters.insert("queries_broadcast", get(&c.q_broadcast));
        m.counters.insert("queries_irregular", get(&c.q_irregular));
        m.counters.insert("queries_pattern", get(&c.q_pattern));
        m.counters.insert("queries_workload", get(&c.q_workload));
        m.counters.insert("queries_tenants", get(&c.q_tenants));
        m.counters
            .insert("verify_requests", get(&c.verify_requests));
        m.counters.insert("simulations", get(&c.simulations));
        // Sum over queries of each simulation's own (bit-identical) drop
        // count — order-independent, so deterministic at any worker count.
        m.counters
            .insert("sim_trace_dropped", get(&self.sim_trace_dropped));

        // Hit counts are derived, not sampled: `queries − distinct keys`
        // is a pure function of the request set, immune to which racing
        // worker populated an entry first.
        let queries = self.advisor.cache_queries();
        let entries = self.advisor.cache_len() as u64;
        m.counters.insert("advisor_queries", queries);
        m.counters.insert("advisor_cache_entries", entries);
        m.counters
            .insert("advisor_cache_hits", queries.saturating_sub(entries));
        m.gauges.insert(
            "advisor_cache_hit_rate",
            if queries > 0 {
                queries.saturating_sub(entries) as f64 / queries as f64
            } else {
                0.0
            },
        );
        let memo_entries: u64 = self
            .verify_memo
            .iter()
            .map(|s| s.lock().expect("memo poisoned").len() as u64)
            .sum();
        let vreq = get(&c.verify_requests);
        m.counters.insert("verify_memo_entries", memo_entries);
        m.counters
            .insert("verify_memo_hits", vreq.saturating_sub(memo_entries));
        m.gauges.insert("shards", self.shard_count() as f64);

        m.histograms.insert(
            "predicted_ns",
            self.predicted_ns.lock().expect("hist poisoned").clone(),
        );
        m.histograms.insert(
            "sim_makespan_ns",
            self.sim_makespan_ns.lock().expect("hist poisoned").clone(),
        );
        m
    }

    /// The live-health snapshot served at `GET /metrics` and written by
    /// `--metrics-out`: the deterministic [`Service::metrics`] document
    /// plus host-side state — uptime/qps, per-phase wall-clock latency
    /// histograms, queue depth, and flight-recorder occupancy. Unlike
    /// [`Service::metrics`], this snapshot contains real host timing and
    /// is never byte-compared across runs.
    pub fn live_metrics(&self) -> Metrics {
        let mut m = self.metrics();
        let uptime = self.epoch.elapsed().as_secs_f64();
        let requests = self.counters.requests.load(Ordering::Relaxed);
        m.gauges.insert("uptime_secs", uptime);
        m.gauges.insert(
            "qps",
            if uptime > 0.0 {
                requests as f64 / uptime
            } else {
                0.0
            },
        );
        m.counters.insert(
            "spans_observed",
            self.spans_observed.load(Ordering::Relaxed),
        );
        {
            let f = self.flight.lock().expect("flight poisoned");
            m.counters.insert("flight_tripped", f.dumped());
            m.counters.insert("flight_ring_evicted", f.dropped());
            m.gauges
                .insert("flight_ring_len", f.recent().count() as f64);
        }
        let hist = |h: &Mutex<Histogram>| h.lock().expect("timing poisoned").clone();
        m.histograms
            .insert("advise_wall_ns", hist(&self.timing.advise_ns));
        m.histograms
            .insert("verify_wall_ns", hist(&self.timing.verify_ns));
        m.histograms
            .insert("simulate_wall_ns", hist(&self.timing.simulate_ns));
        m.histograms
            .insert("request_total_ns", hist(&self.timing.total_ns));
        m.histograms
            .insert("queue_depth", hist(&self.timing.queue_depth));
        m
    }

    /// Render the nondeterministic host-timing document
    /// (`cm5-serve-timing/1`): per-stage latency histograms plus whatever
    /// the caller measured (wall seconds, QPS, queue depth).
    pub fn timing_json(&self, extra: &[(String, Json)]) -> String {
        let mut fields = vec![
            (
                "advise".to_string(),
                Timing::hist_json(&self.timing.advise_ns),
            ),
            (
                "verify".to_string(),
                Timing::hist_json(&self.timing.verify_ns),
            ),
            (
                "simulate".to_string(),
                Timing::hist_json(&self.timing.simulate_ns),
            ),
            (
                "request_total".to_string(),
                Timing::hist_json(&self.timing.total_ns),
            ),
            (
                "queue_depth".to_string(),
                Timing::hist_json(&self.timing.queue_depth),
            ),
        ];
        for (k, v) in extra {
            fields.push((k.clone(), v.clone()));
        }
        format!(
            "{{{},{}}}\n",
            schema_field("serve-timing", 1),
            fields
                .iter()
                .map(|(k, v)| format!("{}:{}", Json::str(k.clone()).render(), v.render()))
                .collect::<Vec<_>>()
                .join(",")
        )
    }

    /// Clone the flight recorder's ring: the last N fully-spanned queries
    /// in arrival order. This is what interactive-mode `--spans-out` /
    /// `--trace-out` export at shutdown (replay mode exports the complete
    /// span set from [`crate::replay`] instead).
    pub fn recent_spans(&self) -> Vec<QuerySpan> {
        self.flight
            .lock()
            .expect("flight poisoned")
            .recent()
            .cloned()
            .collect()
    }

    /// Record one queue-depth sample (called by the replay pool).
    pub fn sample_queue_depth(&self, depth: usize) {
        self.timing
            .queue_depth
            .lock()
            .expect("timing poisoned")
            .record(depth as u64);
    }
}

/// Reduce diagnostics to the deterministic summary the memo stores.
fn summarize(diags: &cm5_verify::Diagnostics) -> VerifySummary {
    VerifySummary {
        clean: diags.is_clean(),
        errors: diags.count(Severity::Error),
        warnings: diags.count(Severity::Warning),
    }
}

fn verify_json(s: &VerifySummary) -> Json {
    Json::Obj(vec![
        ("clean".into(), Json::Bool(s.clean)),
        ("errors".into(), Json::int(s.errors as u64)),
        ("warnings".into(), Json::int(s.warnings as u64)),
    ])
}

fn sim_json(report: &SimReport) -> Json {
    Json::Obj(vec![
        (
            "makespan_us".into(),
            Json::num(report.makespan.as_micros_f64()),
        ),
        ("messages".into(), Json::int(report.messages)),
        ("root_crossings".into(), Json::int(report.root_crossings)),
        (
            "effective_mb_s".into(),
            Json::num(report.effective_bandwidth() / 1e6),
        ),
    ])
}

/// The named real-application patterns `cm5 advise --name` accepts.
pub fn named_pattern(name: &str, n: usize) -> Result<Pattern, String> {
    Ok(match name {
        "cg" => cm5_workloads::cg_pattern(n),
        "euler545" => cm5_workloads::euler_pattern(545, n),
        "euler2k" => cm5_workloads::euler_pattern(2048, n),
        "euler3k" => cm5_workloads::euler_pattern(3072, n),
        "euler9k" => cm5_workloads::euler_pattern(9216, n),
        other => {
            return Err(format!(
                "unknown workload '{other}' (cg|euler545|euler2k|euler3k|euler9k)"
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> Service {
        Service::new(ServiceConfig::default())
    }

    #[test]
    fn exchange_request_answers_with_recommendation() {
        let s = service();
        let line = r#"{"id":1,"query":{"kind":"exchange","n":32,"bytes":1024},"verify":true,"simulate":true}"#;
        let out = s.handle_line(line);
        let doc = Json::parse(&out).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("id").and_then(Json::as_u64), Some(1));
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("cm5-serve/1")
        );
        let rec = doc.get("recommendation").unwrap();
        assert_eq!(
            rec.get("schema").and_then(Json::as_str),
            Some("cm5-advise/1")
        );
        assert_eq!(
            doc.get("verify")
                .and_then(|v| v.get("clean"))
                .and_then(Json::as_bool),
            Some(true)
        );
        assert!(doc
            .get("simulated")
            .and_then(|v| v.get("makespan_us"))
            .is_some());
    }

    #[test]
    fn malformed_lines_yield_error_responses() {
        let s = service();
        for line in ["", "garbage", r#"{"id":9,"query":{"kind":"wat"}}"#] {
            let out = s.handle_line(line);
            let doc = Json::parse(&out).unwrap();
            assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false), "{line}");
            assert!(doc.get("error").is_some());
        }
        let m = s.metrics();
        assert_eq!(m.counters["responses_error"], 3);
        assert_eq!(m.counters["requests"], 3);
    }

    #[test]
    fn identical_queries_hit_the_caches() {
        let s = service();
        let line = r#"{"id":1,"query":{"kind":"exchange","n":32,"bytes":1024},"verify":true}"#;
        let first = s.handle_line(line);
        let second = s.handle_line(line);
        // Same query → byte-identical response (ids match here).
        assert_eq!(first, second);
        let m = s.metrics();
        assert_eq!(m.counters["advisor_queries"], 2);
        assert_eq!(m.counters["advisor_cache_entries"], 1);
        assert_eq!(m.counters["advisor_cache_hits"], 1);
        assert_eq!(m.counters["verify_requests"], 2);
        assert_eq!(m.counters["verify_memo_entries"], 1);
        assert_eq!(m.counters["verify_memo_hits"], 1);
    }

    #[test]
    fn pattern_and_workload_queries_classify() {
        let s = service();
        let out = s.handle_line(
            r#"{"id":5,"query":{"kind":"pattern","text":"0 256 0 0\n256 0 0 0\n0 0 0 256\n0 0 256 0\n"}}"#,
        );
        let doc = Json::parse(&out).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true), "{out}");
        assert_eq!(
            doc.get("stats")
                .and_then(|v| v.get("n"))
                .and_then(Json::as_u64),
            Some(4)
        );
        let out = s.handle_line(r#"{"id":6,"query":{"kind":"workload","name":"euler545","n":8}}"#);
        let doc = Json::parse(&out).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true), "{out}");
    }

    #[test]
    fn tenant_queries_report_slices() {
        let s = service();
        let line = r#"{"id":9,"query":{"kind":"tenants","shared_n":64,"placement":"subtree","tenants":[{"name":"a","n":16,"bytes":1024},{"name":"b","n":16,"bytes":1024}]}}"#;
        let out = s.handle_line(line);
        let doc = Json::parse(&out).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true), "{out}");
        let tenants = doc
            .get("tenants")
            .and_then(|t| t.get("tenants"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(tenants.len(), 2);
        // Congruent disjoint subtrees: identical makespans.
        assert_eq!(
            tenants[0].get("makespan_us").and_then(Json::as_f64),
            tenants[1].get("makespan_us").and_then(Json::as_f64)
        );
    }

    #[test]
    fn oversized_simulations_are_refused() {
        let s = service();
        let out = s.handle_line(
            r#"{"id":2,"query":{"kind":"exchange","n":2048,"bytes":16},"simulate":true}"#,
        );
        let doc = Json::parse(&out).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        // Advising alone at that size is fine.
        let out = s.handle_line(r#"{"id":3,"query":{"kind":"exchange","n":2048,"bytes":16}}"#);
        let doc = Json::parse(&out).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn timing_json_is_schema_stamped() {
        let s = service();
        s.handle_line(r#"{"id":1,"query":{"kind":"exchange","n":8,"bytes":64}}"#);
        let t = s.timing_json(&[("qps".into(), Json::num(123.0))]);
        assert!(t.contains("\"schema\":\"cm5-serve-timing/1\""), "{t}");
        assert!(t.contains("\"qps\":123"), "{t}");
        assert!(Json::parse(t.trim()).is_ok());
    }
}
