//! Optional TCP frontend: the same JSON-lines protocol as stdin/stdout,
//! over a `std::net::TcpListener`. No external deps — plain std sockets,
//! one thread per connection, newline-delimited requests in, newline-
//! delimited responses out.
//!
//! Two extras on top of the line protocol:
//!
//! * a connection whose first line is an HTTP `GET` is answered as a
//!   one-shot HTTP/1.0 exchange — `GET /metrics` serves the live registry
//!   in Prometheus text exposition ([`cm5_obs::prometheus_text`]), so any
//!   scraper or `curl` can watch a running service;
//! * [`TcpHandle::shutdown`] is graceful: connection reads poll a shared
//!   stop flag on a short timeout, and shutdown joins the accept loop
//!   *and* every connection thread before returning, so callers can flush
//!   final metrics/flight state knowing no request is still in flight.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cm5_obs::prometheus_text;

use crate::service::Service;

/// How often blocked reads wake up to check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// A running TCP frontend. Dropping the handle does NOT stop the server;
/// call [`TcpHandle::shutdown`].
pub struct TcpHandle {
    /// The bound address (useful with a `:0` bind in tests).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl TcpHandle {
    /// Stop accepting connections, signal every open connection, and join
    /// the accept loop plus all connection threads. On return no request
    /// is in flight — metrics snapshots and flight-recorder state taken
    /// after this are final.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().expect("conn registry poisoned"));
        for c in conns {
            let _ = c.join();
        }
    }
}

/// Bind `addr` (e.g. `127.0.0.1:7045`, or `:0` for an ephemeral port) and
/// serve request lines until [`TcpHandle::shutdown`].
pub fn spawn_tcp(service: Arc<Service>, addr: &str) -> std::io::Result<TcpHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    // Poll-with-timeout accept so shutdown is prompt without unsafe
    // self-pipe tricks.
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let conns2 = Arc::clone(&conns);
    let accept_thread = std::thread::spawn(move || {
        while !stop2.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let service = Arc::clone(&service);
                    let stop = Arc::clone(&stop2);
                    let handle =
                        std::thread::spawn(move || serve_connection(&service, stream, &stop));
                    conns2.lock().expect("conn registry poisoned").push(handle);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
    });
    Ok(TcpHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
        conns,
    })
}

fn serve_connection(service: &Service, stream: TcpStream, stop: &AtomicBool) {
    // Short read timeouts let the connection notice shutdown while idle.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    loop {
        // `read_line` appends, so a timeout mid-line keeps the partial
        // data in `buf` and the retry completes it.
        match reader.read_line(&mut buf) {
            Ok(0) => break,
            Ok(_) => {
                let line = std::mem::take(&mut buf);
                let line = line.trim_end_matches(['\n', '\r']);
                if line.trim().is_empty() {
                    continue;
                }
                if let Some(path) = line.strip_prefix("GET ") {
                    serve_http(service, &mut reader, &mut writer, path);
                    break;
                }
                let response = service.handle_line(line);
                if writer.write_all(response.as_bytes()).is_err()
                    || writer.write_all(b"\n").is_err()
                    || writer.flush().is_err()
                {
                    break;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Answer one HTTP GET (first line already consumed; `path_and_version` is
/// everything after `"GET "`). Only `/metrics` exists.
fn serve_http(
    service: &Service,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    path_and_version: &str,
) {
    // Drain request headers best-effort (until a blank line or timeout) so
    // well-behaved clients see a clean close.
    let mut header = String::new();
    while let Ok(n) = reader.read_line(&mut header) {
        if n == 0 || header.trim().is_empty() {
            break;
        }
        header.clear();
    }
    let path = path_and_version
        .split_whitespace()
        .next()
        .unwrap_or_default();
    let (status, body) = if path == "/metrics" {
        ("200 OK", prometheus_text(&service.live_metrics()))
    } else {
        ("404 Not Found", format!("no such path {path}\n"))
    };
    let _ = write!(
        writer,
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = writer.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::service::ServiceConfig;
    use std::io::Read;
    use std::time::Instant;

    #[test]
    fn tcp_round_trip() {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        let handle = spawn_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let addr = handle.addr;

        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(
            b"{\"id\":7,\"query\":{\"kind\":\"exchange\",\"n\":8,\"bytes\":64}}\nnot json\n",
        )
        .unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut lines = BufReader::new(conn).lines();
        let ok = lines.next().unwrap().unwrap();
        let doc = Json::parse(&ok).unwrap();
        assert_eq!(doc.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        let err = lines.next().unwrap().unwrap();
        let doc = Json::parse(&err).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        assert!(lines.next().is_none());

        handle.shutdown();
        assert_eq!(service.metrics().counters["requests"], 2);
    }

    #[test]
    fn metrics_endpoint_serves_lintable_prometheus_text() {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        let handle = spawn_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let addr = handle.addr;

        // Issue a query first so histograms are non-trivial.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"{\"id\":1,\"query\":{\"kind\":\"exchange\",\"n\":16,\"bytes\":256}}\n")
            .unwrap();
        let mut line = String::new();
        BufReader::new(conn).read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");

        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
        let body = response.split("\r\n\r\n").nth(1).unwrap();
        assert!(body.contains("cm5_requests 1"), "{body}");
        assert!(body.contains("# TYPE cm5_request_total_ns histogram"));
        let samples = cm5_obs::lint_prometheus(body).expect("scrape must lint clean");
        assert!(samples > 20, "suspiciously few samples: {samples}");

        // Unknown paths 404.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"GET /nope HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 404"), "{response}");

        handle.shutdown();
    }

    #[test]
    fn shutdown_joins_idle_connections_promptly() {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        let handle = spawn_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let addr = handle.addr;

        // Open a connection, send one request, then go idle WITHOUT
        // closing — pre-graceful-shutdown this thread would be orphaned.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"{\"id\":3,\"query\":{\"kind\":\"exchange\",\"n\":8,\"bytes\":64}}\n")
            .unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");

        let t0 = Instant::now();
        handle.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "shutdown took {:?} with an idle connection open",
            t0.elapsed()
        );
        // The service state is final after shutdown: the snapshot is safe
        // to flush.
        assert_eq!(service.metrics().counters["requests"], 1);
        drop(conn);
    }
}
