//! Optional TCP frontend: the same JSON-lines protocol as stdin/stdout,
//! over a `std::net::TcpListener`. No external deps — plain std sockets,
//! one thread per connection, newline-delimited requests in, newline-
//! delimited responses out.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::service::Service;

/// A running TCP frontend. Dropping the handle does NOT stop the server;
/// call [`TcpHandle::shutdown`].
pub struct TcpHandle {
    /// The bound address (useful with a `:0` bind in tests).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpHandle {
    /// Stop accepting connections and join the accept loop. In-flight
    /// connections finish on their own threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Bind `addr` (e.g. `127.0.0.1:7045`, or `:0` for an ephemeral port) and
/// serve request lines until [`TcpHandle::shutdown`].
pub fn spawn_tcp(service: Arc<Service>, addr: &str) -> std::io::Result<TcpHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    // Poll-with-timeout accept so shutdown is prompt without unsafe
    // self-pipe tricks.
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || {
        while !stop2.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let service = Arc::clone(&service);
                    std::thread::spawn(move || serve_connection(&service, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
    });
    Ok(TcpHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
    })
}

fn serve_connection(service: &Service, stream: TcpStream) {
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = service.handle_line(&line);
        if writer.write_all(response.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
        {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::service::ServiceConfig;

    #[test]
    fn tcp_round_trip() {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        let handle = spawn_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let addr = handle.addr;

        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(
            b"{\"id\":7,\"query\":{\"kind\":\"exchange\",\"n\":8,\"bytes\":64}}\nnot json\n",
        )
        .unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut lines = BufReader::new(conn).lines();
        let ok = lines.next().unwrap().unwrap();
        let doc = Json::parse(&ok).unwrap();
        assert_eq!(doc.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        let err = lines.next().unwrap().unwrap();
        let doc = Json::parse(&err).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        assert!(lines.next().is_none());

        handle.shutdown();
        assert_eq!(service.metrics().counters["requests"], 2);
    }
}
