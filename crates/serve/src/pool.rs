//! The worker pool: replay a recorded trace (or any line stream) through
//! the service on N threads, merging responses in canonical input order.
//!
//! Mirrors `cm5-bench`'s `SweepRunner` pattern: a shared crossbeam work
//! queue feeds workers, each response lands in its input-indexed slot, and
//! the merged output is read in index order — so the response *stream* is
//! byte-identical no matter how many workers raced, which worker handled
//! which request, or how the scheduler interleaved them. The replay
//! determinism test runs the same trace at `--jobs 1/4/8` and compares
//! bytes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use cm5_obs::QuerySpan;

use crate::service::Service;

/// Outcome of one replay run.
#[derive(Debug)]
pub struct ReplayResult {
    /// One response line per input line, in input order.
    pub responses: Vec<String>,
    /// One fully-typed query span per input line, in input order (their
    /// wall-clock fields are host timing; every exported view quarantines
    /// them — see [`cm5_obs::spans_json`]).
    pub spans: Vec<QuerySpan>,
    /// Requests processed.
    pub requests: usize,
    /// Host wall-clock seconds for the whole replay (nondeterministic).
    pub wall_secs: f64,
}

impl ReplayResult {
    /// Sustained queries/second over the replay (nondeterministic).
    pub fn qps(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.requests as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Resolve a `--jobs` value: 0 means all available cores.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// Replay every non-empty line of `input` through `service` on `jobs`
/// worker threads (0 = all cores). `qps` paces the feeder to a target
/// offered load; `None` feeds as fast as the workers drain.
///
/// The response vector is in input order regardless of `jobs` — the
/// determinism anchor for the whole serve subsystem.
pub fn replay(service: &Service, input: &str, jobs: usize, qps: Option<f64>) -> ReplayResult {
    let lines: Vec<&str> = input.lines().filter(|l| !l.trim().is_empty()).collect();
    let jobs = resolve_jobs(jobs).max(1);
    let slots: Vec<Mutex<Option<(String, QuerySpan)>>> =
        (0..lines.len()).map(|_| Mutex::new(None)).collect();
    let submitted = AtomicU64::new(0);
    let dequeued = AtomicU64::new(0);
    let start = Instant::now();

    crossbeam::thread::scope(|scope| {
        let (tx, rx) = crossbeam::channel::unbounded::<(usize, &str)>();
        for worker in 0..jobs {
            let rx = rx.clone();
            let slots = &slots;
            let submitted = &submitted;
            let dequeued = &dequeued;
            scope.spawn(move || {
                while let Ok((idx, line)) = rx.recv() {
                    let d = dequeued.fetch_add(1, Ordering::Relaxed) + 1;
                    let s = submitted.load(Ordering::Relaxed);
                    service.sample_queue_depth(s.saturating_sub(d) as usize);
                    let (response, mut span) = service.handle_line_spanned(idx as u64, line);
                    span.worker = worker;
                    *slots[idx].lock().expect("slot poisoned") = Some((response, span));
                }
            });
        }
        // Feeder: paced when a target QPS is set, flat-out otherwise.
        let interval = qps
            .filter(|q| *q > 0.0)
            .map(|q| Duration::from_secs_f64(1.0 / q));
        for (idx, line) in lines.iter().enumerate() {
            if let Some(step) = interval {
                let due = start + step.mul_f64(idx as f64);
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
            }
            submitted.fetch_add(1, Ordering::Relaxed);
            tx.send((idx, line)).expect("workers alive");
        }
        drop(tx);
    });

    let (responses, spans): (Vec<String>, Vec<QuerySpan>) = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot poisoned")
                .expect("every line produced a response")
        })
        .unzip();
    // Observe the merged spans in input order — the flight recorder's ring
    // and dumps then match a single-worker run byte for byte.
    for span in &spans {
        service.observe(span);
    }
    ReplayResult {
        requests: responses.len(),
        responses,
        spans,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    fn trace() -> String {
        let mut t = String::new();
        for i in 0..24u64 {
            let n = [8usize, 16, 32][(i % 3) as usize];
            let bytes = 64 + (i % 5) * 128;
            t.push_str(&format!(
                "{{\"id\":{i},\"query\":{{\"kind\":\"exchange\",\"n\":{n},\"bytes\":{bytes}}},\"verify\":true}}\n"
            ));
        }
        t.push_str("{\"id\":99,\"query\":{\"kind\":\"wat\"}}\n");
        t
    }

    #[test]
    fn responses_are_in_input_order_at_any_worker_count() {
        let trace = trace();
        let mut outputs = Vec::new();
        for jobs in [1usize, 3, 8] {
            let service = Service::new(ServiceConfig::default());
            let result = replay(&service, &trace, jobs, None);
            assert_eq!(result.requests, 25);
            outputs.push((result.responses.join("\n"), service.metrics().to_json()));
        }
        for (responses, metrics) in &outputs[1..] {
            assert_eq!(responses, &outputs[0].0, "response stream varies with jobs");
            assert_eq!(metrics, &outputs[0].1, "metrics vary with jobs");
        }
        // Ids echo in input order.
        let first = &outputs[0].0;
        let idx0 = first.find("\"id\":0").unwrap();
        let idx24 = first.find("\"id\":99").unwrap();
        assert!(idx0 < idx24);
    }

    #[test]
    fn pacing_caps_offered_load() {
        let service = Service::new(ServiceConfig::default());
        let trace = "{\"id\":1,\"query\":{\"kind\":\"exchange\",\"n\":8,\"bytes\":64}}\n".repeat(5);
        let result = replay(&service, &trace, 2, Some(1000.0));
        // 5 requests at 1000 qps: at least 4 inter-arrival gaps of 1 ms.
        assert!(result.wall_secs >= 0.004, "{}", result.wall_secs);
    }
}
