//! Request codec: one JSON object per line.
//!
//! ```text
//! {"id":1,"query":{"kind":"exchange","n":32,"bytes":1024},"verify":true}
//! {"id":2,"query":{"kind":"irregular","n":32,"density":0.25,"bytes":256,"seed":7},"simulate":true}
//! {"id":3,"query":{"kind":"pattern","text":"0 4\n4 0\n"}}
//! {"id":4,"query":{"kind":"workload","name":"euler2k","n":32}}
//! {"id":5,"query":{"kind":"tenants","shared_n":64,"placement":"striped",
//!                  "tenants":[{"name":"a","n":16,"bytes":1024},{"name":"b","n":16,"bytes":1024}]}}
//! ```
//!
//! `parse_line ∘ render_line` is the identity (the codec proptests pin
//! this), and `parse_line` rejects malformed input with an error string,
//! never a panic. Unknown fields are rejected loudly — a typo like
//! `"simlate"` must not silently fall back to a default (same policy as
//! the CLI's `check_flags`).
//!
//! Integers ride in JSON numbers (f64, like every JavaScript client), so
//! the round-trip guarantee covers values up to 2^53; larger ids or byte
//! counts lose low bits exactly as they would in any JSON interop.

use cm5_sim::tenant::Placement;

use crate::json::Json;

/// Upper bound on node counts a request may ask for. The simulator scales
/// past this, but a *service* must bound per-request work: 16384 nodes is
/// the largest machine the benches exercise.
pub const MAX_NODES: usize = 16_384;

/// One tenant inside a [`Query::Tenants`] request: `n` nodes running a
/// complete exchange of `bytes` per pair, scheduled by the advisor's pick.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantQuery {
    /// Tenant display name.
    pub name: String,
    /// Tenant partition size.
    pub n: usize,
    /// Bytes per ordered pair in the tenant's exchange.
    pub bytes: u64,
}

/// What a client asks the service about.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// All-to-all personalized exchange.
    Exchange {
        /// Number of nodes.
        n: usize,
        /// Bytes per ordered pair.
        bytes: u64,
    },
    /// One-to-all broadcast.
    Broadcast {
        /// Number of nodes.
        n: usize,
        /// Bytes broadcast.
        bytes: u64,
    },
    /// Synthetic seeded-random irregular pattern (Table 11's generator).
    Irregular {
        /// Number of nodes.
        n: usize,
        /// Fill probability per ordered pair.
        density: f64,
        /// Mean entry size in bytes.
        bytes: u64,
        /// Generator seed.
        seed: u64,
    },
    /// Inline/captured irregular matrix, `Pattern::parse_text` format.
    Pattern {
        /// The matrix text (rows of byte counts).
        text: String,
    },
    /// A named real-application pattern (cg, euler545, euler2k, euler3k,
    /// euler9k).
    Workload {
        /// Workload name.
        name: String,
        /// Number of nodes it is partitioned over.
        n: usize,
    },
    /// Concurrent tenant exchanges sharing one fat tree.
    Tenants {
        /// Shared tree size.
        shared_n: usize,
        /// Placement policy.
        placement: Placement,
        /// The tenants.
        tenants: Vec<TenantQuery>,
    },
}

impl Query {
    /// The wire-format kind string (`"exchange"`, `"tenants"`, …).
    pub fn kind(&self) -> &'static str {
        match self {
            Query::Exchange { .. } => "exchange",
            Query::Broadcast { .. } => "broadcast",
            Query::Irregular { .. } => "irregular",
            Query::Pattern { .. } => "pattern",
            Query::Workload { .. } => "workload",
            Query::Tenants { .. } => "tenants",
        }
    }
}

/// One decoded request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen id, echoed in the response.
    pub id: u64,
    /// The question.
    pub query: Query,
    /// Statically verify the recommended schedule.
    pub verify: bool,
    /// Simulate the recommended schedule and report measured timings.
    pub simulate: bool,
}

fn check_fields(obj: &Json, allowed: &[&str], what: &str) -> Result<(), String> {
    if let Json::Obj(fields) = obj {
        for (k, _) in fields {
            if !allowed.contains(&k.as_str()) {
                return Err(format!(
                    "unknown {what} field '{k}' (expected one of: {})",
                    allowed.join(", ")
                ));
            }
        }
        Ok(())
    } else {
        Err(format!("{what} must be an object"))
    }
}

fn field_usize(obj: &Json, key: &str, what: &str) -> Result<usize, String> {
    obj.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| format!("{what} needs an integer '{key}'"))
}

fn field_u64_or(obj: &Json, key: &str, default: u64) -> Result<u64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("'{key}' must be a non-negative integer")),
    }
}

/// Node counts must be CM-5-partition-shaped: powers of two within the
/// service bound. The regular exchange generators assert power-of-two
/// inputs, and a service must refuse, not panic.
fn check_n(n: usize) -> Result<usize, String> {
    if !(2..=MAX_NODES).contains(&n) || !n.is_power_of_two() {
        return Err(format!(
            "n must be a power of two in 2..={MAX_NODES}, got {n}"
        ));
    }
    Ok(n)
}

impl Request {
    /// Decode one request line. Never panics: malformed input returns a
    /// descriptive error.
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let doc = Json::parse(line)?;
        check_fields(&doc, &["id", "query", "verify", "simulate"], "request")?;
        let id = doc
            .get("id")
            .and_then(Json::as_u64)
            .ok_or("request needs an integer 'id'")?;
        let verify = match doc.get("verify") {
            None => false,
            Some(v) => v.as_bool().ok_or("'verify' must be a boolean")?,
        };
        let simulate = match doc.get("simulate") {
            None => false,
            Some(v) => v.as_bool().ok_or("'simulate' must be a boolean")?,
        };
        let q = doc.get("query").ok_or("request needs a 'query' object")?;
        let kind = q
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("query needs a string 'kind'")?;
        let query = match kind {
            "exchange" | "broadcast" => {
                check_fields(q, &["kind", "n", "bytes"], "query")?;
                let n = check_n(field_usize(q, "n", "query")?)?;
                let bytes = field_u64_or(q, "bytes", 1024)?;
                if kind == "exchange" {
                    Query::Exchange { n, bytes }
                } else {
                    Query::Broadcast { n, bytes }
                }
            }
            "irregular" => {
                check_fields(q, &["kind", "n", "density", "bytes", "seed"], "query")?;
                let n = check_n(field_usize(q, "n", "query")?)?;
                let density = q.get("density").and_then(Json::as_f64).unwrap_or(0.25);
                if !(0.0..=1.0).contains(&density) {
                    return Err(format!("density must be in 0..=1, got {density}"));
                }
                Query::Irregular {
                    n,
                    density,
                    bytes: field_u64_or(q, "bytes", 256)?,
                    seed: field_u64_or(q, "seed", 0x7AB1E)?,
                }
            }
            "pattern" => {
                check_fields(q, &["kind", "text"], "query")?;
                let text = q
                    .get("text")
                    .and_then(Json::as_str)
                    .ok_or("pattern query needs a string 'text'")?;
                Query::Pattern {
                    text: text.to_string(),
                }
            }
            "workload" => {
                check_fields(q, &["kind", "name", "n"], "query")?;
                let name = q
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("workload query needs a string 'name'")?;
                Query::Workload {
                    name: name.to_string(),
                    n: check_n(field_usize(q, "n", "query")?)?,
                }
            }
            "tenants" => {
                check_fields(q, &["kind", "shared_n", "placement", "tenants"], "query")?;
                let shared_n = check_n(field_usize(q, "shared_n", "query")?)?;
                let placement = match q.get("placement").and_then(Json::as_str) {
                    None => Placement::Subtree,
                    Some(s) => Placement::parse(s)
                        .ok_or_else(|| format!("unknown placement '{s}' (subtree | striped)"))?,
                };
                let items = q
                    .get("tenants")
                    .and_then(Json::as_arr)
                    .ok_or("tenants query needs a 'tenants' array")?;
                if items.is_empty() {
                    return Err("tenants array is empty".into());
                }
                let mut tenants = Vec::with_capacity(items.len());
                for t in items {
                    check_fields(t, &["name", "n", "bytes"], "tenant")?;
                    let name = t
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("tenant needs a string 'name'")?;
                    tenants.push(TenantQuery {
                        name: name.to_string(),
                        n: check_n(field_usize(t, "n", "tenant")?)?,
                        bytes: field_u64_or(t, "bytes", 1024)?,
                    });
                }
                Query::Tenants {
                    shared_n,
                    placement,
                    tenants,
                }
            }
            other => {
                return Err(format!(
                    "unknown query kind '{other}' \
                     (exchange | broadcast | irregular | pattern | workload | tenants)"
                ))
            }
        };
        Ok(Request {
            id,
            query,
            verify,
            simulate,
        })
    }

    /// Encode as one request line (no trailing newline). Inverse of
    /// [`Request::parse_line`].
    pub fn render_line(&self) -> String {
        let query = match &self.query {
            Query::Exchange { n, bytes } => Json::Obj(vec![
                ("kind".into(), Json::str("exchange")),
                ("n".into(), Json::int(*n as u64)),
                ("bytes".into(), Json::int(*bytes)),
            ]),
            Query::Broadcast { n, bytes } => Json::Obj(vec![
                ("kind".into(), Json::str("broadcast")),
                ("n".into(), Json::int(*n as u64)),
                ("bytes".into(), Json::int(*bytes)),
            ]),
            Query::Irregular {
                n,
                density,
                bytes,
                seed,
            } => Json::Obj(vec![
                ("kind".into(), Json::str("irregular")),
                ("n".into(), Json::int(*n as u64)),
                ("density".into(), Json::num(*density)),
                ("bytes".into(), Json::int(*bytes)),
                ("seed".into(), Json::int(*seed)),
            ]),
            Query::Pattern { text } => Json::Obj(vec![
                ("kind".into(), Json::str("pattern")),
                ("text".into(), Json::str(text.clone())),
            ]),
            Query::Workload { name, n } => Json::Obj(vec![
                ("kind".into(), Json::str("workload")),
                ("name".into(), Json::str(name.clone())),
                ("n".into(), Json::int(*n as u64)),
            ]),
            Query::Tenants {
                shared_n,
                placement,
                tenants,
            } => Json::Obj(vec![
                ("kind".into(), Json::str("tenants")),
                ("shared_n".into(), Json::int(*shared_n as u64)),
                ("placement".into(), Json::str(placement.name())),
                (
                    "tenants".into(),
                    Json::Arr(
                        tenants
                            .iter()
                            .map(|t| {
                                Json::Obj(vec![
                                    ("name".into(), Json::str(t.name.clone())),
                                    ("n".into(), Json::int(t.n as u64)),
                                    ("bytes".into(), Json::int(t.bytes)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        };
        let mut fields = vec![
            ("id".to_string(), Json::int(self.id)),
            ("query".to_string(), query),
        ];
        if self.verify {
            fields.push(("verify".into(), Json::Bool(true)));
        }
        if self.simulate {
            fields.push(("simulate".into(), Json::Bool(true)));
        }
        Json::Obj(fields).render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_round_trips() {
        let reqs = vec![
            Request {
                id: 1,
                query: Query::Exchange { n: 32, bytes: 1024 },
                verify: true,
                simulate: false,
            },
            Request {
                id: 2,
                query: Query::Irregular {
                    n: 16,
                    density: 0.25,
                    bytes: 256,
                    seed: 7,
                },
                verify: false,
                simulate: true,
            },
            Request {
                id: 3,
                query: Query::Pattern {
                    text: "0 4\n4 0\n".into(),
                },
                verify: false,
                simulate: false,
            },
            Request {
                id: 4,
                query: Query::Tenants {
                    shared_n: 64,
                    placement: Placement::Striped,
                    tenants: vec![
                        TenantQuery {
                            name: "a".into(),
                            n: 16,
                            bytes: 1024,
                        },
                        TenantQuery {
                            name: "b".into(),
                            n: 16,
                            bytes: 1024,
                        },
                    ],
                },
                verify: false,
                simulate: true,
            },
        ];
        for r in reqs {
            let line = r.render_line();
            assert_eq!(Request::parse_line(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for line in [
            "",
            "not json",
            "{}",
            r#"{"id":"x","query":{"kind":"exchange","n":4}}"#,
            r#"{"id":1}"#,
            r#"{"id":1,"query":{"kind":"bogus"}}"#,
            r#"{"id":1,"query":{"kind":"exchange","n":1}}"#,
            r#"{"id":1,"query":{"kind":"exchange","n":99999999}}"#,
            r#"{"id":1,"query":{"kind":"exchange","n":12}}"#,
            r#"{"id":1,"query":{"kind":"exchange","n":8,"byte":1}}"#,
            r#"{"id":1,"query":{"kind":"exchange","n":8},"simlate":true}"#,
            r#"{"id":1,"query":{"kind":"irregular","n":8,"density":1.5}}"#,
            r#"{"id":1,"query":{"kind":"tenants","shared_n":64,"tenants":[]}}"#,
            r#"{"id":1,"query":{"kind":"tenants","shared_n":64,"placement":"x","tenants":[{"name":"a","n":4}]}}"#,
        ] {
            assert!(Request::parse_line(line).is_err(), "{line:?} should fail");
        }
    }
}
