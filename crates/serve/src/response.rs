//! Response rendering: the `cm5-serve/1` response line and the
//! `cm5-advise/1` recommendation object shared with `cm5 advise --json`.
//!
//! Every value that reaches a response is *simulated or modeled* — never
//! host timing — so a response line is a pure function of the request and
//! the machine parameters. The replay determinism test leans on this:
//! byte-identical response streams at any worker count.

use cm5_model::{PatternStats, Recommendation};
use cm5_obs::schema_id;
use cm5_sim::tenant::TenantReport;

use crate::json::Json;

/// The `cm5-advise/1` recommendation object: one machine-readable format
/// for service clients and `cm5 advise --json` alike.
pub fn recommendation_json(rec: &Recommendation) -> Json {
    let mut fields = vec![
        ("schema".to_string(), Json::str(schema_id("advise", 1))),
        ("algorithm".to_string(), Json::str(rec.algorithm.name())),
        (
            "predicted_us".to_string(),
            Json::num(rec.predicted.as_micros_f64()),
        ),
    ];
    if let (Some(ru), Some(rut)) = (rec.runner_up, rec.runner_up_predicted) {
        fields.push(("runner_up".into(), Json::str(ru.name())));
        fields.push((
            "runner_up_predicted_us".into(),
            Json::num(rut.as_micros_f64()),
        ));
        fields.push(("margin".into(), Json::num(rec.margin)));
    }
    fields.push((
        "candidates".into(),
        Json::Arr(
            rec.candidates
                .iter()
                .map(|(alg, t)| {
                    Json::Obj(vec![
                        ("algorithm".into(), Json::str(alg.name())),
                        ("predicted_us".into(), Json::num(t.as_micros_f64())),
                    ])
                })
                .collect(),
        ),
    ));
    Json::Obj(fields)
}

/// Pattern classification as JSON (the `PatternStats` reduction the
/// advisor decides from).
pub fn stats_json(s: &PatternStats) -> Json {
    Json::Obj(vec![
        ("n".into(), Json::int(s.n as u64)),
        ("nonzero_pairs".into(), Json::int(s.nonzero_pairs as u64)),
        ("density".into(), Json::num(s.density)),
        ("avg_msg_bytes".into(), Json::num(s.avg_msg_bytes)),
        ("max_msg_bytes".into(), Json::int(s.max_msg_bytes)),
        ("total_bytes".into(), Json::int(s.total_bytes)),
        ("max_out_degree".into(), Json::int(s.max_out_degree as u64)),
        ("max_in_degree".into(), Json::int(s.max_in_degree as u64)),
        ("root_crossing_frac".into(), Json::num(s.root_crossing_frac)),
    ])
}

/// Tenant slices of a shared-tree run as JSON.
pub fn tenants_json(report: &TenantReport) -> Json {
    Json::Obj(vec![
        (
            "shared_makespan_us".into(),
            Json::num(report.report.makespan.as_micros_f64()),
        ),
        (
            "root_crossings".into(),
            Json::int(report.report.root_crossings),
        ),
        (
            "tenants".into(),
            Json::Arr(
                report
                    .tenants
                    .iter()
                    .map(|t| {
                        Json::Obj(vec![
                            ("name".into(), Json::str(t.name.clone())),
                            ("nodes".into(), Json::int(t.nodes.len() as u64)),
                            ("makespan_us".into(), Json::num(t.makespan.as_micros_f64())),
                            ("messages".into(), Json::int(t.messages)),
                            ("payload_bytes".into(), Json::int(t.payload_bytes)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Start a `cm5-serve/1` response object for request `id`.
pub fn response_base(id: u64, ok: bool) -> Vec<(String, Json)> {
    vec![
        ("schema".to_string(), Json::str(schema_id("serve", 1))),
        ("id".to_string(), Json::int(id)),
        ("ok".to_string(), Json::Bool(ok)),
    ]
}

/// Render an error response line for `id` (or 0 when the line was too
/// malformed to carry an id).
pub fn error_line(id: u64, error: &str) -> String {
    let mut fields = response_base(id, false);
    fields.push(("error".into(), Json::str(error)));
    Json::Obj(fields).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm5_model::{Advisor, Workload};
    use cm5_sim::{FatTree, MachineParams};

    #[test]
    fn recommendation_json_is_schema_stamped_and_parses() {
        let rec = Advisor::recommend_uncached(
            &Workload::Exchange { n: 32, bytes: 1024 },
            &MachineParams::cm5_1992(),
            &FatTree::new(32),
        );
        let doc = recommendation_json(&rec);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(
            back.get("schema").and_then(Json::as_str),
            Some("cm5-advise/1")
        );
        assert_eq!(
            back.get("algorithm").and_then(Json::as_str),
            Some(rec.algorithm.name())
        );
        assert_eq!(
            back.get("candidates")
                .and_then(Json::as_arr)
                .map(|a| a.len()),
            Some(rec.candidates.len())
        );
    }

    #[test]
    fn error_lines_parse() {
        let line = error_line(7, "bad \"query\"");
        let doc = Json::parse(&line).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(
            doc.get("error").and_then(Json::as_str),
            Some("bad \"query\"")
        );
    }
}
