//! # cm5-serve — a multi-tenant scheduling service under heavy traffic
//!
//! The paper's end product is a decision procedure: given a communication
//! pattern, pick the schedule that wins on a real CM-5. The rest of this
//! workspace answers one query per process; this crate turns the
//! advisor + verifier + simulator stack into a long-running service
//! (`cm5 serve`) that answers a *stream* of pattern queries:
//!
//! * **Protocol** ([`request`], [`response`], [`json`]): JSON-lines over
//!   stdin/stdout, plus an optional std-only TCP listener ([`tcp`]). The
//!   codec is deterministic and panic-free on hostile input.
//! * **Service core** ([`service`]): classify with `PatternStats`, answer
//!   via the sharded-cache [`cm5_model::Advisor`], verify the picked
//!   schedule through a sharded memo that amortizes `cm5-verify` runs
//!   across the queue, and simulate on request (bounded per-request work).
//! * **Multi-tenancy**: `tenants` queries admit concurrent partition
//!   simulations on one shared fat tree via [`cm5_sim::tenant`] — the
//!   root-bandwidth-contention regime the paper's dedicated machine never
//!   had.
//! * **Replay** ([`pool`]): feed a recorded trace through a worker pool at
//!   `--jobs N` workers and optional `--qps` pacing. Responses merge in
//!   canonical input order, so the response stream and the deterministic
//!   metrics document are byte-identical at any worker count; sustained
//!   QPS lands in `BENCH_sim.json` with a CI floor.
//!
//! Observability splits cleanly: deterministic counters/histograms
//! ([`service::Service::metrics`], `cm5-metrics/1`) versus host timing
//! ([`service::Service::timing_json`], `cm5-serve-timing/1`) — the same
//! determinism boundary the simulator draws around `SimPerf`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod pool;
pub mod request;
pub mod response;
pub mod service;
pub mod tcp;

pub use json::Json;
pub use pool::{replay, resolve_jobs, ReplayResult};
pub use request::{Query, Request, TenantQuery, MAX_NODES};
pub use response::{recommendation_json, stats_json, tenants_json};
pub use service::{named_pattern, Service, ServiceConfig, SIM_MAX_NODES};
pub use tcp::{spawn_tcp, TcpHandle};
