//! `cm5` — schedule and simulate CM-5 communication patterns from the shell.
//!
//! ```text
//! cm5 exchange  --alg bex -n 32 --bytes 1024 [--machine vector] [--async] [--render]
//! cm5 broadcast --alg reb -n 64 --bytes 4096 [--root 0]
//! cm5 irregular --alg gs  -n 32 --density 0.25 --bytes 256 [--seed 7] [--pattern paper] [--render]
//! cm5 workload  --name euler2k [-n 32] [--alg gs]
//! cm5 sweep     [--grid exchange|irregular] [--jobs N]
//! cm5 bench     [--quick] [--json PATH]
//! ```
//!
//! Every command prints the schedule's shape metrics and the simulated run
//! report. For the paper's full evaluation use
//! `cargo run --release -p cm5-bench --bin report`.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use cm5_core::irregular::crystal;
use cm5_core::prelude::*;
use cm5_model::prelude::*;
use cm5_sim::{FatTree, MachineParams, SimReport, Simulation};

/// Minimal `--key value` / `--flag` argument map (no external deps).
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags: Vec<(String, Option<String>)> = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it
                    .peek()
                    .filter(|v| !v.starts_with("--"))
                    .map(|v| v.to_string());
                if value.is_some() {
                    it.next();
                }
                flags.push((name.to_string(), value));
            } else {
                positional.push(a.clone());
            }
        }
        Args { positional, flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == name)
    }

    fn usize_or(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects an integer, got '{v}'")),
        }
    }

    fn u64_or(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects an integer, got '{v}'")),
        }
    }

    fn f64_or(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects a number, got '{v}'")),
        }
    }

    /// Reject any flag this command does not understand. A typo like
    /// `--byte` must fail loudly, not silently fall back to a default.
    fn check_flags(&self, allowed: &[&str]) -> Result<(), String> {
        for (k, _) in &self.flags {
            if !allowed.contains(&k.as_str()) {
                return Err(format!(
                    "unknown flag '--{k}' (valid flags: {})\n\n{USAGE}",
                    allowed
                        .iter()
                        .map(|f| format!("--{f}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                ));
            }
        }
        Ok(())
    }
}

fn machine(args: &Args) -> Result<MachineParams, String> {
    let mut params = match args.get("machine").unwrap_or("1992") {
        "1992" => MachineParams::cm5_1992(),
        "vector" => MachineParams::cm5_vector_1993(),
        "buffered" => MachineParams::cm5_1992_buffered(),
        other => {
            return Err(format!(
                "unknown --machine '{other}' (expected 1992 | vector | buffered)"
            ))
        }
    };
    // `--rates full` swaps in the original full-recompute rate solver — an
    // ablation/differential-testing hook; simulated results are identical
    // by construction, only the host cost changes.
    match args.get("rates") {
        None if !args.has("rates") => {}
        Some("incremental") => params.rate_solver = cm5_sim::RateSolver::Incremental,
        Some("full") => params.rate_solver = cm5_sim::RateSolver::Full,
        Some("hierarchical") => params.rate_solver = cm5_sim::RateSolver::Hierarchical,
        other => {
            return Err(format!(
                "--rates expects full | incremental | hierarchical, got '{}'",
                other.unwrap_or("")
            ))
        }
    }
    Ok(params)
}

fn print_report(schedule: Option<&Schedule>, report: &SimReport, n: usize) {
    if let Some(s) = schedule {
        println!(
            "schedule   : {} steps, {} ops, {} payload bytes",
            s.num_steps(),
            s.total_ops(),
            s.total_bytes()
        );
        let tree = FatTree::new(n);
        let summary = ScheduleSummary::of(s, &tree);
        println!(
            "root xings : {} total, max {}/step, {} all-global steps",
            summary.crossings.iter().sum::<usize>(),
            summary.max_crossings_per_step,
            summary.all_global_steps
        );
    }
    println!("makespan   : {}", report.makespan);
    println!(
        "traffic    : {} messages, {} payload B, {} wire B, {} root crossings",
        report.messages, report.payload_bytes, report.wire_bytes, report.root_crossings
    );
    println!(
        "efficiency : {:.2} MB/s delivered, {:.0}% mean blocked",
        report.effective_bandwidth() / 1e6,
        report.mean_blocked_fraction() * 100.0
    );
}

fn run_lowered(
    schedule: &Schedule,
    params: &MachineParams,
    async_sends: bool,
) -> Result<SimReport, String> {
    let programs = lower_with(
        schedule,
        &LowerOptions {
            async_sends,
            ..Default::default()
        },
    );
    Simulation::new(schedule.n(), params.clone())
        .run_ops(&programs)
        .map_err(|e| e.to_string())
}

fn topology(args: &Args, n: usize) -> Result<cm5_sim::Topology, String> {
    match args.get("topology").unwrap_or("fat-tree") {
        "fat-tree" | "fattree" => Ok(cm5_sim::Topology::FatTree(FatTree::new(n))),
        "hypercube" => Ok(cm5_sim::Topology::Hypercube(cm5_sim::Hypercube::new(n))),
        other => Err(format!(
            "unknown --topology '{other}' (expected fat-tree | hypercube)"
        )),
    }
}

/// Price every candidate with the cost models and print the pick.
fn advise_print(w: &Workload, params: &MachineParams, n: usize) -> Recommendation {
    let rec = Advisor::recommend_uncached(w, params, &FatTree::new(n));
    println!(
        "advisor    : {} (predicted {})",
        rec.algorithm, rec.predicted
    );
    for (alg, t) in &rec.candidates {
        let mark = if *alg == rec.algorithm { "->" } else { "  " };
        println!("  {mark} {:<16} predicted {t}", alg.name());
    }
    if rec.runner_up.is_some() {
        println!("margin     : runner-up {:.1}% behind", rec.margin * 100.0);
    }
    rec
}

fn cmd_exchange(args: &Args) -> Result<(), String> {
    args.check_flags(&[
        "alg", "n", "bytes", "machine", "rates", "topology", "async", "render", "sim-jobs",
    ])?;
    let n = args.usize_or("n", 32)?;
    let bytes = args.u64_or("bytes", 1024)?;
    let params = machine(args)?;
    let alg = match args.get("alg").unwrap_or("bex") {
        "lex" => ExchangeAlg::Lex,
        "pex" => ExchangeAlg::Pex,
        "rex" => ExchangeAlg::Rex,
        "bex" => ExchangeAlg::Bex,
        "auto" => {
            let rec = advise_print(&Workload::Exchange { n, bytes }, &params, n);
            match rec.algorithm {
                Algorithm::Exchange(a) => a,
                other => return Err(format!("advisor returned non-exchange pick {other}")),
            }
        }
        other => return Err(format!("unknown --alg '{other}' (lex|pex|rex|bex|auto)")),
    };
    let schedule = alg.schedule(n, bytes);
    println!(
        "{} complete exchange, {n} nodes, {bytes} B/pair",
        alg.name()
    );
    if args.has("render") {
        println!("{}", render_schedule(&schedule, &FatTree::new(n)));
    }
    let topo = topology(args, n)?;
    let programs = lower_with(
        &schedule,
        &LowerOptions {
            async_sends: args.has("async"),
            ..Default::default()
        },
    );
    let report = Simulation::new_on(topo, params)
        .sim_jobs(args.usize_or("sim-jobs", 1)?)
        .run_ops(&programs)
        .map_err(|e| e.to_string())?;
    print_report(Some(&schedule), &report, n);
    Ok(())
}

fn cmd_broadcast(args: &Args) -> Result<(), String> {
    args.check_flags(&["alg", "n", "bytes", "root", "machine", "rates"])?;
    let n = args.usize_or("n", 32)?;
    let bytes = args.u64_or("bytes", 1024)?;
    let root = args.usize_or("root", 0)?;
    let params = machine(args)?;
    let alg = match args.get("alg").unwrap_or("reb") {
        "lib" => BroadcastAlg::Linear,
        "reb" => BroadcastAlg::Recursive,
        "system" => BroadcastAlg::System,
        "auto" => {
            let rec = advise_print(&Workload::Broadcast { n, bytes }, &params, n);
            match rec.algorithm {
                Algorithm::Broadcast(a) => a,
                other => return Err(format!("advisor returned non-broadcast pick {other}")),
            }
        }
        other => return Err(format!("unknown --alg '{other}' (lib|reb|system|auto)")),
    };
    println!(
        "{} broadcast, {n} nodes, {bytes} B from node {root}",
        alg.name()
    );
    let programs = broadcast_programs(alg, n, root, bytes);
    let report = Simulation::new(n, params)
        .run_ops(&programs)
        .map_err(|e| e.to_string())?;
    print_report(None, &report, n);
    Ok(())
}

fn irregular_pattern(args: &Args, n: usize) -> Result<Pattern, String> {
    match args.get("pattern") {
        Some("paper") => {
            if n != 8 {
                return Err("--pattern paper is the 8-node Table 6 matrix; use -n 8".into());
            }
            Ok(Pattern::paper_pattern_p(args.u64_or("bytes", 256)?))
        }
        Some(other) => Err(format!("unknown --pattern '{other}' (paper)")),
        None => {
            let density = args.f64_or("density", 0.25)?;
            let bytes = args.u64_or("bytes", 256)?;
            let seed = args.u64_or("seed", 0x7AB1E)?;
            Ok(Pattern::seeded_random(n, density, bytes, seed))
        }
    }
}

fn cmd_irregular(args: &Args) -> Result<(), String> {
    args.check_flags(&[
        "alg", "n", "density", "bytes", "seed", "pattern", "machine", "rates", "async", "render",
    ])?;
    let n = args.usize_or("n", 32)?;
    let params = machine(args)?;
    let pattern = irregular_pattern(args, n)?;
    let mut name = args.get("alg").unwrap_or("gs").to_string();
    if name == "auto" {
        let stats = PatternStats::of(&pattern, &FatTree::new(n));
        let rec = advise_print(&Workload::Irregular(stats), &params, n);
        name = match rec.algorithm {
            Algorithm::Irregular(IrregularAlg::Ls) => "ls".into(),
            Algorithm::Irregular(IrregularAlg::Ps) => "ps".into(),
            Algorithm::Irregular(IrregularAlg::Bs) => "bs".into(),
            Algorithm::Irregular(IrregularAlg::Gs) => "gs".into(),
            other => return Err(format!("advisor returned non-irregular pick {other}")),
        };
    }
    let schedule = match name.as_str() {
        "ls" => ls(&pattern),
        "ps" => ps(&pattern),
        "bs" => bs(&pattern),
        "gs" => gs(&pattern),
        "crystal" => crystal(&pattern),
        other => {
            return Err(format!(
                "unknown --alg '{other}' (ls|ps|bs|gs|crystal|auto)"
            ))
        }
    };
    println!(
        "{name} scheduling, {n} nodes, pattern density {:.0}%, avg msg {:.0} B",
        pattern.density() * 100.0,
        pattern.avg_msg_bytes()
    );
    if args.has("render") {
        println!("{}", render_schedule(&schedule, &FatTree::new(n)));
    }
    let report = run_lowered(&schedule, &params, args.has("async"))?;
    print_report(Some(&schedule), &report, n);
    Ok(())
}

fn cmd_workload(args: &Args) -> Result<(), String> {
    args.check_flags(&["name", "n", "machine", "rates"])?;
    let n = args.usize_or("n", 32)?;
    let params = machine(args)?;
    let name = args.get("name").unwrap_or("euler2k");
    let pattern = match name {
        "cg" => cm5_workloads::cg_pattern(n),
        "euler545" => cm5_workloads::euler_pattern(545, n),
        "euler2k" => cm5_workloads::euler_pattern(2048, n),
        "euler3k" => cm5_workloads::euler_pattern(3072, n),
        "euler9k" => cm5_workloads::euler_pattern(9216, n),
        other => {
            return Err(format!(
                "unknown --name '{other}' (cg|euler545|euler2k|euler3k|euler9k)"
            ))
        }
    };
    println!(
        "workload {name}: {n} nodes, density {:.0}%, avg msg {:.0} B",
        pattern.density() * 100.0,
        pattern.avg_msg_bytes()
    );
    println!("{:<10} {:>6} {:>12}", "scheduler", "steps", "makespan");
    for alg in IrregularAlg::ALL {
        let schedule = alg.schedule(&pattern);
        let report = run_schedule(&schedule, &params).map_err(|e| e.to_string())?;
        println!(
            "{:<10} {:>6} {:>12}",
            alg.name(),
            schedule.num_steps(),
            format!("{}", report.makespan)
        );
    }
    Ok(())
}

/// `cm5 advise` — price the candidates without simulating anything.
fn cmd_advise(args: &Args) -> Result<(), String> {
    args.check_flags(&[
        "n", "bytes", "density", "seed", "pattern", "name", "machine", "json",
    ])?;
    let n = args.usize_or("n", 32)?;
    let json = args.has("json");
    let params = machine(args)?;
    let family = args
        .positional
        .get(1)
        .map(String::as_str)
        .ok_or("advise needs a workload family: exchange | broadcast | irregular")?;
    let w = match family {
        "exchange" => Workload::Exchange {
            n,
            bytes: args.u64_or("bytes", 1024)?,
        },
        "broadcast" => Workload::Broadcast {
            n,
            bytes: args.u64_or("bytes", 1024)?,
        },
        "irregular" => {
            let pattern = match args.get("name") {
                Some("cg") => cm5_workloads::cg_pattern(n),
                Some("euler545") => cm5_workloads::euler_pattern(545, n),
                Some("euler2k") => cm5_workloads::euler_pattern(2048, n),
                Some("euler3k") => cm5_workloads::euler_pattern(3072, n),
                Some("euler9k") => cm5_workloads::euler_pattern(9216, n),
                Some(other) => {
                    return Err(format!(
                        "unknown --name '{other}' (cg|euler545|euler2k|euler3k|euler9k)"
                    ))
                }
                None => irregular_pattern(args, n)?,
            };
            if !json {
                println!(
                    "pattern    : {n} nodes, density {:.0}%, avg msg {:.0} B",
                    pattern.density() * 100.0,
                    pattern.avg_msg_bytes()
                );
            }
            Workload::Irregular(PatternStats::of(&pattern, &FatTree::new(n)))
        }
        other => {
            return Err(format!(
                "unknown advise family '{other}' (exchange | broadcast | irregular)"
            ))
        }
    };
    if json {
        // The `cm5-advise/1` document, shared with the serve subsystem.
        let rec = Advisor::recommend_uncached(&w, &params, &FatTree::new(n));
        println!("{}", cm5_serve::recommendation_json(&rec).render());
    } else {
        advise_print(&w, &params, n);
    }
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    use cm5_bench::sweep::{run_exchange_grid_jobs, run_irregular_grid_jobs, SweepRunner};
    args.check_flags(&["grid", "jobs", "sim-jobs"])?;
    let runner = SweepRunner::new(args.usize_or("jobs", 0)?);
    let sim_jobs = args.usize_or("sim-jobs", 1)?;
    match args.get("grid").unwrap_or("exchange") {
        "exchange" => {
            println!(
                "complete-exchange grid ({} worker threads, canonical order):",
                runner.jobs()
            );
            println!(
                "{:>10} {:>6} {:>8} {:>12} {:>9} {:>12}",
                "alg", "nodes", "bytes", "makespan_ms", "messages", "wire_bytes"
            );
            for (cell, r) in run_exchange_grid_jobs(&runner, sim_jobs) {
                println!(
                    "{:>10} {:>6} {:>8} {:>12.3} {:>9} {:>12}",
                    cell.alg.name(),
                    cell.n,
                    cell.bytes,
                    r.makespan.as_millis_f64(),
                    r.messages,
                    r.wire_bytes
                );
            }
        }
        "irregular" => {
            let densities = [0.1, 0.3, 0.5];
            let msgs = [16u64, 256, 1024];
            println!(
                "irregular synthetic grid, 32 nodes ({} worker threads, canonical order):",
                runner.jobs()
            );
            println!(
                "{:>10} {:>8} {:>8} {:>5} {:>12} {:>9}",
                "alg", "density", "msg", "seed", "makespan_ms", "messages"
            );
            for (cell, r) in run_irregular_grid_jobs(&runner, &densities, &msgs, sim_jobs) {
                println!(
                    "{:>10} {:>8.2} {:>8} {:>5} {:>12.3} {:>9}",
                    cell.alg.name(),
                    cell.density,
                    cell.msg,
                    cell.seed,
                    r.makespan.as_millis_f64(),
                    r.messages
                );
            }
        }
        other => {
            return Err(format!(
                "unknown --grid '{other}' (expected exchange | irregular)"
            ))
        }
    }
    Ok(())
}

/// `cm5 bench` — time the simulator itself (host cost, not simulated time)
/// and write the `BENCH_sim.json` artifact.
fn cmd_bench(args: &Args) -> Result<(), String> {
    use cm5_bench::perf;
    args.check_flags(&["quick", "json", "large", "no-oracle", "sim-jobs"])?;
    let quick = args.has("quick");
    let reps = if quick { 1 } else { 3 };
    // `--no-oracle` skips the reference-solver pass (and its makespan
    // cross-check) — for CI smoke runs that already pay for the oracle in
    // a separate differential gate.
    let oracle = !args.has("no-oracle");
    println!(
        "simulator performance suite ({reps} rep{} per grid, best run):",
        if reps == 1 { "" } else { "s" }
    );
    // `--large` adds the 1024/4096/16384-node hierarchical-solver cells
    // and the windowed-engine `par_*` cells at `--sim-jobs` workers
    // (seconds per cell in a release build; opt-in for that reason).
    let measurements = if args.has("large") {
        perf::run_perf_suite_opts(reps, oracle, args.usize_or("sim-jobs", 4)?)
    } else {
        perf::run_cases_opts(&perf::perf_cases(), reps, oracle)
    };
    println!(
        "{:>8} {:>6} {:>13} {:>11} {:>12} {:>10} {:>9}",
        "grid", "nodes", "solver", "wall ms", "events/sec", "cells/sec", "speedup"
    );
    for m in &measurements {
        println!(
            "{:>8} {:>6} {:>13} {:>11.3} {:>12.0} {:>10.1} {:>9}",
            m.name,
            m.n,
            m.solver,
            m.wall_secs * 1e3,
            m.events_per_sec,
            m.cells_per_sec,
            m.speedup_vs_oracle
                .map_or("n/a".to_string(), |s| format!("{s:.2}x")),
        );
    }
    let path = args.get("json").unwrap_or("BENCH_sim.json");
    std::fs::write(path, perf::to_json(&measurements, quick))
        .map_err(|e| format!("could not write {path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

/// One lint target: a named schedule plus the pattern it must conserve and
/// the policy its algorithm family promises.
struct LintTarget {
    name: String,
    schedule: Schedule,
    pattern: Option<Pattern>,
    opts: cm5_verify::VerifyOptions,
}

impl LintTarget {
    fn new(
        name: impl Into<String>,
        schedule: Schedule,
        pattern: Option<Pattern>,
        opts: cm5_verify::VerifyOptions,
    ) -> LintTarget {
        LintTarget {
            name: name.into(),
            schedule,
            pattern,
            opts,
        }
    }
}

/// The builtin matrix `cm5 lint --all` sweeps: every generator family at
/// several sizes and densities. CI runs this and fails on any error or
/// warning (contention advice is expected — that is the paper's point).
fn lint_all_targets(params: &MachineParams) -> Vec<LintTarget> {
    use cm5_verify::{broadcast_policy, exchange_policy, irregular_policy};
    let with_params = |mut o: cm5_verify::VerifyOptions| {
        o.params = params.clone();
        o
    };
    let mut targets = Vec::new();
    for alg in ExchangeAlg::ALL {
        for n in [4usize, 8, 32, 256] {
            targets.push(LintTarget::new(
                format!("{} n={n}", alg.name()),
                alg.schedule(n, 1024),
                Some(Pattern::complete_exchange(n, 1024)),
                with_params(exchange_policy(alg)),
            ));
        }
    }
    for n in [8usize, 32] {
        targets.push(LintTarget::new(
            format!("lib n={n}"),
            lib_linear(n, 0, 4096),
            None,
            with_params(broadcast_policy(BroadcastAlg::Linear)),
        ));
        targets.push(LintTarget::new(
            format!("reb n={n}"),
            reb(n, 0, 4096),
            None,
            with_params(broadcast_policy(BroadcastAlg::Recursive)),
        ));
    }
    for alg in IrregularAlg::ALL {
        for density in [0.10, 0.25, 0.50, 0.75] {
            let pattern = Pattern::seeded_random(32, density, 256, 0x7AB1E);
            targets.push(LintTarget::new(
                format!("{} n=32 density={:.0}%", alg.name(), density * 100.0),
                alg.schedule(&pattern),
                Some(pattern),
                with_params(irregular_policy(alg)),
            ));
        }
        let paper = Pattern::paper_pattern_p(256);
        targets.push(LintTarget::new(
            format!("{} n=8 pattern=paper", alg.name()),
            alg.schedule(&paper),
            Some(paper),
            with_params(irregular_policy(alg)),
        ));
    }
    let pattern = Pattern::seeded_random(32, 0.25, 256, 0x7AB1E);
    targets.push(LintTarget::new(
        "crystal n=32 density=25%",
        crystal(&pattern),
        Some(pattern),
        with_params(cm5_verify::VerifyOptions::default()),
    ));
    // Multi-tenant placements: two 8-node tenants running PEX inside one
    // 32-node machine, remapped by each placement policy. The merged
    // schedule must still pass step-disjointness (each global node appears
    // once per step) — but not the permutation lint, since only 16 of the
    // 32 shared nodes participate.
    for placement in [cm5_sim::Placement::Subtree, cm5_sim::Placement::Striped] {
        targets.push(LintTarget::new(
            format!("pex 2x8 tenants placement={}", placement.name()),
            tenant_merged_schedule(32, &[8, 8], placement),
            None,
            with_params(cm5_verify::VerifyOptions {
                expect_disjoint: true,
                ..cm5_verify::VerifyOptions::default()
            }),
        ));
    }
    targets
}

/// Remap one 8-node PEX schedule per tenant onto the shared machine and
/// merge the tenants step-wise — the schedule a multi-tenant run actually
/// presents to the network.
fn tenant_merged_schedule(
    shared_n: usize,
    sizes: &[usize],
    placement: cm5_sim::Placement,
) -> Schedule {
    let layout =
        cm5_sim::TenantLayout::new(shared_n, sizes, placement).expect("builtin tenant layout fits");
    let inners: Vec<Schedule> = sizes
        .iter()
        .map(|&size| ExchangeAlg::Pex.schedule(size, 1024))
        .collect();
    let steps = inners.iter().map(Schedule::num_steps).max().unwrap_or(0);
    let mut merged = Schedule::new(shared_n);
    for s in 0..steps {
        let mut ops = Vec::new();
        for (t, inner) in inners.iter().enumerate() {
            let Some(step) = inner.steps().get(s) else {
                continue;
            };
            for op in &step.ops {
                ops.push(match *op {
                    CommOp::Exchange {
                        a,
                        b,
                        bytes_ab,
                        bytes_ba,
                    } => {
                        // Striped remapping is not monotone: restore the
                        // lower-participant-first invariant after mapping.
                        let (ga, gb) = (layout.global_id(t, a), layout.global_id(t, b));
                        if ga <= gb {
                            CommOp::Exchange {
                                a: ga,
                                b: gb,
                                bytes_ab,
                                bytes_ba,
                            }
                        } else {
                            CommOp::Exchange {
                                a: gb,
                                b: ga,
                                bytes_ab: bytes_ba,
                                bytes_ba: bytes_ab,
                            }
                        }
                    }
                    CommOp::Send { from, to, bytes } => CommOp::Send {
                        from: layout.global_id(t, from),
                        to: layout.global_id(t, to),
                        bytes,
                    },
                });
            }
        }
        merged.push_step(Step { ops });
    }
    merged
}

/// `cm5 lint` — statically verify a schedule (deadlock freedom, byte
/// conservation, step shape, predicted contention) without simulating it.
fn cmd_lint(args: &Args) -> Result<(), String> {
    use cm5_verify::{
        broadcast_policy, exchange_policy, irregular_policy, verify_programs, verify_schedule,
    };
    args.check_flags(&[
        "alg",
        "n",
        "bytes",
        "density",
        "seed",
        "pattern",
        "pattern-file",
        "root",
        "machine",
        "all",
        "json",
        "sarif",
        "certify",
        "async",
        "inject",
    ])?;
    let params = machine(args)?;
    let json = args.has("json");
    let sarif = args.has("sarif");
    if sarif && !json {
        return Err("--sarif requires --json (it replaces the JSON rendering)".into());
    }

    if args.has("all") {
        if args.has("certify") {
            return Err(
                "--certify applies to a single target; the full-grid check is \
                 `cargo run --release -p cm5-bench --bin report -- certify`"
                    .into(),
            );
        }
        let targets = lint_all_targets(&params);
        let mut dirty = 0usize;
        let mut rows = Vec::new();
        let mut reports = Vec::new();
        for t in &targets {
            let report = verify_schedule(&t.schedule, t.pattern.as_ref(), &t.opts);
            let clean = report.is_clean();
            if !clean {
                dirty += 1;
            }
            if sarif {
                reports.push((t.name.clone(), report));
            } else if json {
                rows.push(format!(
                    "{{\"target\":\"{}\",\"report\":{}}}",
                    t.name,
                    report.render_json()
                ));
            } else {
                println!(
                    "{} {:<28} {}",
                    if clean { "ok  " } else { "FAIL" },
                    t.name,
                    report.summary()
                );
                if !clean {
                    print!("{}", report.render_human());
                }
            }
        }
        if sarif {
            let refs: Vec<(String, &cm5_verify::Diagnostics)> =
                reports.iter().map(|(n, r)| (n.clone(), r)).collect();
            println!("{}", cm5_verify::render_sarif(&refs));
        } else if json {
            println!("{{\"targets\":[{}],\"dirty\":{dirty}}}", rows.join(","));
        } else {
            println!("{} targets, {} dirty", targets.len(), dirty);
        }
        return if dirty == 0 {
            Ok(())
        } else {
            Err(format!("{dirty} schedule(s) failed verification"))
        };
    }

    // Single target: build (schedule, pattern, policy) from the algorithm
    // family, mirroring the exchange/broadcast/irregular commands.
    let n = args.usize_or("n", 32)?;
    let bytes = args.u64_or("bytes", 1024)?;
    let name = args.get("alg").unwrap_or("bex");
    let (schedule, pattern, mut opts) = match name {
        "lex" | "pex" | "rex" | "bex" => {
            let alg = match name {
                "lex" => ExchangeAlg::Lex,
                "pex" => ExchangeAlg::Pex,
                "rex" => ExchangeAlg::Rex,
                _ => ExchangeAlg::Bex,
            };
            (
                alg.schedule(n, bytes),
                Some(Pattern::complete_exchange(n, bytes)),
                exchange_policy(alg),
            )
        }
        "lib" | "reb" => {
            let root = args.usize_or("root", 0)?;
            let schedule = if name == "lib" {
                lib_linear(n, root, bytes)
            } else {
                reb(n, root, bytes)
            };
            (schedule, None, broadcast_policy(BroadcastAlg::Recursive))
        }
        "ls" | "ps" | "bs" | "gs" | "crystal" => {
            let pattern = match args.get("pattern-file") {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("could not read {path}: {e}"))?;
                    Pattern::parse_text(&text)?
                }
                None => irregular_pattern(args, n)?,
            };
            let (schedule, opts) = match name {
                "ls" => (ls(&pattern), irregular_policy(IrregularAlg::Ls)),
                "ps" => (ps(&pattern), irregular_policy(IrregularAlg::Ps)),
                "bs" => (bs(&pattern), irregular_policy(IrregularAlg::Bs)),
                "gs" => (gs(&pattern), irregular_policy(IrregularAlg::Gs)),
                _ => (crystal(&pattern), cm5_verify::VerifyOptions::default()),
            };
            (schedule, Some(pattern), opts)
        }
        other => {
            return Err(format!(
                "unknown --alg '{other}' (lex|pex|rex|bex|lib|reb|ls|ps|bs|gs|crystal)"
            ))
        }
    };
    opts.params = params;
    opts.lower.async_sends = args.has("async");

    let report = match args.get("inject") {
        Some(kind) => {
            // Demo mode: break the lowered programs on purpose and show the
            // verifier catching it (EXPERIMENTS.md transcripts).
            let mut programs = lower_with(&schedule, &opts.lower);
            let desc = cm5_verify::mutate::inject_demo(&mut programs, kind)
                .ok_or_else(|| format!("unknown --inject '{kind}' (swap-order|drop-recv|retag)"))?;
            if !json {
                println!("injected   : {desc}");
            }
            verify_programs(&programs)
        }
        None => verify_schedule(&schedule, pattern.as_ref(), &opts),
    };

    if sarif {
        println!(
            "{}",
            cm5_verify::render_sarif(&[(format!("{name} n={}", schedule.n()), &report)])
        );
    } else if json {
        println!("{}", report.render_json());
    } else {
        println!(
            "lint {name}: {} nodes, {} steps — {}",
            schedule.n(),
            schedule.num_steps(),
            report.summary()
        );
        print!("{}", report.render_human());
    }
    if args.has("certify") {
        let cert = cm5_verify::certify_schedule(&schedule, &opts.lower, &opts.params)
            .map_err(|e| e.to_string())?;
        if json {
            println!("{}", cert.render_json());
        } else {
            println!(
                "certify    : makespan in [{}, {}], tightness {:.2}",
                cert.lb,
                cert.ub,
                cert.tightness()
            );
        }
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "schedule failed verification: {}",
            report.summary()
        ))
    }
}

/// `cm5 certify` — compute a certified makespan interval `[LB, UB]` and
/// static buffer-occupancy bounds for one schedule, optionally
/// cross-checked against a simulation (`--sim-check`) — or, with
/// `--model-check`, exhaustively enumerate the windowed engine's cursor
/// protocol interleavings and gate on merge-order determinism.
fn cmd_certify(args: &Args) -> Result<(), String> {
    args.check_flags(&[
        "alg",
        "n",
        "bytes",
        "density",
        "seed",
        "pattern",
        "pattern-file",
        "root",
        "machine",
        "rates",
        "async",
        "json",
        "steps",
        "sim-check",
        "budget-eager",
        "budget-pending",
        "model-check",
    ])?;
    let json = args.has("json");

    if args.has("model-check") {
        let good = cm5_sim::check_cursor_protocol(3);
        let racy = cm5_sim::check_racy_shared_node(2);
        if json {
            println!(
                "{{{},\"disjoint\":{{\"states\":{},\"terminals\":{},\"outcomes\":{},\"deterministic\":{}}},\
                 \"racy\":{{\"states\":{},\"terminals\":{},\"outcomes\":{},\"deterministic\":{}}}}}",
                cm5_obs::schema_field("modelcheck", 1),
                good.states,
                good.terminals,
                good.outcomes,
                good.deterministic(),
                racy.states,
                racy.terminals,
                racy.outcomes,
                racy.deterministic(),
            );
        } else {
            println!(
                "cursor protocol, disjoint ownership: {} states, {} terminal, {} outcome(s) — {}",
                good.states,
                good.terminals,
                good.outcomes,
                if good.deterministic() {
                    "deterministic"
                } else {
                    "DIVERGENT"
                }
            );
            println!(
                "cursor protocol, racy shared node  : {} states, {} terminal, {} outcome(s) — {}",
                racy.states,
                racy.terminals,
                racy.outcomes,
                if racy.deterministic() {
                    "race NOT detected"
                } else {
                    "race detected (expected)"
                }
            );
        }
        if !good.deterministic() {
            return Err("windowed-engine cursor protocol diverged under disjoint ownership".into());
        }
        if racy.deterministic() {
            return Err(
                "the racy fixture produced one outcome — the checker failed to detect races".into(),
            );
        }
        return Ok(());
    }

    let params = machine(args)?;
    let schedule = trace_schedule(args)?;
    let opts = LowerOptions {
        async_sends: args.has("async"),
        ..Default::default()
    };
    let meta = cm5_core::exec::lower_annotated(&schedule, &opts);
    let cert = cm5_verify::certify_meta(&meta, &params).map_err(|e| e.to_string())?;
    let bounds = cm5_verify::occupancy_bounds(&meta.programs, &params);

    if json {
        println!("{}", cert.render_json());
    } else {
        println!(
            "certify {}: {} nodes, {} steps, {} messages",
            args.get("alg").unwrap_or("bex"),
            schedule.n(),
            schedule.num_steps(),
            cert.messages
        );
        println!(
            "interval   : [{}, {}]  tightness {:.2}",
            cert.lb,
            cert.ub,
            cert.tightness()
        );
        println!(
            "evidence   : critical path {}, link drain {}, slack {}",
            cert.critical_path, cert.link_bound, cert.slack
        );
        if let Some(b) = &cert.bottleneck {
            println!(
                "bottleneck : level {} group {} {}, {} concurrent flows, {} wire B over {:.0} MB/s",
                b.level,
                b.group,
                if b.up { "up" } else { "down" },
                b.concurrency,
                b.load_bytes,
                b.capacity / 1e6
            );
        }
        println!(
            "occupancy  : eager <= {} B/node, pending <= {} B/node",
            bounds.max_eager(),
            bounds.max_pending()
        );
        if args.has("steps") {
            for (s, t) in cert.step_finish.iter().enumerate() {
                println!("step {s:>2}    : done by {t}");
            }
        }
    }

    let parse_budget = |flag: &str| -> Result<Option<u64>, String> {
        match args.get(flag) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{flag} expects bytes, got '{v}'")),
        }
    };
    let budget = cm5_verify::OccupancyBudget {
        eager_bytes: parse_budget("budget-eager")?,
        pending_bytes: parse_budget("budget-pending")?,
    };
    let occ = bounds.diagnose(&budget);
    if !occ.is_empty() && !json {
        print!("{}", occ.render_human());
    }

    if args.has("sim-check") {
        let report = Simulation::new(schedule.n(), params.clone())
            .run_ops(&meta.programs)
            .map_err(|e| e.to_string())?;
        if !cert.contains(report.makespan) {
            return Err(format!(
                "containment violated: simulated {} outside [{}, {}]",
                report.makespan, cert.lb, cert.ub
            ));
        }
        let static_bound = bounds.sim_bound();
        for (node, &peak) in report.buffer_peak.iter().enumerate() {
            if peak > static_bound[node] {
                return Err(format!(
                    "occupancy violated: node {node} buffered {peak} B, static bound {} B",
                    static_bound[node]
                ));
            }
        }
        if !json {
            println!(
                "sim-check  : simulated {} inside the interval; peak buffer {} B <= bound",
                report.makespan,
                report.buffer_peak.iter().max().copied().unwrap_or(0)
            );
        }
    }

    if occ.is_clean() {
        Ok(())
    } else {
        Err(format!("occupancy budget exceeded: {}", occ.summary()))
    }
}

/// Build the schedule a trace run will observe, mirroring `cm5 lint`'s
/// single-target construction (same `--alg` vocabulary).
fn trace_schedule(args: &Args) -> Result<Schedule, String> {
    let n = args.usize_or("n", 32)?;
    let bytes = args.u64_or("bytes", 1024)?;
    let name = args.get("alg").unwrap_or("bex");
    match name {
        "lex" => Ok(ExchangeAlg::Lex.schedule(n, bytes)),
        "pex" => Ok(ExchangeAlg::Pex.schedule(n, bytes)),
        "rex" => Ok(ExchangeAlg::Rex.schedule(n, bytes)),
        "bex" => Ok(ExchangeAlg::Bex.schedule(n, bytes)),
        "lib" => Ok(lib_linear(n, args.usize_or("root", 0)?, bytes)),
        "reb" => Ok(reb(n, args.usize_or("root", 0)?, bytes)),
        "ls" | "ps" | "bs" | "gs" | "crystal" => {
            let pattern = match args.get("pattern-file") {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("could not read {path}: {e}"))?;
                    Pattern::parse_text(&text)?
                }
                None => irregular_pattern(args, n)?,
            };
            Ok(match name {
                "ls" => ls(&pattern),
                "ps" => ps(&pattern),
                "bs" => bs(&pattern),
                "gs" => gs(&pattern),
                _ => crystal(&pattern),
            })
        }
        other => Err(format!(
            "unknown --alg '{other}' (lex|pex|rex|bex|lib|reb|ls|ps|bs|gs|crystal)"
        )),
    }
}

/// `cm5 trace` — run one schedule with the trace and rate sinks enabled and
/// export/render the observability views.
fn cmd_trace(args: &Args) -> Result<(), String> {
    args.check_flags(&[
        "alg",
        "n",
        "bytes",
        "density",
        "seed",
        "pattern",
        "pattern-file",
        "root",
        "machine",
        "rates",
        "topology",
        "async",
        "out",
        "timeline",
        "links",
        "json",
        "width",
    ])?;
    let params = machine(args)?;
    let schedule = trace_schedule(args)?;
    let n = schedule.n();
    let width = args.usize_or("width", 64)?;
    let topo = topology(args, n)?;
    let programs = lower_with(
        &schedule,
        &LowerOptions {
            async_sends: args.has("async"),
            ..Default::default()
        },
    );
    let report = Simulation::new_on(topo.clone(), params.clone())
        .record_trace(true)
        .record_rates(true)
        .run_ops(&programs)
        .map_err(|e| e.to_string())?;
    let spans = cm5_obs::SpanStore::from_report(&report);
    let metrics = cm5_obs::Metrics::from_spans(&report, &spans);

    if let Some(path) = args.get("out") {
        let json = cm5_obs::chrome_trace_from_spans(&spans, &report, &topo, &params);
        std::fs::write(path, json).map_err(|e| format!("could not write {path}: {e}"))?;
        println!("wrote {path} (load in Perfetto / chrome://tracing)");
    }
    if args.has("json") {
        println!("{}", metrics.to_json());
        return Ok(());
    }

    println!(
        "trace {}: {n} nodes, {} steps",
        args.get("alg").unwrap_or("bex"),
        schedule.num_steps()
    );
    print_report(Some(&schedule), &report, n);
    println!(
        "spans      : {} messages, {} blocked, {} collectives, {} steps, {} solver recomputes",
        spans.messages.len(),
        spans.blocked.len(),
        spans.collectives.len(),
        spans.steps.len(),
        spans.solver_events.len()
    );
    if report.trace_dropped > 0 {
        println!("trace ring : {} events dropped", report.trace_dropped);
    }
    let latency = &metrics.histograms["message_latency_ns"];
    println!(
        "latency    : mean {:.1} us, max {:.1} us over {} messages",
        latency.mean() / 1e3,
        latency.max as f64 / 1e3,
        latency.count
    );
    if args.has("timeline") {
        print!("{}", cm5_obs::render_timeline(&spans, n, width));
    }
    if args.has("links") {
        let usage = cm5_obs::link_usage(&report.rate_samples, &topo, &params);
        print!("{}", cm5_obs::render_sparklines(&usage, width));
        if let Some(hot) = usage.hottest() {
            println!(
                "hot link   : link {} (level {}) peaked at {:.0}% of {:.0} MB/s at {}",
                hot.link,
                hot.level,
                hot.utilization() * 100.0,
                hot.capacity / 1e6,
                hot.at
            );
        }
    }
    Ok(())
}

/// `cm5 serve` — the long-running scheduling service: JSON-lines queries
/// on stdin (and optionally TCP), trace recording, and trace replay with
/// a measured-QPS gate.
fn cmd_serve(args: &Args) -> Result<(), String> {
    use cm5_bench::querygen::{generate_trace, TraceMix};
    use cm5_serve::{replay, resolve_jobs, Service, ServiceConfig};

    args.check_flags(&[
        "record",
        "queries",
        "seed",
        "mix",
        "replay",
        "qps",
        "jobs",
        "shards",
        "sim-jobs",
        "out",
        "metrics-json",
        "timing-json",
        "bench-json",
        "baseline",
        "tcp",
        "machine",
        "rates",
        "spans-out",
        "trace-out",
        "metrics-out",
        "flight-dir",
        "flight-cap",
        "slo-ms",
        "trace-ring",
    ])?;

    // Record mode: write a deterministic query trace and exit.
    if let Some(path) = args.get("record") {
        let mix = TraceMix::parse(args.get("mix").unwrap_or("mixed"))?;
        let queries = args.usize_or("queries", 256)?;
        let seed = args.u64_or("seed", 1)?;
        let trace = generate_trace(mix, queries, seed);
        std::fs::write(path, &trace).map_err(|e| format!("could not write {path}: {e}"))?;
        println!(
            "wrote {path}: {queries} '{}' queries, seed {seed}",
            mix.name()
        );
        return Ok(());
    }

    let params = machine(args)?;
    let shards = args.usize_or("shards", 8)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let sim_jobs = args.usize_or("sim-jobs", 1)?.max(1);
    let trace_ring = match args.get("trace-ring") {
        Some(_) => Some(args.usize_or("trace-ring", 0)?),
        None => None,
    };
    let flight_slo_ms = match args.get("slo-ms") {
        Some(_) => Some(args.u64_or("slo-ms", 0)?),
        None => None,
    };
    let service = Service::new(ServiceConfig {
        params,
        shards,
        sim_jobs,
        trace_ring,
        flight_capacity: args.usize_or("flight-cap", 64)?,
        flight_slo_ms,
        flight_dir: args.get("flight-dir").map(std::path::PathBuf::from),
    });

    // Replay mode: drive a recorded trace through the worker pool and
    // report sustained QPS (optionally gated against a baseline floor).
    if let Some(path) = args.get("replay") {
        let trace =
            std::fs::read_to_string(path).map_err(|e| format!("could not read {path}: {e}"))?;
        let jobs = args.usize_or("jobs", 0)?;
        let qps_target = match args.get("qps") {
            None => None,
            Some(_) => Some(args.f64_or("qps", 0.0)?).filter(|q| *q > 0.0),
        };
        let result = replay(&service, &trace, jobs, qps_target);
        let metrics = service.metrics();
        let hit_rate = metrics
            .gauges
            .get("advisor_cache_hit_rate")
            .copied()
            .unwrap_or(0.0);
        println!(
            "replayed {} requests on {} workers in {:.3} s: {:.0} queries/sec",
            result.requests,
            resolve_jobs(jobs),
            result.wall_secs,
            result.qps()
        );
        println!(
            "cache      : {:.0}% advisor hit rate over {} shards, {} verify memo entries",
            hit_rate * 100.0,
            shards,
            metrics
                .counters
                .get("verify_memo_entries")
                .copied()
                .unwrap_or(0)
        );
        if let Some(out) = args.get("out") {
            let mut text = result.responses.join("\n");
            text.push('\n');
            std::fs::write(out, text).map_err(|e| format!("could not write {out}: {e}"))?;
            println!("wrote {out} ({} response lines)", result.requests);
        }
        if let Some(mpath) = args.get("metrics-json") {
            std::fs::write(mpath, metrics.to_json())
                .map_err(|e| format!("could not write {mpath}: {e}"))?;
            println!("wrote {mpath}");
        }
        if let Some(spath) = args.get("spans-out") {
            std::fs::write(spath, cm5_obs::spans_json(&result.spans))
                .map_err(|e| format!("could not write {spath}: {e}"))?;
            println!("wrote {spath} ({} query spans)", result.spans.len());
        }
        if let Some(tpath) = args.get("trace-out") {
            std::fs::write(tpath, cm5_obs::spans_chrome_trace(&result.spans))
                .map_err(|e| format!("could not write {tpath}: {e}"))?;
            println!("wrote {tpath} (load in Perfetto / chrome://tracing)");
        }
        if let Some(lpath) = args.get("metrics-out") {
            std::fs::write(lpath, service.live_metrics().to_json())
                .map_err(|e| format!("could not write {lpath}: {e}"))?;
            println!("wrote {lpath} (live snapshot; wall-clock, not diffable)");
        }
        if let Some(tpath) = args.get("timing-json") {
            let extra = vec![
                (
                    "wall_secs".to_string(),
                    cm5_serve::Json::num(result.wall_secs),
                ),
                ("qps".to_string(), cm5_serve::Json::num(result.qps())),
            ];
            std::fs::write(tpath, service.timing_json(&extra))
                .map_err(|e| format!("could not write {tpath}: {e}"))?;
            println!("wrote {tpath}");
        }
        if let Some(bpath) = args.get("bench-json") {
            merge_serve_cell(bpath, &result, resolve_jobs(jobs))?;
            println!("merged serve_replay cell into {bpath}");
        }
        if let Some(bl) = args.get("baseline") {
            let text =
                std::fs::read_to_string(bl).map_err(|e| format!("could not read {bl}: {e}"))?;
            let floors = cm5_bench::perf::parse_baseline(&text);
            if let Some((_, floor)) = floors.iter().find(|(name, _)| name == "serve_replay") {
                if result.qps() < *floor {
                    return Err(format!(
                        "perf gate: serve_replay sustained {:.0} qps, floor is {floor:.0}",
                        result.qps()
                    ));
                }
                println!("perf gate  : {:.0} qps >= floor {floor:.0}", result.qps());
            } else {
                println!("perf gate  : no serve_replay floor in {bl}, skipping");
            }
        }
        return Ok(());
    }

    // Interactive service: optional TCP listener plus a stdin/stdout
    // JSON-lines loop; EOF on stdin shuts everything down.
    let service = std::sync::Arc::new(service);
    let tcp = match args.get("tcp") {
        Some(addr) => {
            let handle = cm5_serve::spawn_tcp(service.clone(), addr)
                .map_err(|e| format!("could not listen on {addr}: {e}"))?;
            eprintln!("listening on {}", handle.addr);
            Some(handle)
        }
        None => None,
    };
    // `--metrics-out` in interactive mode: a background thread rewrites
    // the live snapshot every second, and a final flush after shutdown
    // (post-TCP-join, so the last write sees every request) makes the file
    // trustworthy even after a crash-adjacent exit.
    let metrics_out = args.get("metrics-out").map(str::to_string);
    let snap_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let snapshotter = metrics_out.clone().map(|path| {
        let service = service.clone();
        let stop = snap_stop.clone();
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                let _ = std::fs::write(&path, service.live_metrics().to_json());
                for _ in 0..10 {
                    if stop.load(std::sync::atomic::Ordering::SeqCst) {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(100));
                }
            }
        })
    });
    use std::io::{BufRead as _, Write as _};
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        writeln!(out, "{}", service.handle_line(&line)).map_err(|e| format!("stdout: {e}"))?;
        out.flush().map_err(|e| format!("stdout: {e}"))?;
    }
    if let Some(handle) = tcp {
        handle.shutdown();
    }
    snap_stop.store(true, std::sync::atomic::Ordering::SeqCst);
    if let Some(t) = snapshotter {
        let _ = t.join();
    }
    if let Some(path) = &metrics_out {
        std::fs::write(path, service.live_metrics().to_json())
            .map_err(|e| format!("could not write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    // Interactive exports cover the flight ring (the last `--flight-cap`
    // queries); replay mode exports the full span set instead.
    if let Some(spath) = args.get("spans-out") {
        std::fs::write(spath, cm5_obs::spans_json(&service.recent_spans()))
            .map_err(|e| format!("could not write {spath}: {e}"))?;
        eprintln!("wrote {spath}");
    }
    if let Some(tpath) = args.get("trace-out") {
        std::fs::write(tpath, cm5_obs::spans_chrome_trace(&service.recent_spans()))
            .map_err(|e| format!("could not write {tpath}: {e}"))?;
        eprintln!("wrote {tpath}");
    }
    Ok(())
}

/// Append a `serve_replay` cell to a `BENCH_sim.json` grids array (creating
/// the file if missing) so the service's sustained QPS lands in the same
/// artifact as the simulator host-cost suite. `events_per_sec` doubles as
/// the queries/sec figure, which is what the baseline gate reads.
fn merge_serve_cell(
    path: &str,
    result: &cm5_serve::ReplayResult,
    jobs: usize,
) -> Result<(), String> {
    use cm5_serve::Json;
    let doc = match std::fs::read_to_string(path) {
        Ok(text) => Json::parse(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))?,
        Err(_) => Json::Obj(vec![
            (
                cm5_obs::SCHEMA_KEY.to_string(),
                Json::str(cm5_obs::schema_id("bench-sim-perf", 3)),
            ),
            ("quick".to_string(), Json::Bool(false)),
            ("grids".to_string(), Json::Arr(Vec::new())),
        ]),
    };
    let Json::Obj(mut fields) = doc else {
        return Err(format!("{path} is not a JSON object"));
    };
    let grids = fields
        .iter_mut()
        .find(|(k, _)| k == "grids")
        .ok_or_else(|| format!("{path} has no grids array"))?;
    let Json::Arr(cells) = &mut grids.1 else {
        return Err(format!("{path} grids is not an array"));
    };
    cells.retain(|c| c.get("name").and_then(Json::as_str) != Some("serve_replay"));
    cells.push(Json::Obj(vec![
        ("name".to_string(), Json::str("serve_replay")),
        ("nodes".to_string(), Json::int(0)),
        ("solver".to_string(), Json::str("service")),
        ("reps".to_string(), Json::int(1)),
        ("wall_secs".to_string(), Json::num(result.wall_secs)),
        ("events".to_string(), Json::int(result.requests as u64)),
        ("events_per_sec".to_string(), Json::num(result.qps())),
        ("jobs".to_string(), Json::int(jobs as u64)),
    ]));
    std::fs::write(path, Json::Obj(fields).render()).map_err(|e| format!("write {path}: {e}"))
}

const USAGE: &str = "\
cm5 — schedule and simulate CM-5 communication patterns

USAGE:
  cm5 exchange  [--alg lex|pex|rex|bex|auto] [-n N] [--bytes B] [--machine 1992|vector|buffered]
                [--topology fat-tree|hypercube] [--async] [--render] [--sim-jobs N]
  cm5 broadcast [--alg lib|reb|system|auto] [-n N] [--bytes B] [--root R]
  cm5 irregular [--alg ls|ps|bs|gs|crystal|auto] [-n N] [--density D] [--bytes B] [--seed S] [--pattern paper] [--render]
  cm5 workload  [--name cg|euler545|euler2k|euler3k|euler9k] [-n N]
  cm5 advise    exchange|broadcast|irregular [-n N] [--bytes B] [--density D] [--name W]
  cm5 sweep     [--grid exchange|irregular] [--jobs N] [--sim-jobs N]   (0 = one worker per core)
  cm5 lint      [--alg lex|..|bex|lib|reb|ls|..|gs|crystal] [-n N] [--bytes B] [--density D]
                [--seed S] [--pattern paper] [--pattern-file PATH] [--all] [--json] [--sarif]
                [--certify] [--async] [--inject swap-order|drop-recv|retag]
  cm5 certify   [--alg lex|..|bex|lib|reb|ls|..|gs|crystal] [-n N] [--bytes B] [--density D]
                [--seed S] [--pattern paper] [--pattern-file PATH] [--async] [--json] [--steps]
                [--sim-check] [--budget-eager B] [--budget-pending B]
  cm5 certify   --model-check [--json]
  cm5 bench     [--quick] [--large] [--no-oracle] [--sim-jobs N] [--json PATH]
                (simulator host-cost suite -> BENCH_sim.json; --large adds the
                1024/4096/16384-node hierarchical cells and the windowed-engine
                par_* cells; --no-oracle skips the reference-solver pass)
  cm5 trace     [--alg lex|..|bex|lib|reb|ls|..|gs|crystal] [-n N] [--bytes B] [--density D]
                [--seed S] [--pattern paper] [--pattern-file PATH] [--out trace.json]
                [--timeline] [--links] [--json] [--width W] [--async]
  cm5 serve     [--tcp ADDR] [--shards N] [--sim-jobs N] [--machine M]  (JSON-lines on stdin/stdout)
  cm5 serve     --record PATH [--queries K] [--seed S] [--mix advise|mixed]
  cm5 serve     --replay PATH [--qps N] [--jobs N] [--shards N] [--out PATH]
                [--metrics-json PATH] [--timing-json PATH] [--bench-json PATH] [--baseline PATH]
                [--spans-out PATH] [--trace-out PATH] [--metrics-out PATH]
                [--flight-dir DIR] [--flight-cap N] [--slo-ms MS] [--trace-ring N]

`--alg auto` asks the cm5-model cost models to pick; `cm5 advise` prints
the prediction table without running the simulator.
`cm5 lint` statically verifies a schedule before it runs: CMMD deadlock
analysis, byte conservation against the pattern, step-shape lints, and
predicted fat-tree hotspots. `--all` sweeps every builtin generator
(the CI gate, including the multi-tenant Subtree/Striped placements);
`--inject` deliberately breaks the lowered programs to demonstrate a
finding. `--json --sarif` renders the findings as a SARIF 2.1.0 log for
code-review tooling; `--certify` appends a certified makespan interval.
`cm5 certify` statically computes a makespan interval [LB, UB] plus
per-node buffer-occupancy bounds from the lowered programs alone:
`--sim-check` runs the simulator and fails unless the measured makespan
lands inside the interval and measured peak buffering stays under the
static bound; `--budget-eager`/`--budget-pending` gate the bounds
against a byte budget (V040/V041); `--steps` prints the per-step
critical-path transcript; `--model-check` instead exhaustively
enumerates the windowed engine's shared-cursor interleavings (2-worker
model, atomic-step granularity) and fails on any merge-order divergence.
`cm5 serve` runs the scheduling service: one JSON request per line
(`{\"id\":1,\"query\":{\"kind\":\"exchange\",\"n\":32,\"bytes\":1024},\"verify\":true}`),
one schema-stamped response line back. `--record` writes a deterministic
query trace, `--replay` drives one through a worker pool and reports
sustained queries/sec (`--baseline` gates it, `--bench-json` merges the
cell into BENCH_sim.json). `cm5 advise --json` prints the same
`cm5-advise/1` document the service returns.
Service telemetry: every query carries a request span with typed child
phases (parse, advise-hit/miss, verify, simulate, render). `--spans-out`
writes the canonical `cm5-serve-spans/1` document (deterministic: byte-
identical at any --jobs), `--trace-out` the `cm5-serve-trace/1` Chrome
trace (one track per worker), `--metrics-out` live JSON snapshots
(rewritten every second under `--tcp`, final flush at shutdown; wall-
clock, never diffed). `GET /metrics` on the `--tcp` listener serves
Prometheus text. The flight recorder keeps the last `--flight-cap`
spanned queries; erroring (and, with `--slo-ms`, slow) queries dump
deterministic `cm5-flight/1` files into `--flight-dir`. `--trace-ring N`
bounds each simulation's event ring; overflow counts surface as the
deterministic `sim_trace_dropped` counter.
`cm5 trace` reruns one schedule with the trace and rate sinks on and
exports the observability views: `--out` writes Chrome Trace Format JSON
(Perfetto / chrome://tracing), `--timeline` draws a per-node Gantt chart,
`--links` draws per-level utilization sparklines, `--json` prints the
metrics registry. Simulated results are bit-identical with tracing on.
Simulating commands also take `--rates full|incremental|hierarchical`
to select the network rate solver (`full` = the original per-admission
recompute, kept as an ablation/differential-testing oracle;
`hierarchical` = subtree-dirty recompute for large fat trees; results
are bit-identical across all three). `--sim-jobs N` runs each simulation
on the windowed parallel engine with N workers (1 = serial engine,
0 = one per core); reports are bit-identical at any worker count, so it
is purely a wall-clock knob for large runs.

The full paper evaluation: cargo run --release -p cm5-bench --bin report
";

fn dispatch(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw);
    match args.positional.first().map(String::as_str) {
        Some("exchange") => cmd_exchange(&args),
        Some("broadcast") => cmd_broadcast(&args),
        Some("irregular") => cmd_irregular(&args),
        Some("workload") => cmd_workload(&args),
        Some("advise") => cmd_advise(&args),
        Some("sweep") => cmd_sweep(&args),
        Some("lint") => cmd_lint(&args),
        Some("certify") => cmd_certify(&args),
        Some("bench") => cmd_bench(&args),
        Some("trace") => cmd_trace(&args),
        Some("serve") => cmd_serve(&args),
        Some(other) => Err(format!("unknown command '{other}'\n\n{USAGE}")),
        None => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    // Accept both `-n 32` and `--n 32` by normalizing.
    let raw: Vec<String> = std::env::args()
        .skip(1)
        .map(|a| if a == "-n" { "--n".to_string() } else { a })
        .collect();
    match dispatch(&raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|w| w.to_string()).collect()
    }

    #[test]
    fn arg_parsing() {
        let a = Args::parse(&argv("exchange --alg bex --n 32 --render --bytes 1024"));
        assert_eq!(a.positional, vec!["exchange"]);
        assert_eq!(a.get("alg"), Some("bex"));
        assert_eq!(a.usize_or("n", 8).unwrap(), 32);
        assert!(a.has("render"));
        assert_eq!(a.u64_or("bytes", 0).unwrap(), 1024);
        assert_eq!(a.usize_or("missing", 7).unwrap(), 7);
    }

    #[test]
    fn commands_run_end_to_end() {
        dispatch(&argv("exchange --alg pex --n 8 --bytes 64")).unwrap();
        dispatch(&argv(
            "exchange --alg rex --n 8 --bytes 64 --machine vector",
        ))
        .unwrap();
        dispatch(&argv("broadcast --alg system --n 8 --bytes 512")).unwrap();
        dispatch(&argv("irregular --alg gs --n 8 --pattern paper")).unwrap();
        dispatch(&argv("irregular --alg crystal --n 16 --density 0.3")).unwrap();
        dispatch(&argv("workload --name euler545 --n 8")).unwrap();
    }

    #[test]
    fn bad_inputs_are_reported() {
        assert!(dispatch(&argv("exchange --alg zzz")).is_err());
        assert!(dispatch(&argv("nonsense")).is_err());
        assert!(dispatch(&argv("exchange --n notanumber")).is_err());
        assert!(dispatch(&argv("irregular --pattern paper --n 16")).is_err());
        assert!(dispatch(&argv("sweep --grid torus")).is_err());
        assert!(dispatch(&argv("")).is_err());
    }

    #[test]
    fn bad_alg_and_machine_name_the_valid_values() {
        for cmd in ["exchange", "broadcast", "irregular"] {
            let err = dispatch(&argv(&format!("{cmd} --alg zzz --n 8"))).unwrap_err();
            assert!(err.contains("auto"), "{cmd}: {err}");
        }
        let err = dispatch(&argv("exchange --machine cm2 --n 8")).unwrap_err();
        assert!(err.contains("1992 | vector | buffered"), "{err}");
    }

    #[test]
    fn unknown_flags_are_rejected_with_the_valid_set() {
        let err = dispatch(&argv("exchange --n 8 --byte 64")).unwrap_err();
        assert!(err.contains("unknown flag '--byte'"), "{err}");
        assert!(err.contains("--bytes"), "{err}");
        assert!(err.contains("USAGE"), "{err}");
        assert!(dispatch(&argv("broadcast --n 8 --render")).is_err());
        assert!(dispatch(&argv("sweep --alg gs")).is_err());
        assert!(dispatch(&argv("advise exchange --root 3")).is_err());
    }

    #[test]
    fn sim_jobs_flag_is_accepted_where_it_simulates() {
        dispatch(&argv("exchange --alg pex --n 8 --bytes 64 --sim-jobs 2")).unwrap();
        dispatch(&argv("exchange --alg rex --n 8 --bytes 64 --sim-jobs 0")).unwrap();
        // Non-simulating commands reject it like any unknown flag.
        assert!(dispatch(&argv("advise exchange --n 8 --sim-jobs 2")).is_err());
        assert!(dispatch(&argv("exchange --n 8 --sim-jobs nope")).is_err());
    }

    #[test]
    fn auto_alg_runs_end_to_end() {
        dispatch(&argv("exchange --alg auto --n 8 --bytes 64")).unwrap();
        dispatch(&argv("broadcast --alg auto --n 8 --bytes 512")).unwrap();
        dispatch(&argv("irregular --alg auto --n 8 --density 0.3")).unwrap();
    }

    #[test]
    fn advise_commands_run() {
        dispatch(&argv("advise exchange --n 32 --bytes 1024")).unwrap();
        dispatch(&argv("advise broadcast --n 64 --bytes 4096")).unwrap();
        dispatch(&argv("advise irregular --n 32 --density 0.25 --bytes 256")).unwrap();
        dispatch(&argv("advise irregular --name euler545 --n 8")).unwrap();
        assert!(dispatch(&argv("advise")).is_err());
        assert!(dispatch(&argv("advise fft")).is_err());
        assert!(dispatch(&argv("advise irregular --name bogus")).is_err());
    }

    #[test]
    fn advise_json_emits_the_advise_document() {
        // Not asserting stdout content here (dispatch prints); just that
        // every family accepts --json and the flag is rejected elsewhere.
        dispatch(&argv("advise exchange --n 32 --bytes 1024 --json")).unwrap();
        dispatch(&argv("advise broadcast --n 16 --json")).unwrap();
        dispatch(&argv("advise irregular --n 16 --density 0.25 --json")).unwrap();
        assert!(dispatch(&argv("exchange --n 8 --json")).is_err());
    }

    #[test]
    fn serve_record_and_replay_round_trip() {
        let dir = std::env::temp_dir().join("cm5_cli_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.jsonl");
        let trace_s = trace.to_str().unwrap();
        dispatch(&argv(&format!(
            "serve --record {trace_s} --queries 20 --seed 3 --mix advise"
        )))
        .unwrap();
        let recorded = std::fs::read_to_string(&trace).unwrap();
        assert_eq!(recorded.lines().count(), 20);

        let out = dir.join("responses.jsonl");
        let bench = dir.join("bench.json");
        let spans = dir.join("spans.json");
        let chrome = dir.join("trace.json");
        let live = dir.join("live.json");
        let flights = dir.join("flights");
        dispatch(&argv(&format!(
            "serve --replay {trace_s} --jobs 2 --out {} --bench-json {} \
             --spans-out {} --trace-out {} --metrics-out {} --flight-dir {} --slo-ms 0",
            out.to_str().unwrap(),
            bench.to_str().unwrap(),
            spans.to_str().unwrap(),
            chrome.to_str().unwrap(),
            live.to_str().unwrap(),
            flights.to_str().unwrap(),
        )))
        .unwrap();
        let responses = std::fs::read_to_string(&out).unwrap();
        assert_eq!(responses.lines().count(), 20);
        assert!(responses.contains("\"ok\":true"));
        let merged = std::fs::read_to_string(&bench).unwrap();
        assert!(merged.contains("\"serve_replay\""));
        assert!(merged.contains("cm5-bench-sim-perf/3"));
        let spans = std::fs::read_to_string(&spans).unwrap();
        assert!(spans.contains("cm5-serve-spans/1"), "{spans}");
        assert_eq!(spans.matches("\"seq\"").count(), 20);
        let chrome = std::fs::read_to_string(&chrome).unwrap();
        assert!(chrome.contains("cm5-serve-trace/1"), "{chrome}");
        let live = std::fs::read_to_string(&live).unwrap();
        assert!(live.contains("\"uptime_secs\""), "{live}");
        // --slo-ms 0 trips the flight recorder on every query.
        assert_eq!(std::fs::read_dir(&flights).unwrap().count(), 20);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_flags_are_checked() {
        assert!(dispatch(&argv("serve --shards 0 --replay nope")).is_err());
        assert!(dispatch(&argv("serve --replya trace.jsonl")).is_err());
        assert!(dispatch(&argv("serve --record /tmp/t.jsonl --mix bogus")).is_err());
        assert!(dispatch(&argv("serve --replay /nonexistent/trace.jsonl")).is_err());
    }

    #[test]
    fn hypercube_topology_runs() {
        dispatch(&argv(
            "exchange --alg pex --n 16 --bytes 512 --topology hypercube",
        ))
        .unwrap();
        assert!(dispatch(&argv("exchange --topology torus")).is_err());
    }

    #[test]
    fn async_flag_changes_lex() {
        // Smoke: both paths run; the async one must not be slower.
        dispatch(&argv("exchange --alg lex --n 8 --bytes 128 --async")).unwrap();
    }

    #[test]
    fn rates_flag_selects_the_solver() {
        dispatch(&argv("exchange --alg pex --n 8 --bytes 64 --rates full")).unwrap();
        dispatch(&argv(
            "exchange --alg pex --n 8 --bytes 64 --rates incremental",
        ))
        .unwrap();
        dispatch(&argv(
            "exchange --alg pex --n 8 --bytes 64 --rates hierarchical",
        ))
        .unwrap();
        dispatch(&argv("irregular --alg gs --n 8 --density 0.3 --rates full")).unwrap();
        dispatch(&argv(
            "irregular --alg gs --n 8 --density 0.3 --rates hierarchical",
        ))
        .unwrap();
        let err = dispatch(&argv("exchange --n 8 --rates eventually")).unwrap_err();
        assert!(err.contains("full | incremental | hierarchical"), "{err}");
    }

    #[test]
    fn lint_passes_builtins_and_catches_injected_faults() {
        dispatch(&argv("lint --alg bex --n 32 --bytes 1024")).unwrap();
        dispatch(&argv("lint --alg lex --n 8 --json")).unwrap();
        dispatch(&argv("lint --alg gs --n 8 --pattern paper")).unwrap();
        dispatch(&argv("lint --alg crystal --n 16 --density 0.3")).unwrap();
        dispatch(&argv("lint --alg reb --n 32 --bytes 4096")).unwrap();
        // Injected faults must flip the exit status.
        assert!(dispatch(&argv("lint --alg pex --n 8 --inject swap-order")).is_err());
        assert!(dispatch(&argv("lint --alg lex --n 8 --inject drop-recv")).is_err());
        assert!(dispatch(&argv("lint --alg gs --n 8 --inject retag --json")).is_err());
        assert!(dispatch(&argv("lint --alg pex --inject nonsense")).is_err());
        assert!(dispatch(&argv("lint --alg zzz")).is_err());
    }

    #[test]
    fn lint_all_sweeps_every_builtin() {
        dispatch(&argv("lint --all")).unwrap();
        dispatch(&argv("lint --all --json")).unwrap();
    }

    #[test]
    fn lint_sarif_and_certify_flags() {
        dispatch(&argv("lint --all --json --sarif")).unwrap();
        dispatch(&argv("lint --alg pex --n 8 --json --sarif")).unwrap();
        dispatch(&argv("lint --alg pex --n 8 --certify")).unwrap();
        dispatch(&argv("lint --alg pex --n 8 --json --certify")).unwrap();
        // --sarif without --json, and --certify with --all, are refused.
        assert!(dispatch(&argv("lint --alg pex --n 8 --sarif")).is_err());
        assert!(dispatch(&argv("lint --all --certify")).is_err());
    }

    #[test]
    fn tenant_placements_are_in_the_lint_matrix() {
        let targets = lint_all_targets(&MachineParams::cm5_1992());
        for placement in ["subtree", "striped"] {
            let name = format!("pex 2x8 tenants placement={placement}");
            let t = targets
                .iter()
                .find(|t| t.name == name)
                .unwrap_or_else(|| panic!("missing lint target {name}"));
            assert_eq!(t.schedule.n(), 32);
            let report = cm5_verify::verify_schedule(&t.schedule, None, &t.opts);
            assert!(report.is_clean(), "{name}: {}", report.render_human());
        }
    }

    #[test]
    fn certify_command_runs_and_gates() {
        dispatch(&argv("certify --alg pex --n 8 --bytes 1024")).unwrap();
        dispatch(&argv("certify --alg lex --n 8 --bytes 256 --steps")).unwrap();
        dispatch(&argv("certify --alg pex --n 8 --bytes 256 --sim-check")).unwrap();
        dispatch(&argv("certify --alg gs --n 8 --pattern paper --sim-check")).unwrap();
        dispatch(&argv("certify --alg pex --n 8 --json")).unwrap();
        dispatch(&argv(
            "certify --alg pex --n 8 --machine buffered --sim-check",
        ))
        .unwrap();
        // A tight eager budget must flip the exit status (buffered mode
        // actually buffers; V040 findings are warnings -> dirty).
        assert!(dispatch(&argv(
            "certify --alg pex --n 8 --machine buffered --budget-eager 64"
        ))
        .is_err());
        // Rendezvous blocking sends never buffer: generous budget passes.
        dispatch(&argv("certify --alg pex --n 8 --budget-pending 1")).unwrap();
        assert!(dispatch(&argv("certify --alg zzz")).is_err());
        assert!(dispatch(&argv("certify --alg pex --budget-eager lots")).is_err());
    }

    #[test]
    fn certify_model_check_gates_the_cursor_protocol() {
        dispatch(&argv("certify --model-check")).unwrap();
        dispatch(&argv("certify --model-check --json")).unwrap();
    }

    #[test]
    fn lint_reads_a_pattern_file() {
        let path = std::env::temp_dir().join("cm5_cli_lint_pattern.txt");
        std::fs::write(&path, Pattern::paper_pattern_p(64).to_string()).unwrap();
        let path_s = path.to_str().unwrap();
        dispatch(&argv(&format!("lint --alg gs --pattern-file {path_s}"))).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(dispatch(&argv("lint --alg gs --pattern-file /nonexistent/p.txt")).is_err());
    }

    #[test]
    fn trace_runs_and_exports() {
        dispatch(&argv("trace --alg pex --n 8 --bytes 256")).unwrap();
        dispatch(&argv(
            "trace --alg gs --n 8 --pattern paper --timeline --links",
        ))
        .unwrap();
        dispatch(&argv("trace --alg reb --n 8 --bytes 512 --json")).unwrap();
        let path = std::env::temp_dir().join("cm5_cli_trace_test.json");
        let path_s = path.to_str().unwrap();
        dispatch(&argv(&format!(
            "trace --alg pex --n 8 --bytes 256 --out {path_s}"
        )))
        .unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"schema\":\"cm5-trace/1\""), "{json}");
        assert!(json.contains("\"traceEvents\""), "{json}");
        std::fs::remove_file(&path).ok();
        assert!(dispatch(&argv("trace --alg zzz --n 8")).is_err());
        assert!(dispatch(&argv("trace --alg pex --n 8 --render")).is_err());
        assert!(dispatch(&argv("trace --out /nonexistent/dir/t.json --n 4")).is_err());
    }

    #[test]
    fn lint_json_carries_the_schema_stamp() {
        // The lint --json schema comes from cm5-obs; pin it end to end.
        dispatch(&argv("lint --alg pex --n 8 --json")).unwrap();
        let report = cm5_verify::verify_schedule(
            &ExchangeAlg::Pex.schedule(8, 64),
            Some(&Pattern::complete_exchange(8, 64)),
            &cm5_verify::exchange_policy(ExchangeAlg::Pex),
        );
        assert!(report
            .render_json()
            .starts_with("{\"schema\":\"cm5-lint/1\","));
    }

    #[test]
    fn bench_writes_the_json_artifact() {
        let path = std::env::temp_dir().join("cm5_cli_bench_test.json");
        let path_s = path.to_str().unwrap();
        dispatch(&argv(&format!("bench --quick --json {path_s}"))).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("cm5-bench-sim-perf/3"), "{json}");
        assert!(json.contains("\"rex_128\""), "{json}");
        assert!(json.contains("\"solver\": \"incremental\""), "{json}");
        // Without --large the big cells must stay out of the artifact
        // (this test runs in a debug build).
        assert!(!json.contains("\"pex_16k\""), "{json}");
        std::fs::remove_file(&path).ok();
        assert!(dispatch(&argv("bench --jobs 3")).is_err());
    }
}
