#![forbid(unsafe_code)]
