//! Terminal rendering: per-node Gantt timelines and per-level utilization
//! sparklines.
//!
//! Both renderers quantize the run into `width` fixed columns and draw with
//! Unicode block characters, so a 32-node LEX-vs-BEX comparison fits side by
//! side in a terminal without leaving the CLI.

use cm5_sim::SimTime;

use crate::links::LinkUsage;
use crate::span::SpanStore;

/// Cell glyphs, in increasing display priority.
const IDLE: char = '·';
const DONE: char = ' ';
const BLOCKED: char = '░';
const RECVING: char = '▓';
const SENDING: char = '█';

fn priority(c: char) -> u8 {
    match c {
        SENDING => 4,
        RECVING => 3,
        BLOCKED => 2,
        IDLE => 1,
        _ => 0,
    }
}

/// Render a per-node Gantt chart of one run, `width` columns wide.
///
/// Glyphs: `█` sending, `▓` receiving, `░` blocked, `·` alive but idle,
/// blank after the node finished. Message activity wins over blocked, which
/// wins over idle, within a column.
pub fn render_timeline(spans: &SpanStore, n: usize, width: usize) -> String {
    let width = width.max(1);
    let end = spans.end();
    let end_us = end.as_micros_f64().max(1e-9);
    let col_of = |t: SimTime| -> usize {
        let c = (t.as_micros_f64() / end_us * width as f64) as usize;
        c.min(width - 1)
    };

    let mut rows = vec![vec![IDLE; width]; n];
    // Blank out everything after a node's finish time.
    for &(node, t) in &spans.node_done {
        if node >= n {
            continue;
        }
        let first_done = col_of(t);
        rows[node][(first_done + 1).min(width)..].fill(DONE);
    }

    let mut paint = |node: usize, from: SimTime, to: SimTime, glyph: char| {
        if node >= n {
            return;
        }
        for cell in rows[node][col_of(from)..=col_of(to)].iter_mut() {
            if priority(glyph) > priority(*cell) {
                *cell = glyph;
            }
        }
    };
    for b in &spans.blocked {
        paint(b.node, b.from, b.to, BLOCKED);
    }
    for m in &spans.messages {
        paint(m.src, m.from, m.to, SENDING);
        paint(m.dst, m.from, m.to, RECVING);
    }

    let label_w = format!("{}", n.saturating_sub(1)).len().max(1);
    let mut out = String::new();
    out.push_str(&format!(
        "timeline 0..{:.1} us  ({:.1} us/col)\n",
        end_us,
        end_us / width as f64
    ));
    for (node, row) in rows.iter().enumerate() {
        out.push_str(&format!("node {node:>label_w$} |"));
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "{:>pad$}   █ send  ▓ recv  ░ blocked  · idle\n",
        "",
        pad = label_w
    ));
    out
}

/// Sparkline ramp: blank for zero, then eight block heights.
const RAMP: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render one sparkline per fat-tree level from a [`LinkUsage`], `width`
/// columns wide, each column showing the level's utilization at that slice
/// of the run (piecewise-constant between solver samples).
pub fn render_sparklines(usage: &LinkUsage, width: usize) -> String {
    let width = width.max(1);
    let end_us = usage
        .levels
        .iter()
        .filter_map(|l| l.series.last())
        .map(|&(t, _)| t.as_micros_f64())
        .fold(0.0f64, f64::max)
        .max(1e-9);

    let mut out = String::new();
    out.push_str(&format!("link utilization 0..{end_us:.1} us\n"));
    for lvl in &usage.levels {
        let mut cells = vec![RAMP[0]; width];
        // Rates hold from one sample to the next: walk samples and fill
        // forward to the column of the following sample.
        for (i, &(t, util)) in lvl.series.iter().enumerate() {
            let from = ((t.as_micros_f64() / end_us) * width as f64) as usize;
            let to = match lvl.series.get(i + 1) {
                Some(&(next, _)) => ((next.as_micros_f64() / end_us) * width as f64) as usize,
                None => width,
            };
            let glyph = RAMP[((util.clamp(0.0, 1.0) * 8.0).ceil() as usize).min(8)];
            for cell in cells.iter_mut().take(to.min(width)).skip(from.min(width)) {
                *cell = glyph;
            }
        }
        out.push_str(&format!("level {} |", lvl.level));
        out.extend(cells.iter());
        out.push_str(&format!("| peak {:.0}%\n", lvl.peak() * 100.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::links::link_usage;
    use cm5_sim::{FatTree, MachineParams, Op, Simulation, Topology, ANY_TAG};

    fn pingpong_report() -> (cm5_sim::SimReport, MachineParams) {
        let mut p = vec![Vec::new(); 2];
        p[0].push(Op::Send {
            to: 1,
            bytes: 5_000,
            tag: ANY_TAG,
        });
        p[1].push(Op::Recv {
            from: 0,
            tag: ANY_TAG,
        });
        let params = MachineParams::cm5_1992();
        let report = Simulation::new(2, params.clone())
            .record_trace(true)
            .record_rates(true)
            .run_ops(&p)
            .unwrap();
        (report, params)
    }

    #[test]
    fn timeline_has_one_row_per_node_and_stable_width() {
        let (report, _) = pingpong_report();
        let spans = SpanStore::from_report(&report);
        let text = render_timeline(&spans, 2, 40);
        let rows: Vec<&str> = text.lines().filter(|l| l.starts_with("node ")).collect();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            let body: String = r
                .chars()
                .skip_while(|&c| c != '|')
                .skip(1)
                .take_while(|&c| c != '|')
                .collect();
            assert_eq!(body.chars().count(), 40, "row {r:?}");
        }
        assert!(text.contains(SENDING), "sender paints █");
        assert!(text.contains(RECVING), "receiver paints ▓");
    }

    #[test]
    fn sparklines_cover_every_level() {
        let (report, params) = pingpong_report();
        let topo = Topology::FatTree(FatTree::new(2));
        let usage = link_usage(&report.rate_samples, &topo, &params);
        let text = render_sparklines(&usage, 32);
        for lvl in 0..topo.num_levels() {
            assert!(text.contains(&format!("level {lvl} |")), "{text}");
        }
        assert!(text.contains("peak"));
    }

    #[test]
    fn zero_width_is_clamped_not_panicking() {
        let (report, params) = pingpong_report();
        let spans = SpanStore::from_report(&report);
        let _ = render_timeline(&spans, 2, 0);
        let topo = Topology::FatTree(FatTree::new(2));
        let usage = link_usage(&report.rate_samples, &topo, &params);
        let _ = render_sparklines(&usage, 0);
    }
}
