//! Service telemetry: per-query request spans and the flight recorder.
//!
//! `cm5-serve` threads a [`QueryCtx`] through each request's lifecycle —
//! parse → advise → verify → simulate → render — and closes it into a
//! [`QuerySpan`]. Two exports consume the spans:
//!
//! * [`spans_json`] — the canonical span-tree document
//!   (`cm5-serve-spans/1`): queries in arrival (seq) order with phase names
//!   and details only. Every wall-clock field is quarantined (omitted), and
//!   advisor cache hit/miss is re-derived from the advise keys by first
//!   occurrence in seq order, so the document is byte-identical at any
//!   worker count — the golden-pinnable artifact.
//! * [`spans_chrome_trace`] — Chrome Trace Format / Perfetto JSON in the
//!   layout PR 5 established: one track per pool worker, one slice tree
//!   per query, real host timestamps (useful for eyeballing latency, never
//!   byte-compared across runs).
//!
//! The [`FlightRecorder`] keeps a bounded ring of the most recent spans and
//! dumps any query that errors or breaches a latency SLO as a deterministic
//! `cm5-flight/1` document (span tree + raw request line, wall-clock
//! quarantined) into a directory for post-mortem inspection.

use std::collections::HashSet;
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::schema::schema_field;

/// Typed phases of one service query, in lifecycle order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// Decoding the request line into a typed `Request`.
    Parse,
    /// An advisor recommendation (one per advised workload; tenant queries
    /// record one per tenant).
    Advise,
    /// Schedule verification (including the memo lookup).
    Verify,
    /// Discrete-event simulation of the recommended schedule.
    Simulate,
    /// Rendering the response JSON line.
    Render,
}

impl PhaseKind {
    /// Canonical phase name used in every export.
    pub fn name(self) -> &'static str {
        match self {
            PhaseKind::Parse => "parse",
            PhaseKind::Advise => "advise",
            PhaseKind::Verify => "verify",
            PhaseKind::Simulate => "simulate",
            PhaseKind::Render => "render",
        }
    }
}

/// One timed child phase of a query span.
#[derive(Debug, Clone)]
pub struct PhaseSpan {
    /// Which lifecycle phase this is.
    pub kind: PhaseKind,
    /// Deterministic detail (e.g. the picked algorithm) — exported.
    pub detail: String,
    /// Advisor cache key for `Advise` phases; internal — exporters use it
    /// to derive hit/miss by first occurrence, but never print it.
    pub advise_key: Option<String>,
    /// Host-clock offset from the query start (quarantined).
    pub start_ns: u64,
    /// Host-clock duration (quarantined).
    pub dur_ns: u64,
}

/// A fully-spanned query: the root span plus its typed child phases.
#[derive(Debug, Clone)]
pub struct QuerySpan {
    /// Arrival-order sequence number (input order under replay).
    pub seq: u64,
    /// Request id (0 when the line was too malformed to recover one).
    pub id: u64,
    /// Query kind (`"exchange"`, `"tenants"`, …; `"invalid"` on parse error).
    pub kind: String,
    /// Whether the response was `ok`.
    pub ok: bool,
    /// The error string for failed queries.
    pub error: Option<String>,
    /// Pool worker that handled the query (0 outside the pool; quarantined).
    pub worker: usize,
    /// Host-clock offset from the service epoch (quarantined).
    pub start_ns: u64,
    /// Host-clock total latency (quarantined).
    pub total_ns: u64,
    /// Child phases in execution order.
    pub phases: Vec<PhaseSpan>,
    /// The raw request line (kept for flight-recorder dumps).
    pub request_line: String,
}

/// Per-query span builder threaded through the service's request path.
///
/// Phases are timed against the host clock; everything host-time-dependent
/// stays quarantined in the exports (see module docs).
#[derive(Debug)]
pub struct QueryCtx {
    t0: Instant,
    span: QuerySpan,
}

impl QueryCtx {
    /// Open a span for the `seq`-th query. `epoch` is the service start
    /// instant (root `ts` offsets are relative to it).
    pub fn new(seq: u64, line: &str, epoch: Instant) -> QueryCtx {
        let t0 = Instant::now();
        QueryCtx {
            t0,
            span: QuerySpan {
                seq,
                id: 0,
                kind: String::from("invalid"),
                ok: false,
                error: None,
                worker: 0,
                start_ns: t0.saturating_duration_since(epoch).as_nanos() as u64,
                total_ns: 0,
                phases: Vec::new(),
                request_line: line.to_string(),
            },
        }
    }

    /// Start a phase timer (pair with [`QueryCtx::phase`]).
    pub fn start(&self) -> Instant {
        Instant::now()
    }

    /// Close a phase started at `from`.
    pub fn phase(&mut self, kind: PhaseKind, detail: &str, from: Instant) {
        self.push(kind, detail, None, from);
    }

    /// Close an advise phase, recording the cache key the advisor used.
    pub fn phase_advise(&mut self, detail: &str, key: String, from: Instant) {
        self.push(PhaseKind::Advise, detail, Some(key), from);
    }

    fn push(&mut self, kind: PhaseKind, detail: &str, advise_key: Option<String>, from: Instant) {
        self.span.phases.push(PhaseSpan {
            kind,
            detail: detail.to_string(),
            advise_key,
            start_ns: from.saturating_duration_since(self.t0).as_nanos() as u64,
            dur_ns: from.elapsed().as_nanos() as u64,
        });
    }

    /// Close the span with the request outcome.
    pub fn finish(mut self, id: u64, kind: &str, outcome: Result<(), String>) -> QuerySpan {
        self.span.id = id;
        self.span.kind = kind.to_string();
        match outcome {
            Ok(()) => self.span.ok = true,
            Err(e) => {
                self.span.ok = false;
                self.span.error = Some(e);
            }
        }
        self.span.total_ns = self.t0.elapsed().as_nanos() as u64;
        self.span
    }
}

/// Escape a string for embedding in a JSON document.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Canonical phase name: `Advise` phases become `advise-hit`/`advise-miss`
/// by first occurrence of their cache key in `seen`; everything else keeps
/// its [`PhaseKind::name`].
fn canonical_phase_name(p: &PhaseSpan, seen: &mut HashSet<String>) -> String {
    match (&p.kind, &p.advise_key) {
        (PhaseKind::Advise, Some(key)) => {
            if seen.insert(key.clone()) {
                "advise-miss".to_string()
            } else {
                "advise-hit".to_string()
            }
        }
        _ => p.kind.name().to_string(),
    }
}

/// Render one query (its phases resolved against `seen`) as a single JSON
/// object line — shared by [`spans_json`] and the flight-recorder dump.
fn query_json(span: &QuerySpan, seen: &mut HashSet<String>) -> String {
    let mut out = format!(
        "{{\"seq\": {}, \"id\": {}, \"kind\": \"{}\", \"ok\": {}",
        span.seq,
        span.id,
        esc(&span.kind),
        span.ok
    );
    if let Some(e) = &span.error {
        out.push_str(&format!(", \"error\": \"{}\"", esc(e)));
    }
    out.push_str(", \"phases\": [");
    for (i, p) in span.phases.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"phase\": \"{}\"",
            canonical_phase_name(p, seen)
        ));
        if !p.detail.is_empty() {
            out.push_str(&format!(", \"detail\": \"{}\"", esc(&p.detail)));
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Render spans as the canonical `cm5-serve-spans/1` document.
///
/// Queries are ordered by `seq` regardless of input order; wall-clock
/// fields and worker assignment are quarantined (omitted); advisor cache
/// hit/miss is derived from key first-occurrence in seq order, which
/// matches what a single-worker service actually observes. The result is
/// byte-identical at any `--jobs`.
pub fn spans_json(spans: &[QuerySpan]) -> String {
    let mut order: Vec<&QuerySpan> = spans.iter().collect();
    order.sort_by_key(|s| s.seq);
    let mut seen: HashSet<String> = HashSet::new();
    let mut out = String::from("{\n  ");
    out.push_str(&schema_field("serve-spans", 1));
    out.push_str(",\n  \"queries\": [\n");
    for (i, span) in order.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&query_json(span, &mut seen));
        out.push_str(if i + 1 < order.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render spans as Chrome Trace Format JSON (`cm5-serve-trace/1`): one
/// track per pool worker, one slice tree per query, host-clock `ts`/`dur`.
///
/// Structure (track layout, slice names, nesting) is deterministic; the
/// timestamps are real host time and therefore never byte-compared.
pub fn spans_chrome_trace(spans: &[QuerySpan]) -> String {
    let mut order: Vec<&QuerySpan> = spans.iter().collect();
    order.sort_by_key(|s| s.seq);
    let workers = order.iter().map(|s| s.worker + 1).max().unwrap_or(1);
    let mut ev: Vec<String> = Vec::new();
    ev.push(
        "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"cm5-serve\"}}"
            .into(),
    );
    for w in 0..workers {
        ev.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{w},\"name\":\"thread_name\",\"args\":{{\"name\":\"worker {w}\"}}}}"
        ));
    }
    let us = |ns: u64| format!("{:.3}", ns as f64 / 1_000.0);
    let mut seen: HashSet<String> = HashSet::new();
    for s in &order {
        let status = if s.ok { "ok" } else { "error" };
        ev.push(format!(
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{} #{}\",\"args\":{{\"seq\":{},\"status\":\"{}\"}}}}",
            s.worker,
            us(s.start_ns),
            us(s.total_ns),
            esc(&s.kind),
            s.id,
            s.seq,
            status
        ));
        for p in &s.phases {
            let name = canonical_phase_name(p, &mut seen);
            let args = if p.detail.is_empty() {
                String::new()
            } else {
                format!(",\"args\":{{\"detail\":\"{}\"}}", esc(&p.detail))
            };
            ev.push(format!(
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{}\"{}}}",
                s.worker,
                us(s.start_ns + p.start_ns),
                us(p.dur_ns),
                name,
                args
            ));
        }
    }
    let mut out = String::from("{\n  ");
    out.push_str(&schema_field("serve-trace", 1));
    out.push_str(",\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    for (i, e) in ev.iter().enumerate() {
        out.push_str("    ");
        out.push_str(e);
        out.push_str(if i + 1 < ev.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render one span as a deterministic `cm5-flight/1` post-mortem document:
/// the raw request line plus the span tree, wall-clock quarantined.
///
/// Hit/miss derivation is scoped to this one query (a tenant query that
/// advises the same workload twice shows the second as a hit), so the dump
/// is a pure function of the request — byte-identical at any worker count.
pub fn flight_json(span: &QuerySpan, reason: &str) -> String {
    let mut seen: HashSet<String> = HashSet::new();
    let mut out = String::from("{\n  ");
    out.push_str(&schema_field("flight", 1));
    out.push_str(&format!(",\n  \"reason\": \"{}\"", esc(reason)));
    out.push_str(&format!(
        ",\n  \"request\": \"{}\"",
        esc(&span.request_line)
    ));
    out.push_str(",\n  \"span\": ");
    out.push_str(&query_json(span, &mut seen));
    out.push_str("\n}\n");
    out
}

/// Bounded ring of the most recent fully-spanned queries, dumping
/// SLO-breaching or failed queries to disk for post-mortem inspection.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    slo_ns: Option<u64>,
    dir: Option<PathBuf>,
    ring: VecDeque<QuerySpan>,
    dropped: u64,
    dumped: u64,
}

impl FlightRecorder {
    /// New recorder keeping the last `capacity` spans (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            slo_ns: None,
            dir: None,
            ring: VecDeque::new(),
            dropped: 0,
            dumped: 0,
        }
    }

    /// Dump any query slower than `ms` milliseconds (0 dumps every query —
    /// the deterministic-forcing mode used by tests and CI). Without an
    /// SLO only failed queries trip the recorder.
    pub fn slo_ms(mut self, ms: u64) -> FlightRecorder {
        self.slo_ns = Some(ms.saturating_mul(1_000_000));
        self
    }

    /// Directory to write `cm5-flight/1` dumps into. Without a directory
    /// tripped queries are counted but not written.
    pub fn dump_dir(mut self, dir: impl Into<PathBuf>) -> FlightRecorder {
        self.dir = Some(dir.into());
        self
    }

    /// Why a span trips the recorder, if it does.
    fn trip_reason(&self, span: &QuerySpan) -> Option<&'static str> {
        if !span.ok {
            Some("error")
        } else if self.slo_ns.is_some_and(|slo| span.total_ns >= slo) {
            Some("slo")
        } else {
            None
        }
    }

    /// Record one finished span; returns the dump path if it tripped and a
    /// dump directory is configured.
    ///
    /// The dump filename is `flight_<seq>.json` and the contents are a pure
    /// function of the request ([`flight_json`]), so observing spans in seq
    /// order produces identical dumps at any worker count.
    pub fn observe(&mut self, span: &QuerySpan) -> io::Result<Option<PathBuf>> {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(span.clone());
        let Some(reason) = self.trip_reason(span) else {
            return Ok(None);
        };
        self.dumped += 1;
        let Some(dir) = &self.dir else {
            return Ok(None);
        };
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("flight_{:06}.json", span.seq));
        std::fs::write(&path, flight_json(span, reason))?;
        Ok(Some(path))
    }

    /// Spans currently held, oldest first.
    pub fn recent(&self) -> impl Iterator<Item = &QuerySpan> {
        self.ring.iter()
    }

    /// Spans evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Queries that tripped the recorder (errors + SLO breaches).
    pub fn dumped(&self) -> u64 {
        self.dumped
    }

    /// The configured dump directory, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(seq: u64, ok: bool, key: Option<&str>) -> QuerySpan {
        let epoch = Instant::now();
        let mut ctx = QueryCtx::new(seq, "{\"id\":1}", epoch);
        let t = ctx.start();
        ctx.phase(PhaseKind::Parse, "", t);
        if let Some(k) = key {
            let t = ctx.start();
            ctx.phase_advise("rex", k.to_string(), t);
        }
        let t = ctx.start();
        ctx.phase(PhaseKind::Render, "", t);
        ctx.finish(1, "exchange", if ok { Ok(()) } else { Err("boom".into()) })
    }

    #[test]
    fn canonical_doc_quarantines_wall_clock_and_derives_hit_miss() {
        let spans = vec![span(0, true, Some("k1")), span(1, true, Some("k1"))];
        let doc = spans_json(&spans);
        assert!(doc.contains("\"schema\":\"cm5-serve-spans/1\""));
        assert!(doc.contains("advise-miss"));
        assert!(doc.contains("advise-hit"));
        assert!(!doc.contains("_ns"), "wall clock leaked: {doc}");
        // Re-spanning the same queries (different host timings) renders
        // byte-identically.
        let again = spans_json(&[span(0, true, Some("k1")), span(1, true, Some("k1"))]);
        assert_eq!(doc, again);
        // Seq order, not input order.
        let reversed = spans_json(&[span(1, true, Some("k1")), span(0, true, Some("k1"))]);
        assert_eq!(doc, reversed);
    }

    #[test]
    fn chrome_export_has_worker_tracks_and_phase_slices() {
        let mut s = span(0, true, Some("k1"));
        s.worker = 2;
        let doc = spans_chrome_trace(&[s]);
        assert!(doc.contains("\"schema\":\"cm5-serve-trace/1\""));
        assert!(doc.contains("worker 2"));
        assert!(doc.contains("\"name\":\"exchange #1\""));
        assert!(doc.contains("\"name\":\"advise-miss\""));
        assert!(doc.trim_end().ends_with("]\n}"));
    }

    #[test]
    fn flight_recorder_trips_on_error_and_slo_and_bounds_the_ring() {
        let dir = std::env::temp_dir().join(format!("cm5_flight_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut fr = FlightRecorder::new(2).slo_ms(0).dump_dir(&dir);
        for seq in 0..4 {
            let p = fr.observe(&span(seq, seq != 3, Some("k"))).unwrap();
            assert!(p.is_some(), "slo 0 must dump every query");
        }
        assert_eq!(fr.dumped(), 4);
        assert_eq!(fr.dropped(), 2, "ring of 2 evicts the first two");
        assert_eq!(fr.recent().count(), 2);
        let dumped = std::fs::read_to_string(dir.join("flight_000003.json")).unwrap();
        assert!(dumped.contains("\"schema\":\"cm5-flight/1\""));
        assert!(dumped.contains("\"reason\": \"error\""));
        assert!(dumped.contains("\"error\": \"boom\""));
        assert!(dumped.contains("\"request\": \"{\\\"id\\\":1}\""));
        // Dump contents are a pure function of the request: re-observe the
        // same logical span and the bytes match.
        let again = flight_json(&span(3, false, Some("k")), "error");
        assert_eq!(dumped, again);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recorder_without_slo_only_trips_errors() {
        let mut fr = FlightRecorder::new(4);
        fr.observe(&span(0, true, None)).unwrap();
        fr.observe(&span(1, false, None)).unwrap();
        assert_eq!(fr.dumped(), 1);
        assert!(fr.dir().is_none());
    }
}
