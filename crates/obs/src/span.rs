//! Typed spans derived from the flat [`TraceEvent`] stream.
//!
//! The engine records point events (message start/done, blocked-end,
//! collective done, node done). This module pairs them into *spans* — the
//! unit every exporter and renderer consumes:
//!
//! * **message spans**: one per delivered message, paired FIFO per
//!   `(src, dst, tag)` so overtaking is impossible by construction;
//! * **blocked spans**: one per blocking wait, self-contained in the
//!   [`TraceKind::BlockedEnd`] event;
//! * **collective spans**: first arrival → completion of each barrier /
//!   reduction / system broadcast;
//! * **step spans**: for lowered schedules the message tag is the schedule
//!   step index, so the envelope of a tag's messages is the step's span;
//! * **solver events**: the instants the network re-divided bandwidth,
//!   taken from [`SimReport::rate_samples`].

use std::collections::{BTreeMap, HashMap, VecDeque};

use cm5_sim::{SimReport, SimTime, TraceKind};

/// One delivered message: rendezvous match at `from`, last byte drained at
/// `to` (wire latency excluded, matching the engine's `MsgDone` instant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageSpan {
    /// Sender.
    pub src: usize,
    /// Receiver.
    pub dst: usize,
    /// User bytes.
    pub bytes: u64,
    /// Message tag (schedule step index for lowered schedules).
    pub tag: u32,
    /// Transfer start.
    pub from: SimTime,
    /// Transfer completion.
    pub to: SimTime,
}

/// One blocking wait of a node (post → resume).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedSpan {
    /// The node that waited.
    pub node: usize,
    /// When the blocking operation was posted.
    pub from: SimTime,
    /// When the node resumed.
    pub to: SimTime,
}

/// One control-network collective (first arrival → completion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectiveSpan {
    /// Collective kind (`barrier`, `reduce`, `scan`, `system_bcast`).
    pub what: &'static str,
    /// First node's arrival.
    pub from: SimTime,
    /// Completion (all nodes resume here).
    pub to: SimTime,
}

/// Envelope of all messages sharing one tag — for lowered schedules, the
/// dynamic footprint of one schedule step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepSpan {
    /// The tag (schedule step index).
    pub tag: u32,
    /// Earliest message start.
    pub from: SimTime,
    /// Latest message completion.
    pub to: SimTime,
    /// Messages delivered under this tag.
    pub messages: usize,
}

/// All spans of one run, plus the loose point events.
#[derive(Debug, Clone, Default)]
pub struct SpanStore {
    /// Delivered messages, in completion order.
    pub messages: Vec<MessageSpan>,
    /// Blocking waits, in resume order.
    pub blocked: Vec<BlockedSpan>,
    /// Collectives, in completion order.
    pub collectives: Vec<CollectiveSpan>,
    /// Per-tag message envelopes, ascending by tag.
    pub steps: Vec<StepSpan>,
    /// `(node, finish time)` per finished node, in finish order.
    pub node_done: Vec<(usize, SimTime)>,
    /// Instants the flow solver re-divided bandwidth (from rate samples).
    pub solver_events: Vec<SimTime>,
    /// `MsgStart` events with no matching `MsgDone` (bounded-ring eviction
    /// or a truncated trace); their transfers are not turned into spans.
    pub unmatched_starts: usize,
    /// `MsgDone` events whose `MsgStart` was evicted.
    pub unmatched_dones: usize,
}

impl SpanStore {
    /// Build the span store from a report recorded with
    /// [`cm5_sim::Simulation::record_trace`] (and optionally
    /// [`cm5_sim::Simulation::record_rates`] for solver events).
    pub fn from_report(report: &SimReport) -> SpanStore {
        let mut store = SpanStore::default();
        // FIFO start-time queues per (src, dst, tag). The engine delivers
        // same-key messages in admission order, so FIFO pairing is exact.
        let mut open: HashMap<(usize, usize, u32), VecDeque<SimTime>> = HashMap::new();
        for ev in &report.trace {
            match ev.kind {
                TraceKind::MsgStart { src, dst, tag, .. } => {
                    open.entry((src, dst, tag)).or_default().push_back(ev.time);
                }
                TraceKind::MsgDone {
                    src,
                    dst,
                    bytes,
                    tag,
                } => match open.get_mut(&(src, dst, tag)).and_then(|q| q.pop_front()) {
                    Some(from) => store.messages.push(MessageSpan {
                        src,
                        dst,
                        bytes,
                        tag,
                        from,
                        to: ev.time,
                    }),
                    None => store.unmatched_dones += 1,
                },
                TraceKind::BlockedEnd { node, since } => store.blocked.push(BlockedSpan {
                    node,
                    from: since,
                    to: ev.time,
                }),
                TraceKind::CollectiveDone {
                    what,
                    first_arrival,
                } => store.collectives.push(CollectiveSpan {
                    what,
                    from: first_arrival,
                    to: ev.time,
                }),
                TraceKind::NodeDone { node } => store.node_done.push((node, ev.time)),
            }
        }
        store.unmatched_starts = open.values().map(VecDeque::len).sum();
        let mut steps: BTreeMap<u32, StepSpan> = BTreeMap::new();
        for m in &store.messages {
            steps
                .entry(m.tag)
                .and_modify(|s| {
                    s.from = s.from.min(m.from);
                    s.to = s.to.max(m.to);
                    s.messages += 1;
                })
                .or_insert(StepSpan {
                    tag: m.tag,
                    from: m.from,
                    to: m.to,
                    messages: 1,
                });
        }
        store.steps = steps.into_values().collect();
        store.solver_events = report.rate_samples.iter().map(|s| s.time).collect();
        store
    }

    /// The end of the observed timeline: latest span end or node finish.
    pub fn end(&self) -> SimTime {
        let mut end = SimTime::ZERO;
        for m in &self.messages {
            end = end.max(m.to);
        }
        for b in &self.blocked {
            end = end.max(b.to);
        }
        for c in &self.collectives {
            end = end.max(c.to);
        }
        for &(_, t) in &self.node_done {
            end = end.max(t);
        }
        end
    }

    /// The step (tag) whose span contains `t`, preferring the earliest tag
    /// when step envelopes overlap.
    pub fn step_at(&self, t: SimTime) -> Option<u32> {
        self.steps
            .iter()
            .find(|s| s.from <= t && t <= s.to)
            .map(|s| s.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm5_sim::{MachineParams, Op, Simulation, ANY_TAG};

    fn fan_in_report(n: usize) -> SimReport {
        let mut p = vec![Vec::new(); n];
        for i in 1..n {
            p[0].push(Op::Recv {
                from: i,
                tag: ANY_TAG,
            });
            p[i].push(Op::Send {
                to: 0,
                bytes: 1_000,
                tag: ANY_TAG,
            });
        }
        Simulation::new(n, MachineParams::cm5_1992())
            .record_trace(true)
            .record_rates(true)
            .run_ops(&p)
            .unwrap()
    }

    #[test]
    fn pairs_every_message_and_orders_spans() {
        let report = fan_in_report(4);
        let store = SpanStore::from_report(&report);
        assert_eq!(store.messages.len(), 3);
        assert_eq!(store.unmatched_starts, 0);
        assert_eq!(store.unmatched_dones, 0);
        for m in &store.messages {
            assert!(m.from < m.to, "{m:?}");
            assert_eq!(m.dst, 0);
        }
        assert_eq!(store.node_done.len(), 4);
        assert!(!store.blocked.is_empty(), "rendezvous senders block");
        assert!(!store.solver_events.is_empty());
        assert!(store.end() >= store.messages.last().unwrap().to);
    }

    #[test]
    fn step_envelopes_follow_tags() {
        let report = fan_in_report(4);
        let store = SpanStore::from_report(&report);
        // All messages share ANY_TAG = one step envelope covering them all.
        assert_eq!(store.steps.len(), 1);
        let s = &store.steps[0];
        assert_eq!(s.messages, 3);
        assert_eq!(s.from, store.messages.iter().map(|m| m.from).min().unwrap());
        assert_eq!(s.to, store.messages.iter().map(|m| m.to).max().unwrap());
        assert_eq!(store.step_at(s.from), Some(s.tag));
        assert_eq!(
            store.step_at(s.to + cm5_sim::SimDuration::from_micros(1)),
            None
        );
    }

    #[test]
    fn collective_spans_cover_arrival_to_finish() {
        let n = 4;
        let mut p = vec![Vec::new(); n];
        for (i, prog) in p.iter_mut().enumerate() {
            prog.push(Op::Compute(cm5_sim::SimDuration::from_micros(
                10 * i as u64,
            )));
            prog.push(Op::Barrier);
        }
        let report = Simulation::new(n, MachineParams::cm5_1992())
            .record_trace(true)
            .run_ops(&p)
            .unwrap();
        let store = SpanStore::from_report(&report);
        assert_eq!(store.collectives.len(), 1);
        let c = store.collectives[0];
        assert_eq!(c.what, "barrier");
        assert_eq!(c.from, SimTime::ZERO, "node 0 arrives immediately");
        assert!(c.to > c.from);
    }
}
