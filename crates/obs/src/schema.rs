//! Shared schema versioning for every JSON artifact the workspace emits.
//!
//! All hand-rolled JSON emitters (`cm5 lint --json`, `cm5 bench --json`,
//! trace and metrics exports) stamp a `"schema"` field built here, so
//! downstream tooling can detect format drift with one string comparison
//! instead of sniffing fields.

/// JSON key under which the schema identifier is stored.
pub const SCHEMA_KEY: &str = "schema";

/// Schema identifier for `artifact` at `version`: `cm5-<artifact>/<version>`.
///
/// ```
/// assert_eq!(cm5_obs::schema_id("bench-sim-perf", 1), "cm5-bench-sim-perf/1");
/// assert_eq!(cm5_obs::schema_id("trace", 1), "cm5-trace/1");
/// ```
pub fn schema_id(artifact: &str, version: u32) -> String {
    format!("cm5-{artifact}/{version}")
}

/// The schema member rendered as a compact JSON field:
/// `"schema":"cm5-<artifact>/<version>"` (no surrounding braces or comma).
///
/// ```
/// assert_eq!(cm5_obs::schema_field("lint", 1), "\"schema\":\"cm5-lint/1\"");
/// ```
pub fn schema_field(artifact: &str, version: u32) -> String {
    format!("\"{SCHEMA_KEY}\":\"{}\"", schema_id(artifact, version))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_preexisting_bench_schema_string() {
        // The BENCH_sim.json artifact predates this helper; its schema
        // string is pinned by cm5-bench tests and must never drift.
        assert_eq!(schema_id("bench-sim-perf", 1), "cm5-bench-sim-perf/1");
    }

    #[test]
    fn field_form_is_compact() {
        assert_eq!(schema_field("metrics", 2), "\"schema\":\"cm5-metrics/2\"");
    }
}
