//! Metrics registry: counters, gauges, and log₂-bucket histograms.
//!
//! [`Metrics::from_report`] snapshots one run into a registry — message and
//! byte counters, bandwidth/blocked-time gauges, and fixed-bucket latency
//! histograms — and [`Metrics::to_json`] renders it as a versioned JSON
//! document. Buckets are `[2^(k-1), 2^k)` nanoseconds, so two runs land in
//! identical buckets regardless of sample order: the registry is as
//! deterministic as the simulation itself.

use std::collections::BTreeMap;

use cm5_sim::SimReport;

use crate::schema::schema_field;
use crate::span::SpanStore;

/// Number of log₂ buckets: values are u64 nanoseconds, so 64 bit positions
/// plus a dedicated zero bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Fixed log₂-bucket histogram over u64 samples (nanoseconds).
///
/// Bucket 0 holds exact zeros; bucket `k ≥ 1` holds `[2^(k-1), 2^k)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Sample counts per bucket.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample recorded (0 when empty).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Bucket index for a value: 0 for 0, else `64 - leading_zeros(v)`.
    pub fn bucket(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Mean sample value (0.0 when empty — never NaN).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(bucket index, count)`, ascending.
    pub fn nonzero(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

/// A named-metric registry snapshotted from one simulation run.
///
/// `BTreeMap` keys keep every rendering deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Monotonic counts.
    pub counters: BTreeMap<&'static str, u64>,
    /// Point-in-time values.
    pub gauges: BTreeMap<&'static str, f64>,
    /// Log₂-bucket distributions (nanosecond samples).
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl Metrics {
    /// Snapshot a finished run.
    ///
    /// Histograms need the report recorded with
    /// [`cm5_sim::Simulation::record_trace`]; without a trace they are
    /// present but empty.
    pub fn from_report(report: &SimReport) -> Metrics {
        let spans = SpanStore::from_report(report);
        Metrics::from_spans(report, &spans)
    }

    /// [`Metrics::from_report`] over a pre-built span store.
    pub fn from_spans(report: &SimReport, spans: &SpanStore) -> Metrics {
        let mut m = Metrics::default();
        m.counters.insert("messages", report.messages);
        m.counters.insert("payload_bytes", report.payload_bytes);
        m.counters.insert("wire_bytes", report.wire_bytes);
        m.counters.insert("root_crossings", report.root_crossings);
        m.counters.insert("collectives", report.collectives);
        m.counters.insert("trace_events", report.trace.len() as u64);
        m.counters.insert("trace_dropped", report.trace_dropped);
        m.counters
            .insert("solver_recomputes", spans.solver_events.len() as u64);
        m.counters
            .insert("rate_samples", report.rate_samples.len() as u64);

        m.gauges
            .insert("makespan_us", report.makespan.as_micros_f64());
        m.gauges.insert(
            "effective_bandwidth_mb_s",
            report.effective_bandwidth() / 1e6,
        );
        m.gauges
            .insert("mean_blocked_fraction", report.mean_blocked_fraction());

        let mut latency = Histogram::default();
        for msg in &spans.messages {
            latency.record(msg.to.since(msg.from).as_nanos());
        }
        m.histograms.insert("message_latency_ns", latency);
        let mut blocked = Histogram::default();
        for b in &spans.blocked {
            blocked.record(b.to.since(b.from).as_nanos());
        }
        m.histograms.insert("blocked_time_ns", blocked);
        m
    }

    /// Render as a versioned JSON document (`cm5-metrics/1`).
    ///
    /// Histograms serialize sparsely: only non-empty buckets, as
    /// `[bucket, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  ");
        out.push_str(&schema_field("metrics", 1));
        out.push_str(",\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{k}\": {v}"));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{k}\": {v:.6}"));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    \"{k}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [",
                h.count, h.sum, h.max
            ));
            for (i, (bucket, count)) in h.nonzero().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{bucket}, {count}]"));
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm5_sim::{MachineParams, Op, Simulation, ANY_TAG};

    #[test]
    fn bucket_edges_are_powers_of_two() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 1);
        assert_eq!(Histogram::bucket(2), 2);
        assert_eq!(Histogram::bucket(3), 2);
        assert_eq!(Histogram::bucket(4), 3);
        assert_eq!(Histogram::bucket(1023), 10);
        assert_eq!(Histogram::bucket(1024), 11);
        assert_eq!(Histogram::bucket(u64::MAX), 64);
    }

    #[test]
    fn histogram_tracks_count_sum_max() {
        let mut h = Histogram::default();
        for v in [0, 1, 5, 5, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1035);
        assert_eq!(h.max, 1024);
        assert_eq!(h.mean(), 207.0);
        assert_eq!(h.nonzero(), vec![(0, 1), (1, 1), (3, 2), (11, 1)]);
        assert_eq!(Histogram::default().mean(), 0.0, "empty mean is 0, not NaN");
    }

    #[test]
    fn report_snapshot_has_all_families() {
        let n = 4;
        let mut p = vec![Vec::new(); n];
        for i in 1..n {
            p[0].push(Op::Recv {
                from: i,
                tag: ANY_TAG,
            });
            p[i].push(Op::Send {
                to: 0,
                bytes: 1_000,
                tag: ANY_TAG,
            });
        }
        let report = Simulation::new(n, MachineParams::cm5_1992())
            .record_trace(true)
            .record_rates(true)
            .run_ops(&p)
            .unwrap();
        let m = Metrics::from_report(&report);
        assert_eq!(m.counters["messages"], 3);
        assert_eq!(m.counters["trace_dropped"], 0);
        assert!(m.counters["solver_recomputes"] > 0);
        assert!(m.gauges["makespan_us"] > 0.0);
        assert!(m.gauges["effective_bandwidth_mb_s"] > 0.0);
        assert!(m.gauges["mean_blocked_fraction"] > 0.0);
        assert!(m.gauges["mean_blocked_fraction"] <= 1.0);
        assert_eq!(m.histograms["message_latency_ns"].count, 3);
        assert!(m.histograms["blocked_time_ns"].count > 0);

        let json = m.to_json();
        assert!(json.contains("\"schema\":\"cm5-metrics/1\""));
        assert!(json.contains("\"messages\": 3"));
        assert!(json.contains("\"message_latency_ns\""));
    }
}
