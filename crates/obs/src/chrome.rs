//! Chrome Trace Format (Perfetto-loadable) JSON export.
//!
//! The export is the JSON-object form of the Trace Event Format: a
//! `traceEvents` array of complete (`"ph":"X"`) spans plus counter
//! (`"ph":"C"`) tracks. Layout:
//!
//! * **pid 0 "nodes"** — one thread (track) per simulated node carrying its
//!   message-transfer and blocked spans, plus one `control` track for
//!   control-network collectives;
//! * **pid 1 "network"** — one counter track per fat-tree level plotting
//!   aggregate link utilization (allocated rate / capacity), sampled at the
//!   flow solver's piecewise-constant rate intervals.
//!
//! Output is deterministic: events are emitted in a fixed sort order and
//! all floats use fixed-precision formatting, so the export is golden-test
//! and byte-comparison friendly (`cmp` across `--jobs` settings).

use cm5_sim::{MachineParams, SimReport, SimTime, Topology};

use crate::links::link_usage;
use crate::schema::schema_field;
use crate::span::SpanStore;

/// Microseconds with fixed precision — Chrome's `ts`/`dur` unit.
fn us(t: SimTime) -> String {
    format!("{:.3}", t.as_micros_f64())
}

fn dur_us(from: SimTime, to: SimTime) -> String {
    format!("{:.3}", to.since(from).as_micros_f64())
}

/// Render one run as Chrome Trace Format JSON.
///
/// `topo` and `params` must be the topology/parameters the report was
/// simulated under (they supply link levels and capacities for the
/// utilization counter tracks).
pub fn chrome_trace(report: &SimReport, topo: &Topology, params: &MachineParams) -> String {
    let store = SpanStore::from_report(report);
    chrome_trace_from_spans(&store, report, topo, params)
}

/// [`chrome_trace`] over a pre-built span store (avoids re-pairing when the
/// caller also renders timelines).
pub fn chrome_trace_from_spans(
    store: &SpanStore,
    report: &SimReport,
    topo: &Topology,
    params: &MachineParams,
) -> String {
    let n = report.nodes.len();
    let control_tid = n;
    let mut ev: Vec<String> = Vec::new();

    // Track metadata: names render in Perfetto's track list.
    ev.push("{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"nodes\"}}".into());
    ev.push("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"network\"}}".into());
    for node in 0..n {
        ev.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{node},\"name\":\"thread_name\",\"args\":{{\"name\":\"node {node}\"}}}}"
        ));
    }
    ev.push(format!(
        "{{\"ph\":\"M\",\"pid\":0,\"tid\":{control_tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"control\"}}}}"
    ));

    // Blocked spans first (per node, chronological) so message transfers
    // nest inside them visually.
    let mut blocked = store.blocked.clone();
    blocked.sort_by_key(|b| (b.node, b.from, b.to));
    for b in &blocked {
        ev.push(format!(
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"blocked\"}}",
            b.node,
            us(b.from),
            dur_us(b.from, b.to)
        ));
    }

    // Message spans on the sender's track.
    let mut messages = store.messages.clone();
    messages.sort_by_key(|m| (m.src, m.from, m.to, m.dst, m.tag));
    for m in &messages {
        ev.push(format!(
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"msg {}->{}\",\"args\":{{\"bytes\":{},\"tag\":{}}}}}",
            m.src,
            us(m.from),
            dur_us(m.from, m.to),
            m.src,
            m.dst,
            m.bytes,
            m.tag
        ));
    }

    // Schedule-step envelopes on the control track, then collectives.
    for s in &store.steps {
        ev.push(format!(
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{control_tid},\"ts\":{},\"dur\":{},\"name\":\"step {}\",\"args\":{{\"messages\":{}}}}}",
            us(s.from),
            dur_us(s.from, s.to),
            s.tag,
            s.messages
        ));
    }
    for c in &store.collectives {
        ev.push(format!(
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{control_tid},\"ts\":{},\"dur\":{},\"name\":\"{}\"}}",
            us(c.from),
            dur_us(c.from, c.to),
            c.what
        ));
    }

    // Per-level utilization counters from the solver's rate samples.
    let usage = link_usage(&report.rate_samples, topo, params);
    for lvl in &usage.levels {
        for &(t, util) in &lvl.series {
            ev.push(format!(
                "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{},\"name\":\"level {} util\",\"args\":{{\"util\":{:.4}}}}}",
                us(t),
                lvl.level,
                util
            ));
        }
    }

    let mut out = String::from("{\n  ");
    out.push_str(&schema_field("trace", 1));
    out.push_str(",\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    for (i, e) in ev.iter().enumerate() {
        out.push_str("    ");
        out.push_str(e);
        out.push_str(if i + 1 < ev.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm5_sim::{FatTree, MachineParams, Op, Simulation, ANY_TAG};

    #[test]
    fn export_is_deterministic_and_tagged() {
        let mut p = vec![Vec::new(); 4];
        p[0].push(Op::Recv {
            from: 1,
            tag: ANY_TAG,
        });
        p[1].push(Op::Send {
            to: 0,
            bytes: 2_000,
            tag: ANY_TAG,
        });
        let params = MachineParams::cm5_1992();
        let run = || {
            Simulation::new(4, params.clone())
                .record_trace(true)
                .record_rates(true)
                .run_ops(&p)
                .unwrap()
        };
        let topo = Topology::FatTree(FatTree::new(4));
        let a = chrome_trace(&run(), &topo, &params);
        let b = chrome_trace(&run(), &topo, &params);
        assert_eq!(a, b, "export must be byte-identical across reruns");
        assert!(a.contains("\"schema\":\"cm5-trace/1\""));
        assert!(a.contains("\"name\":\"msg 1->0\""));
        assert!(a.contains("\"name\":\"blocked\""));
        assert!(a.contains("level 0 util"));
        // Well-formed JSON envelope (no trailing comma before the close).
        assert!(a.trim_end().ends_with("]\n}"));
        assert!(!a.contains(",\n  ]"));
    }
}
