//! # cm5-obs — observability for the CM-5 scheduling simulator
//!
//! A unified tracing, metrics, and timeline-export layer over
//! [`cm5_sim`]'s event stream. The simulator stays minimal: it records flat
//! point events ([`cm5_sim::TraceEvent`]) and per-link rate samples behind
//! opt-in flags with near-zero disabled cost, and this crate turns a
//! finished [`cm5_sim::SimReport`] into every human- and tool-facing view:
//!
//! * [`span`] — typed spans (message, blocked, collective, schedule-step)
//!   paired from the flat trace;
//! * [`chrome`] — deterministic Chrome Trace Format / Perfetto JSON export;
//! * [`links`] — per-link and per-level utilization series from the flow
//!   solver's piecewise-constant rate intervals (the dynamic analogue of
//!   `cm5-verify`'s static contention charging);
//! * [`metrics`] — counters / gauges / log₂-bucket histograms snapshotted
//!   from a run, with versioned JSON rendering;
//! * [`prom`] — Prometheus text exposition for a metrics registry plus an
//!   offline linter for the format;
//! * [`svc`] — service telemetry: per-query request spans threaded through
//!   `cm5-serve`, canonical + Chrome-trace exports, and the flight
//!   recorder;
//! * [`timeline`] — terminal Gantt charts and utilization sparklines;
//! * [`schema`] — the shared `"schema"` version stamp used by every JSON
//!   artifact in the workspace.
//!
//! Everything here is a pure function of the report: observability never
//! alters simulated results (`tests/determinism.rs` pins tracing on/off
//! bit-identity), and every export is byte-deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod links;
pub mod metrics;
pub mod prom;
pub mod schema;
pub mod span;
pub mod svc;
pub mod timeline;

pub use chrome::{chrome_trace, chrome_trace_from_spans};
pub use links::{link_usage, LevelUtilization, LinkPeak, LinkUsage};
pub use metrics::{Histogram, Metrics, HISTOGRAM_BUCKETS};
pub use prom::{lint_prometheus, prometheus_text};
pub use schema::{schema_field, schema_id, SCHEMA_KEY};
pub use span::{BlockedSpan, CollectiveSpan, MessageSpan, SpanStore, StepSpan};
pub use svc::{
    flight_json, spans_chrome_trace, spans_json, FlightRecorder, PhaseKind, PhaseSpan, QueryCtx,
    QuerySpan,
};
pub use timeline::{render_sparklines, render_timeline};
