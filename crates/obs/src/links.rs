//! Per-link and per-level utilization series from solver rate samples.
//!
//! The flow solver's allocation is piecewise-constant between recomputes;
//! [`cm5_sim::Simulation::record_rates`] snapshots the per-link rate sum at
//! every recompute. This module folds those snapshots into:
//!
//! * a **per-level utilization time series** — the dynamic analogue of the
//!   paper's Fig 5 bandwidth plots, where utilization is the aggregate rate
//!   crossing a fat-tree level divided by that level's aggregate capacity;
//! * **per-link peaks** — the hottest instant of every link, comparable to
//!   `cm5-verify`'s static contention charging.

use cm5_sim::{MachineParams, RateSample, SimTime, Topology};

/// Utilization time series of one fat-tree level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelUtilization {
    /// Level index (0 = leaf links).
    pub level: usize,
    /// Aggregate capacity of the level's links (bytes/second).
    pub capacity: f64,
    /// `(sample time, aggregate rate / capacity)` per solver recompute.
    pub series: Vec<(SimTime, f64)>,
}

impl LevelUtilization {
    /// Peak utilization over the series (0.0 for an empty series).
    pub fn peak(&self) -> f64 {
        self.series.iter().map(|&(_, u)| u).fold(0.0, f64::max)
    }
}

/// The hottest observed instant of one physical link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkPeak {
    /// Link index (into [`Topology::link_capacities`] order).
    pub link: u32,
    /// Fat-tree level of the link.
    pub level: usize,
    /// Peak aggregate rate through the link (bytes/second).
    pub rate: f64,
    /// Capacity of the link (bytes/second).
    pub capacity: f64,
    /// When the peak was observed.
    pub at: SimTime,
}

impl LinkPeak {
    /// Peak rate as a fraction of capacity.
    pub fn utilization(&self) -> f64 {
        if self.capacity > 0.0 {
            self.rate / self.capacity
        } else {
            0.0
        }
    }
}

/// Folded utilization view of one run's rate samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkUsage {
    /// One series per fat-tree level, ascending by level.
    pub levels: Vec<LevelUtilization>,
    /// One peak per link that ever carried traffic, ascending by link index.
    pub peaks: Vec<LinkPeak>,
}

impl LinkUsage {
    /// The single hottest link peak by utilization ratio.
    ///
    /// Deterministic: peaks are scanned in ascending link order and only a
    /// strictly greater ratio displaces the current winner.
    pub fn hottest(&self) -> Option<&LinkPeak> {
        let mut best: Option<&LinkPeak> = None;
        for p in &self.peaks {
            if best.is_none_or(|b| p.utilization() > b.utilization()) {
                best = Some(p);
            }
        }
        best
    }
}

/// Fold `samples` (from [`cm5_sim::SimReport::rate_samples`]) into per-level
/// series and per-link peaks for the given topology.
pub fn link_usage(samples: &[RateSample], topo: &Topology, params: &MachineParams) -> LinkUsage {
    let caps = topo.link_capacities(params);
    let num_levels = topo.num_levels();
    let mut level_caps = vec![0.0f64; num_levels];
    for (l, &c) in caps.iter().enumerate() {
        level_caps[topo.link_level(l)] += c;
    }

    let mut levels: Vec<LevelUtilization> = (0..num_levels)
        .map(|level| LevelUtilization {
            level,
            capacity: level_caps[level],
            series: Vec::with_capacity(samples.len()),
        })
        .collect();
    // link index -> (peak rate, time) while scanning; kept sparse.
    let mut peak: Vec<Option<(f64, SimTime)>> = vec![None; caps.len()];
    let mut level_rate = vec![0.0f64; num_levels];

    for s in samples {
        level_rate.fill(0.0);
        for &(link, rate) in &s.link_rates {
            let link = link as usize;
            if link >= caps.len() {
                continue;
            }
            level_rate[topo.link_level(link)] += rate;
            let slot = &mut peak[link];
            if slot.is_none_or(|(best, _)| rate > best) {
                *slot = Some((rate, s.time));
            }
        }
        for (lvl, series) in levels.iter_mut().enumerate() {
            let util = if series.capacity > 0.0 {
                level_rate[lvl] / series.capacity
            } else {
                0.0
            };
            series.series.push((s.time, util));
        }
    }

    let peaks = peak
        .into_iter()
        .enumerate()
        .filter_map(|(link, slot)| {
            slot.map(|(rate, at)| LinkPeak {
                link: link as u32,
                level: topo.link_level(link),
                rate,
                capacity: caps[link],
                at,
            })
        })
        .collect();

    LinkUsage { levels, peaks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm5_sim::{FatTree, MachineParams, Op, Simulation, ANY_TAG};

    #[test]
    fn fan_in_saturates_the_receiver_leaf_link() {
        let n = 4;
        let mut p = vec![Vec::new(); n];
        for i in 1..n {
            p[0].push(Op::Recv {
                from: i,
                tag: ANY_TAG,
            });
            p[i].push(Op::Send {
                to: 0,
                bytes: 10_000,
                tag: ANY_TAG,
            });
        }
        let params = MachineParams::cm5_1992();
        let report = Simulation::new(n, params.clone())
            .record_trace(true)
            .record_rates(true)
            .run_ops(&p)
            .unwrap();
        let topo = Topology::FatTree(FatTree::new(n));
        let usage = link_usage(&report.rate_samples, &topo, &params);

        assert_eq!(usage.levels.len(), topo.num_levels());
        let hot = usage.hottest().expect("traffic flowed");
        // Blocking recvs serialize the fan-in to one flow at a time, each
        // capped at the CMMD software rate, so node 0's leaf link peaks at
        // software_bandwidth / leaf_bandwidth (0.5 on the 1992 machine).
        assert_eq!(hot.level, 0);
        let expected = params.software_bandwidth.min(params.leaf_bandwidth) / params.leaf_bandwidth;
        assert!(
            (hot.utilization() - expected).abs() < 1e-9,
            "leaf bottleneck should run at the per-flow cap: got {}, want {expected}",
            hot.utilization()
        );
        // Leaf-level aggregate utilization peaks while all three flows run.
        assert!(usage.levels[0].peak() > 0.0);
        // The final sample (all flows drained) shows zero utilization.
        let last = usage.levels[0].series.last().unwrap();
        assert_eq!(last.1, 0.0, "rates drop to zero after the last drain");
    }

    #[test]
    fn empty_samples_produce_empty_series() {
        let params = MachineParams::cm5_1992();
        let topo = Topology::FatTree(FatTree::new(8));
        let usage = link_usage(&[], &topo, &params);
        assert_eq!(usage.levels.len(), topo.num_levels());
        assert!(usage.levels.iter().all(|l| l.series.is_empty()));
        assert!(usage.peaks.is_empty());
        assert!(usage.hottest().is_none());
    }
}
