//! Prometheus text exposition: rendering a [`Metrics`] registry and a tiny
//! offline linter for the format.
//!
//! [`prometheus_text`] turns the registry into the classic text format
//! (`# TYPE` headers, `cm5_`-prefixed sample lines, cumulative histogram
//! buckets with `le` labels and a `+Inf` terminator) so a running service
//! can expose `GET /metrics` without any dependency. [`lint_prometheus`]
//! validates a scrape offline — CI uses it to prove the endpoint emits
//! well-formed exposition, no Prometheus server required.

use crate::metrics::{Histogram, Metrics};

/// Largest `u64` that survives the `f64` round-trip Prometheus clients
/// perform; log₂ bucket bounds are clamped to it.
const MAX_SAFE: u64 = 1 << 53;

/// Inclusive upper bound of log₂ bucket `k` (samples are integers, so the
/// half-open `[2^(k-1), 2^k)` bucket has inclusive bound `2^k - 1`).
fn bucket_le(k: usize) -> u64 {
    if k == 0 {
        0
    } else if k >= 53 {
        MAX_SAFE
    } else {
        (1u64 << k) - 1
    }
}

fn render_histogram(out: &mut String, name: &str, h: &Histogram) {
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for (bucket, count) in h.nonzero() {
        cumulative += count;
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
            bucket_le(bucket)
        ));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
    out.push_str(&format!("{name}_sum {}\n", h.sum));
    out.push_str(&format!("{name}_count {}\n", h.count));
}

/// Render a registry in Prometheus text exposition format.
///
/// Metric names are the registry keys prefixed with `cm5_`; histograms
/// render cumulative `_bucket{le="..."}` samples over the non-empty log₂
/// buckets plus the mandatory `+Inf`/`_sum`/`_count` triple. Output order
/// is the registry's (sorted), so the scrape is deterministic for a fixed
/// registry state.
pub fn prometheus_text(m: &Metrics) -> String {
    let mut out = String::new();
    for (k, v) in &m.counters {
        out.push_str(&format!("# TYPE cm5_{k} counter\ncm5_{k} {v}\n"));
    }
    for (k, v) in &m.gauges {
        out.push_str(&format!("# TYPE cm5_{k} gauge\ncm5_{k} {v:.6}\n"));
    }
    for (k, h) in &m.histograms {
        render_histogram(&mut out, &format!("cm5_{k}"), h);
    }
    out
}

fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_value(s: &str) -> bool {
    matches!(s, "+Inf" | "-Inf" | "NaN") || s.parse::<f64>().is_ok()
}

/// Split `name{labels}` into the name and the optional label body.
fn split_labels(sample: &str) -> Result<(&str, Option<&str>), String> {
    match sample.find('{') {
        None => Ok((sample, None)),
        Some(open) => {
            let rest = &sample[open + 1..];
            let close = rest
                .rfind('}')
                .ok_or_else(|| format!("unclosed label brace in {sample:?}"))?;
            if close + 1 != rest.len() {
                return Err(format!("trailing junk after labels in {sample:?}"));
            }
            Ok((&sample[..open], Some(&rest[..close])))
        }
    }
}

/// Extract the `le` label value from a label body like `le="42"`.
fn le_value(labels: &str) -> Result<String, String> {
    for pair in labels.split(',') {
        let (k, v) = pair
            .split_once('=')
            .ok_or_else(|| format!("malformed label pair {pair:?}"))?;
        let v = v
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted label value in {pair:?}"))?;
        if k.trim() == "le" {
            return Ok(v.to_string());
        }
    }
    Err(format!("histogram bucket without le label: {labels:?}"))
}

/// Validate Prometheus text exposition; returns the number of samples.
///
/// Checks performed: every sample line is `name[{labels}] value` with a
/// legal metric name and numeric value; `# TYPE` lines are well-formed,
/// name a known type, and are not repeated; metrics declared `histogram`
/// expose only `_bucket`/`_sum`/`_count` samples, with `le`-labelled
/// cumulative non-decreasing buckets ending in `le="+Inf"` whose count
/// equals `_count`.
pub fn lint_prometheus(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    let mut declared: Vec<(String, String)> = Vec::new();
    // Per-histogram running state: (last cumulative, saw +Inf, inf value).
    let mut hist: Vec<(String, u64, Option<u64>)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        let at = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(ty), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(at(format!("malformed TYPE line: {line:?}")));
            };
            if !valid_name(name) {
                return Err(at(format!("bad metric name {name:?}")));
            }
            if !matches!(
                ty,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(at(format!("unknown metric type {ty:?}")));
            }
            if declared.iter().any(|(n, _)| n == name) {
                return Err(at(format!("duplicate TYPE for {name:?}")));
            }
            declared.push((name.to_string(), ty.to_string()));
            if ty == "histogram" {
                hist.push((name.to_string(), 0, None));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP / comments.
        }
        let (sample, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| at(format!("sample without value: {line:?}")))?;
        if !valid_value(value) {
            return Err(at(format!("bad sample value {value:?}")));
        }
        let (name, labels) = split_labels(sample.trim_end()).map_err(&at)?;
        if !valid_name(name) {
            return Err(at(format!("bad metric name {name:?}")));
        }
        samples += 1;
        // Histogram shape checks for declared histograms.
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        let is_declared_hist =
            |n: &str| declared.iter().any(|(dn, dt)| dn == n && dt == "histogram");
        if is_declared_hist(name) && base == name {
            return Err(at(format!(
                "histogram {name:?} sample lacks _bucket/_sum/_count suffix"
            )));
        }
        if name.ends_with("_bucket") && is_declared_hist(base) {
            let le = le_value(labels.unwrap_or_default()).map_err(&at)?;
            let v: u64 = value
                .parse()
                .map_err(|_| at(format!("non-integer bucket count {value:?}")))?;
            let state = hist
                .iter_mut()
                .find(|(n, _, _)| n == base)
                .expect("declared histogram has state");
            if v < state.1 {
                return Err(at(format!("bucket counts for {base:?} not cumulative")));
            }
            state.1 = v;
            if le == "+Inf" {
                state.2 = Some(v);
            } else if state.2.is_some() {
                return Err(at(format!("bucket after +Inf for {base:?}")));
            }
        }
        if name.ends_with("_count") && is_declared_hist(base) {
            let v: u64 = value
                .parse()
                .map_err(|_| at(format!("non-integer count {value:?}")))?;
            let state = hist
                .iter()
                .find(|(n, _, _)| n == base)
                .expect("declared histogram has state");
            match state.2 {
                None => return Err(at(format!("histogram {base:?} missing le=\"+Inf\""))),
                Some(inf) if inf != v => {
                    return Err(at(format!(
                        "histogram {base:?}: +Inf bucket {inf} != _count {v}"
                    )))
                }
                Some(_) => {}
            }
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics() -> Metrics {
        let mut m = Metrics::default();
        m.counters.insert("requests", 42);
        m.gauges.insert("hit_rate", 0.5);
        let mut h = Histogram::default();
        for v in [0, 1, 3, 900, 1024] {
            h.record(v);
        }
        m.histograms.insert("latency_ns", h);
        m
    }

    #[test]
    fn rendered_exposition_passes_the_linter() {
        let text = prometheus_text(&sample_metrics());
        assert!(text.contains("# TYPE cm5_requests counter\ncm5_requests 42\n"));
        assert!(text.contains("cm5_hit_rate 0.500000"));
        assert!(text.contains("cm5_latency_ns_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("cm5_latency_ns_sum 1928"));
        let n = lint_prometheus(&text).expect("own exposition must lint clean");
        assert!(n >= 8, "expected all samples counted, got {n}");
    }

    #[test]
    fn bucket_bounds_are_inclusive_powers_of_two() {
        assert_eq!(bucket_le(0), 0);
        assert_eq!(bucket_le(1), 1);
        assert_eq!(bucket_le(2), 3);
        assert_eq!(bucket_le(11), 2047);
        assert_eq!(bucket_le(64), MAX_SAFE);
        let text = prometheus_text(&sample_metrics());
        // 900 lands in bucket 10 → le="1023"; 1024 in bucket 11 → le="2047".
        assert!(text.contains("le=\"1023\""));
        assert!(text.contains("le=\"2047\""));
    }

    #[test]
    fn linter_rejects_malformed_exposition() {
        for (bad, why) in [
            ("cm5 requests 42\n", "space in name"),
            ("cm5_requests notanumber\n", "bad value"),
            ("# TYPE cm5_x rainbow\ncm5_x 1\n", "unknown type"),
            (
                "# TYPE cm5_x counter\n# TYPE cm5_x counter\ncm5_x 1\n",
                "duplicate TYPE",
            ),
            ("# TYPE cm5_h histogram\ncm5_h 1\n", "bare histogram sample"),
            (
                "# TYPE cm5_h histogram\ncm5_h_bucket{le=\"1\"} 5\ncm5_h_bucket{le=\"+Inf\"} 3\ncm5_h_count 3\n",
                "non-cumulative buckets",
            ),
            (
                "# TYPE cm5_h histogram\ncm5_h_bucket{le=\"+Inf\"} 3\ncm5_h_count 4\n",
                "+Inf != count",
            ),
            (
                "# TYPE cm5_h histogram\ncm5_h_count 4\n",
                "missing +Inf",
            ),
        ] {
            assert!(lint_prometheus(bad).is_err(), "linter accepted {why}: {bad:?}");
        }
    }

    #[test]
    fn linter_accepts_labels_and_comments() {
        let ok = "# HELP cm5_x a counter\n# TYPE cm5_x counter\ncm5_x{shard=\"3\"} 7\n";
        assert_eq!(lint_prometheus(ok), Ok(1));
    }
}
