//! Golden test: the Chrome-trace export for PEX on 8 nodes is pinned byte
//! for byte.
//!
//! The export is a pure function of the (deterministic) simulation, so any
//! diff here means either the simulator's timing changed or the exporter's
//! format changed — both must be deliberate. To re-bless after a deliberate
//! change:
//!
//! ```sh
//! CM5_BLESS=1 cargo test -p cm5-obs --test golden_chrome
//! ```

use cm5_core::prelude::*;
use cm5_obs::chrome_trace;
use cm5_sim::{FatTree, MachineParams, Simulation, Topology};

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/pex8_trace.json");

fn pex8_trace() -> String {
    let n = 8;
    let params = MachineParams::cm5_1992();
    let programs = lower(&ExchangeAlg::Pex.schedule(n, 256));
    let topo = Topology::FatTree(FatTree::new(n));
    let report = Simulation::new_on(topo.clone(), params.clone())
        .record_trace(true)
        .record_rates(true)
        .run_ops(&programs)
        .expect("pex8 runs");
    chrome_trace(&report, &topo, &params)
}

#[test]
fn pex8_chrome_trace_is_pinned() {
    let actual = pex8_trace();
    if std::env::var_os("CM5_BLESS").is_some() {
        std::fs::write(GOLDEN, &actual).expect("write golden");
    }
    let expected =
        std::fs::read_to_string(GOLDEN).expect("golden file exists (bless with CM5_BLESS=1)");
    assert_eq!(
        actual, expected,
        "Chrome-trace export for PEX@8 drifted from the golden file; \
         if the change is deliberate, re-bless with CM5_BLESS=1"
    );
}

#[test]
fn pex8_chrome_trace_is_stable_across_runs() {
    assert_eq!(pex8_trace(), pex8_trace());
}
