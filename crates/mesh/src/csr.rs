//! Compressed sparse row matrices and graphs.

/// A CSR sparse matrix (also used as an adjacency structure with unit
/// values).
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    /// Row pointer array, length `rows + 1`.
    pub row_ptr: Vec<usize>,
    /// Column indices, sorted within each row.
    pub col_idx: Vec<usize>,
    /// Values, parallel to `col_idx`.
    pub values: Vec<f64>,
    /// Number of columns.
    pub cols: usize,
}

impl Csr {
    /// Build from COO triplets (duplicates are summed).
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Csr {
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        sorted.sort_unstable_by_key(|a| (a.0, a.1));
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        let mut last: Option<(usize, usize)> = None;
        for &(r, c, v) in &sorted {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of range");
            if last == Some((r, c)) {
                *values.last_mut().expect("entry present") += v;
                continue;
            }
            col_idx.push(c);
            values.push(v);
            row_ptr[r + 1] += 1;
            last = Some((r, c));
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        Csr {
            row_ptr,
            col_idx,
            values,
            cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The (column, value) entries of row `r`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// y = A·x.
    #[allow(clippy::needless_range_loop)] // r indexes both the matrix and y
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows());
        for r in 0..self.rows() {
            let mut acc = 0.0;
            for (c, v) in self.row(r) {
                acc += v * x[c];
            }
            y[r] = acc;
        }
    }

    /// Graph Laplacian (degree on the diagonal, −1 off-diagonal) of an
    /// undirected edge list, plus `shift` added to the diagonal to make it
    /// positive definite for CG.
    pub fn laplacian(n: usize, edges: &[(usize, usize)], shift: f64) -> Csr {
        let mut triplets = Vec::with_capacity(edges.len() * 2 + n);
        let mut degree = vec![0usize; n];
        for &(a, b) in edges {
            assert!(a != b && a < n && b < n, "bad edge ({a},{b})");
            degree[a] += 1;
            degree[b] += 1;
            triplets.push((a, b, -1.0));
            triplets.push((b, a, -1.0));
        }
        for (v, &d) in degree.iter().enumerate() {
            triplets.push((v, v, d as f64 + shift));
        }
        Csr::from_triplets(n, n, &triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_triplets_basic() {
        let m = Csr::from_triplets(2, 3, &[(0, 1, 2.0), (1, 0, 3.0), (0, 2, 4.0)]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.nnz(), 3);
        let row0: Vec<_> = m.row(0).collect();
        assert_eq!(row0, vec![(1, 2.0), (2, 4.0)]);
    }

    #[test]
    fn duplicates_summed() {
        let m = Csr::from_triplets(2, 2, &[(0, 1, 2.0), (0, 1, 3.0)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.row(0).next(), Some((1, 5.0)));
    }

    #[test]
    fn spmv_identity() {
        let m = Csr::from_triplets(3, 3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        m.spmv(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn laplacian_rows_sum_to_shift() {
        let edges = [(0, 1), (1, 2), (2, 0), (2, 3)];
        let l = Csr::laplacian(4, &edges, 0.5);
        for r in 0..4 {
            let sum: f64 = l.row(r).map(|(_, v)| v).sum();
            assert!((sum - 0.5).abs() < 1e-12, "row {r} sums to {sum}");
        }
        // Symmetric.
        for r in 0..4 {
            for (c, v) in l.row(r) {
                let back: f64 = l
                    .row(c)
                    .find(|&(cc, _)| cc == r)
                    .map(|(_, vv)| vv)
                    .expect("symmetric entry");
                assert_eq!(v, back);
            }
        }
    }
}
