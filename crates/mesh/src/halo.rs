//! Halo-exchange pattern extraction.
//!
//! When a mesh is partitioned, each iteration of a solver needs the values
//! of the *halo*: vertices owned by a neighbouring part that are adjacent
//! to locally-owned vertices. This module derives, from a partition and an
//! edge list, exactly which vertex values each part must send to each other
//! part — and converts that into the byte matrix ([`Pattern`]) the paper's
//! irregular schedulers consume.

use std::collections::BTreeSet;

use cm5_core::Pattern;

/// The halo structure of a partitioned graph.
#[derive(Debug, Clone)]
pub struct Halo {
    parts: usize,
    /// `send_lists[p][q]` = vertices owned by `p` whose values part `q`
    /// needs, sorted. Empty when `p == q` or no adjacency.
    send_lists: Vec<Vec<Vec<usize>>>,
}

impl Halo {
    /// Build the halo of `edges` under `assignment` into `parts` parts.
    pub fn build(parts: usize, assignment: &[usize], edges: &[(usize, usize)]) -> Halo {
        let mut sets: Vec<Vec<BTreeSet<usize>>> = vec![vec![BTreeSet::new(); parts]; parts];
        for &(a, b) in edges {
            let (pa, pb) = (assignment[a], assignment[b]);
            if pa != pb {
                // Part pb computes on vertex b and needs a's value, so pa
                // sends a to pb — and symmetrically.
                sets[pa][pb].insert(a);
                sets[pb][pa].insert(b);
            }
        }
        Halo {
            parts,
            send_lists: sets
                .into_iter()
                .map(|row| row.into_iter().map(|s| s.into_iter().collect()).collect())
                .collect(),
        }
    }

    /// Build a `k`-ring halo: part `q` needs every vertex within graph
    /// distance `k` of its owned set (k = 1 is [`Halo::build`]; Euler-style
    /// edge-based upwind schemes with higher-order reconstruction need
    /// k = 2). `n` is the vertex count.
    pub fn build_k(parts: usize, assignment: &[usize], edges: &[(usize, usize)], k: usize) -> Halo {
        assert!(k >= 1, "halo depth must be at least 1");
        let n = assignment.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut sets: Vec<Vec<BTreeSet<usize>>> = vec![vec![BTreeSet::new(); parts]; parts];
        // BFS to depth k from each part's owned set.
        let mut dist = vec![usize::MAX; n];
        let mut frontier: Vec<usize> = Vec::new();
        #[allow(clippy::needless_range_loop)] // q is the part id, not a position
        for q in 0..parts {
            dist.iter_mut().for_each(|d| *d = usize::MAX);
            frontier.clear();
            for (v, &p) in assignment.iter().enumerate() {
                if p == q {
                    dist[v] = 0;
                    frontier.push(v);
                }
            }
            for depth in 1..=k {
                let mut next = Vec::new();
                for &v in &frontier {
                    for &w in &adj[v] {
                        if dist[w] == usize::MAX {
                            dist[w] = depth;
                            next.push(w);
                            let owner = assignment[w];
                            if owner != q {
                                sets[owner][q].insert(w);
                            }
                        }
                    }
                }
                frontier = next;
            }
        }
        Halo {
            parts,
            send_lists: sets
                .into_iter()
                .map(|row| row.into_iter().map(|s| s.into_iter().collect()).collect())
                .collect(),
        }
    }

    /// Number of parts.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Vertices part `p` must send to part `q`.
    pub fn send_list(&self, p: usize, q: usize) -> &[usize] {
        &self.send_lists[p][q]
    }

    /// The communication byte matrix: entry (p, q) is
    /// `send_list(p, q).len() × bytes_per_value`, exactly the paper's
    /// 'Pattern' array for one halo exchange.
    pub fn pattern(&self, bytes_per_value: u64) -> Pattern {
        let mut pat = Pattern::new(self.parts);
        for p in 0..self.parts {
            for q in 0..self.parts {
                if p != q {
                    let len = self.send_lists[p][q].len() as u64;
                    if len > 0 {
                        pat.set(p, q, len * bytes_per_value);
                    }
                }
            }
        }
        pat
    }

    /// Total vertex values crossing part boundaries per exchange.
    pub fn total_halo_values(&self) -> usize {
        self.send_lists
            .iter()
            .flat_map(|row| row.iter())
            .map(|l| l.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2×4 path grid split into two parts down the middle:
    ///
    /// ```text
    ///  0 - 1 | 2 - 3
    ///  |   | \|   |
    ///  4 - 5 | 6 - 7      (plus the diagonal 1-6 to test asymmetry)
    /// ```
    #[test]
    fn small_halo_by_hand() {
        let edges = [
            (0, 1),
            (1, 2),
            (2, 3),
            (4, 5),
            (5, 6),
            (6, 7),
            (0, 4),
            (1, 5),
            (2, 6),
            (3, 7),
            (1, 6),
        ];
        let assignment = [0, 0, 1, 1, 0, 0, 1, 1];
        let h = Halo::build(2, &assignment, &edges);
        // Part 0 owns {0,1,4,5}; cut edges: (1,2), (5,6), (2,6)? no — (2,6)
        // both in part 1. Cut: (1,2), (5,6), (1,6).
        assert_eq!(h.send_list(0, 1), &[1, 5]);
        assert_eq!(h.send_list(1, 0), &[2, 6]);
        assert_eq!(h.total_halo_values(), 4);
        let pat = h.pattern(8);
        assert_eq!(pat.get(0, 1), 16);
        assert_eq!(pat.get(1, 0), 16);
        assert_eq!(pat.density(), 1.0); // both of the 2 ordered pairs talk
    }

    #[test]
    fn no_cut_edges_means_empty_pattern() {
        let edges = [(0, 1), (2, 3)];
        let assignment = [0, 0, 1, 1];
        let h = Halo::build(2, &assignment, &edges);
        assert_eq!(h.total_halo_values(), 0);
        assert_eq!(h.pattern(4).nonzero_pairs(), 0);
    }

    #[test]
    fn duplicate_boundary_vertex_counted_once() {
        // Vertex 0 adjacent to two vertices of part 1: sent once.
        let edges = [(0, 1), (0, 2)];
        let assignment = [0, 1, 1];
        let h = Halo::build(2, &assignment, &edges);
        assert_eq!(h.send_list(0, 1), &[0]);
        assert_eq!(h.send_list(1, 0), &[1, 2]);
    }

    #[test]
    fn pattern_support_is_symmetric_for_undirected_graphs() {
        let edges = [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)];
        let assignment = [0, 1, 2, 3];
        let h = Halo::build(4, &assignment, &edges);
        let pat = h.pattern(8);
        assert!(pat.symmetric_support());
    }
}
