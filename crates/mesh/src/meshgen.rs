//! Seeded mesh generators — including the stand-ins for the paper's
//! datasets.
//!
//! Table 12 evaluates the irregular schedulers on communication patterns
//! captured from a conjugate-gradient solver (16K-vertex system) and an
//! unstructured-mesh Euler solver (meshes of 545, 2K, 3K and 9K vertices,
//! originally from Mavriplis' airfoil computations). Those meshes are not
//! available; we substitute Delaunay triangulations of seeded jittered point
//! clouds of the same sizes, which reproduce the statistics Table 12
//! actually depends on (pattern density and bytes per communicating pair).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::delaunay::{delaunay, Triangulation};
use crate::point::Point;

/// A jittered `nx × ny` grid: regular spacing with `jitter` (fraction of a
/// cell, `0.0..0.5`) of seeded uniform displacement. Jitter breaks the grid
/// degeneracy and makes the triangulation genuinely unstructured.
pub fn jittered_grid(nx: usize, ny: usize, jitter: f64, seed: u64) -> Vec<Point> {
    assert!(nx >= 2 && ny >= 2, "grid needs at least 2×2 points");
    assert!((0.0..0.5).contains(&jitter), "jitter must be in [0, 0.5)");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts = Vec::with_capacity(nx * ny);
    for j in 0..ny {
        for i in 0..nx {
            let dx: f64 = rng.gen_range(-jitter..=jitter);
            let dy: f64 = rng.gen_range(-jitter..=jitter);
            // Keep the domain boundary exact: jittered hull points create
            // long sliver edges along nearly-collinear boundary rows, which
            // would add physically meaningless long-range halo pairs.
            let boundary = i == 0 || j == 0 || i == nx - 1 || j == ny - 1;
            if boundary {
                pts.push(Point::new(i as f64, j as f64));
            } else {
                pts.push(Point::new(i as f64 + dx, j as f64 + dy));
            }
        }
    }
    pts
}

/// `n` seeded uniform random points in the unit square, scaled by 100.
pub fn random_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
        .collect()
}

/// The sizes of the paper's four Euler meshes (Table 12 column heads).
pub const EULER_MESH_SIZES: [usize; 4] = [545, 2048, 3072, 9216];

/// Vertex count of the CG system ("Conj. Grad. 16K").
pub const CG_MESH_SIZE: usize = 16384;

/// Build the stand-in for one of the paper's Euler meshes by vertex count
/// (one of [`EULER_MESH_SIZES`]; other counts also work). Deterministic for
/// a given size.
pub fn euler_mesh(vertices: usize) -> Triangulation {
    // Jittered grids triangulate quickly and give boundary/interior
    // structure like a real CFD mesh; pad the grid to at least `vertices`
    // then keep exactly `vertices` points.
    let side = (vertices as f64).sqrt().ceil() as usize;
    let mut pts = jittered_grid(side, side.max(2), 0.35, 0xE17E5 + vertices as u64);
    pts.truncate(vertices);
    delaunay(&pts)
}

/// Build the stand-in for the CG solver's 16K-vertex mesh.
pub fn cg_mesh() -> Triangulation {
    let side = (CG_MESH_SIZE as f64).sqrt().ceil() as usize;
    let mut pts = jittered_grid(side, side, 0.3, 0xC64AD);
    pts.truncate(CG_MESH_SIZE);
    delaunay(&pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jittered_grid_is_deterministic() {
        let a = jittered_grid(8, 8, 0.3, 5);
        let b = jittered_grid(8, 8, 0.3, 5);
        assert_eq!(a.len(), 64);
        for (p, q) in a.iter().zip(&b) {
            assert_eq!((p.x, p.y), (q.x, q.y));
        }
        let c = jittered_grid(8, 8, 0.3, 6);
        assert!(a.iter().zip(&c).any(|(p, q)| p.x != q.x));
    }

    #[test]
    fn euler_mesh_545_shape() {
        let m = euler_mesh(545);
        assert_eq!(m.num_points(), 545);
        assert!(m.triangles().len() > 900, "expected ~2n triangles");
        // Mean vertex degree of a planar triangulation is just under 6.
        let deg = 2.0 * m.edges().len() as f64 / m.num_points() as f64;
        assert!(deg > 5.0 && deg < 6.5, "degree {deg}");
    }

    #[test]
    fn meshes_are_connected() {
        let m = euler_mesh(545);
        let n = m.num_points();
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &m.edges() {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 0;
        while let Some(v) = stack.pop() {
            count += 1;
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        assert_eq!(count, n, "mesh must be connected");
    }
}
