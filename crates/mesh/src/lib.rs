//! # cm5-mesh — unstructured-mesh substrate
//!
//! Everything needed to recreate the paper's "real problem" communication
//! patterns (Table 12) from scratch:
//!
//! * [`delaunay`](mod@delaunay): Bowyer–Watson Delaunay triangulation of 2-D point sets;
//! * [`meshgen`]: seeded generators, including stand-ins for the paper's
//!   Euler meshes (545/2K/3K/9K vertices) and the CG 16K system;
//! * [`partition`]: recursive coordinate bisection;
//! * [`csr`]: CSR sparse matrices (graph Laplacians, SpMV);
//! * [`halo`]: halo-exchange extraction — partition + edges → the byte
//!   matrix the irregular schedulers consume.
//!
//! ```
//! use cm5_mesh::prelude::*;
//!
//! let mesh = euler_mesh(545);
//! let parts = rcb(mesh.points(), 32);
//! let halo = Halo::build(32, &parts, &mesh.edges());
//! let pattern = halo.pattern(32); // 4 conserved f64s per halo vertex
//! assert!(pattern.density() > 0.1 && pattern.density() < 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod delaunay;
pub mod halo;
pub mod meshgen;
pub mod partition;
pub mod point;

pub use csr::Csr;
pub use delaunay::{delaunay, Triangulation};
pub use halo::Halo;
pub use point::Point;

/// Convenient glob import of the whole public surface.
pub mod prelude {
    pub use crate::csr::Csr;
    pub use crate::delaunay::{delaunay, Triangulation};
    pub use crate::halo::Halo;
    pub use crate::meshgen::{
        cg_mesh, euler_mesh, jittered_grid, random_points, CG_MESH_SIZE, EULER_MESH_SIZES,
    };
    pub use crate::partition::{noisy_strips, part_sizes, rcb, strips};
    pub use crate::point::{circumcenter, in_circumcircle, orient2d, Point};
}
