//! Bowyer–Watson Delaunay triangulation.
//!
//! Incremental insertion with walk-based point location and cavity
//! retriangulation — the classic algorithm, O(n log n)-ish on the jittered
//! grids and random clouds the workloads use. The unstructured meshes the
//! paper's Euler and CG experiments run on (Mavriplis' airfoil meshes) are
//! substituted by Delaunay triangulations of seeded point sets of the same
//! sizes; see DESIGN.md §2.

use std::collections::HashMap;

use crate::point::{in_circumcircle, orient2d, Point};

const NONE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Tri {
    /// Vertex indices, counter-clockwise.
    v: [u32; 3],
    /// `n[i]` = triangle across the edge opposite `v[i]` (edge
    /// `v[i+1]→v[i+2]`), or `NONE`.
    n: [u32; 3],
    alive: bool,
}

/// A Delaunay triangulation of a point set.
#[derive(Debug, Clone)]
pub struct Triangulation {
    points: Vec<Point>,
    /// Alive triangles only, compacted, each CCW, vertices < `points.len()`.
    triangles: Vec<[usize; 3]>,
}

impl Triangulation {
    /// The input points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of input points.
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// The triangles (each counter-clockwise).
    pub fn triangles(&self) -> &[[usize; 3]] {
        &self.triangles
    }

    /// Unique undirected edges, each as `(low, high)`, sorted.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut edges = Vec::with_capacity(self.triangles.len() * 3);
        for t in &self.triangles {
            for i in 0..3 {
                let a = t[i];
                let b = t[(i + 1) % 3];
                edges.push((a.min(b), a.max(b)));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// Exhaustive Delaunay check: no point strictly inside any triangle's
    /// circumcircle. O(T·N); for tests.
    pub fn is_delaunay(&self) -> bool {
        for t in &self.triangles {
            let (a, b, c) = (self.points[t[0]], self.points[t[1]], self.points[t[2]]);
            for (pi, &p) in self.points.iter().enumerate() {
                if pi == t[0] || pi == t[1] || pi == t[2] {
                    continue;
                }
                if in_circumcircle(a, b, c, p) {
                    return false;
                }
            }
        }
        true
    }
}

/// Triangulate `points` (at least 3, no exact duplicates).
pub fn delaunay(points: &[Point]) -> Triangulation {
    assert!(points.len() >= 3, "need at least 3 points");
    let n = points.len();
    // Bounding box → a super-triangle comfortably enclosing everything.
    let (mut minx, mut miny, mut maxx, mut maxy) = (f64::MAX, f64::MAX, f64::MIN, f64::MIN);
    for p in points {
        minx = minx.min(p.x);
        miny = miny.min(p.y);
        maxx = maxx.max(p.x);
        maxy = maxy.max(p.y);
    }
    let dx = (maxx - minx).max(1.0);
    let dy = (maxy - miny).max(1.0);
    let d = dx.max(dy) * 64.0;
    let cx = (minx + maxx) / 2.0;
    let cy = (miny + maxy) / 2.0;
    let mut pts: Vec<Point> = points.to_vec();
    pts.push(Point::new(cx - d, cy - d));
    pts.push(Point::new(cx + d, cy - d));
    pts.push(Point::new(cx, cy + d));
    let s0 = n as u32;
    let (s1, s2) = (s0 + 1, s0 + 2);

    let mut tris: Vec<Tri> = vec![Tri {
        v: [s0, s1, s2],
        n: [NONE; 3],
        alive: true,
    }];
    let mut last = 0u32;
    // Scratch buffers reused across insertions.
    let mut cavity: Vec<u32> = Vec::new();
    let mut in_cavity: Vec<bool> = Vec::new();
    let mut stack: Vec<u32> = Vec::new();
    let mut boundary: Vec<(u32, u32, u32)> = Vec::new(); // (a, b, outer)

    for pi in 0..n as u32 {
        let p = pts[pi as usize];
        let start = locate(&tris, &pts, last, p);
        // Grow the cavity: all connected triangles whose circumcircle
        // contains p.
        cavity.clear();
        boundary.clear();
        in_cavity.clear();
        in_cavity.resize(tris.len(), false);
        stack.clear();
        stack.push(start);
        in_cavity[start as usize] = true;
        while let Some(t) = stack.pop() {
            cavity.push(t);
            for i in 0..3 {
                let nb = tris[t as usize].n[i];
                if nb != NONE && !in_cavity[nb as usize] {
                    let tv = &tris[nb as usize].v;
                    if in_circumcircle(
                        pts[tv[0] as usize],
                        pts[tv[1] as usize],
                        pts[tv[2] as usize],
                        p,
                    ) {
                        in_cavity[nb as usize] = true;
                        stack.push(nb);
                    }
                }
            }
        }
        // Boundary edges of the cavity (kept in the orientation of the dying
        // triangle, so each new triangle (p, a, b) is CCW).
        for &t in &cavity {
            for i in 0..3 {
                let nb = tris[t as usize].n[i];
                if nb == NONE || !in_cavity[nb as usize] {
                    let a = tris[t as usize].v[(i + 1) % 3];
                    let b = tris[t as usize].v[(i + 2) % 3];
                    boundary.push((a, b, nb));
                }
            }
        }
        for &t in &cavity {
            tris[t as usize].alive = false;
        }
        // Retriangulate the star: one new triangle per boundary edge.
        let mut spoke: HashMap<(u32, u32), (u32, usize)> = HashMap::new();
        let mut first_new = NONE;
        for &(a, b, outer) in &boundary {
            let idx = tris.len() as u32;
            if first_new == NONE {
                first_new = idx;
            }
            tris.push(Tri {
                v: [pi, a, b],
                n: [outer, NONE, NONE], // n[0] is across (a,b)
                alive: true,
            });
            in_cavity.push(false);
            // Repair the outer triangle's back-pointer.
            if outer != NONE {
                let ot = &mut tris[outer as usize];
                for i in 0..3 {
                    let oa = ot.v[(i + 1) % 3];
                    let ob = ot.v[(i + 2) % 3];
                    if (oa == b && ob == a) || (oa == a && ob == b) {
                        ot.n[i] = idx;
                        break;
                    }
                }
            }
            // Link spokes: edge (p,a) is opposite b (slot 2); edge (b,p) is
            // opposite a (slot 1).
            for (key, slot) in [((pi, a), 2usize), ((b, pi), 1usize)] {
                let ukey = (key.0.min(key.1), key.0.max(key.1));
                if let Some(&(other, oslot)) = spoke.get(&ukey) {
                    tris[idx as usize].n[slot] = other;
                    tris[other as usize].n[oslot] = idx;
                } else {
                    spoke.insert(ukey, (idx, slot));
                }
            }
        }
        last = first_new;
    }

    // Drop triangles touching the super-triangle and compact.
    let triangles: Vec<[usize; 3]> = tris
        .iter()
        .filter(|t| t.alive && t.v.iter().all(|&v| v < s0))
        .map(|t| [t.v[0] as usize, t.v[1] as usize, t.v[2] as usize])
        .collect();
    Triangulation {
        points: points.to_vec(),
        triangles,
    }
}

/// Find a triangle whose circumcircle contains `p`, walking from `start`.
/// Falls back to a linear scan if the walk stalls (near-degenerate inputs).
fn locate(tris: &[Tri], pts: &[Point], start: u32, p: Point) -> u32 {
    let mut cur = start;
    if !tris[cur as usize].alive {
        cur = tris
            .iter()
            .position(|t| t.alive)
            .expect("no alive triangles") as u32;
    }
    let mut steps = 0usize;
    let cap = 4 * tris.len() + 64;
    'walk: loop {
        steps += 1;
        if steps > cap {
            break;
        }
        let t = &tris[cur as usize];
        for i in 0..3 {
            let a = pts[t.v[(i + 1) % 3] as usize];
            let b = pts[t.v[(i + 2) % 3] as usize];
            if orient2d(a, b, p) < 0.0 {
                let nb = t.n[i];
                if nb == NONE {
                    break 'walk; // outside the hull of alive region
                }
                cur = nb;
                continue 'walk;
            }
        }
        return cur; // p inside (or on boundary of) this triangle
    }
    // Fallback: scan for any alive triangle whose circumcircle holds p.
    for (i, t) in tris.iter().enumerate() {
        if t.alive
            && in_circumcircle(
                pts[t.v[0] as usize],
                pts[t.v[1] as usize],
                pts[t.v[2] as usize],
                p,
            )
        {
            return i as u32;
        }
    }
    panic!("point location failed: duplicate or wildly out-of-range point {p:?}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ]
    }

    #[test]
    fn triangle_of_three() {
        let t = delaunay(&[
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 1.0),
        ]);
        assert_eq!(t.triangles().len(), 1);
        assert!(t.is_delaunay());
    }

    #[test]
    fn square_has_two_triangles() {
        let t = delaunay(&square());
        assert_eq!(t.triangles().len(), 2);
        assert_eq!(t.edges().len(), 5);
        assert!(t.is_delaunay());
    }

    #[test]
    fn all_triangles_ccw() {
        let pts = pseudo_random(200, 42);
        let t = delaunay(&pts);
        for tri in t.triangles() {
            assert!(
                orient2d(pts[tri[0]], pts[tri[1]], pts[tri[2]]) > 0.0,
                "triangle {tri:?} not CCW"
            );
        }
    }

    #[test]
    fn euler_formula_holds() {
        // For a triangulation of a point set whose hull has h vertices:
        // triangles = 2n − 2 − h, edges = 3n − 3 − h.
        let pts = pseudo_random(300, 7);
        let t = delaunay(&pts);
        let n = pts.len();
        let tri = t.triangles().len();
        let e = t.edges().len();
        // Euler: V − E + F = 2 (F counts the outer face):
        assert_eq!(n as i64 - e as i64 + (tri as i64 + 1), 2);
    }

    #[test]
    fn delaunay_property_random_cloud() {
        let pts = pseudo_random(250, 99);
        let t = delaunay(&pts);
        assert!(t.is_delaunay());
    }

    #[test]
    fn delaunay_property_jittered_grid() {
        let mut pts = Vec::new();
        let mut s = 12345u64;
        for i in 0..14 {
            for j in 0..14 {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let jx = ((s >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 0.4;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let jy = ((s >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 0.4;
                pts.push(Point::new(i as f64 + jx, j as f64 + jy));
            }
        }
        let t = delaunay(&pts);
        assert!(t.is_delaunay());
        // Every vertex participates.
        let mut seen = vec![false; pts.len()];
        for tri in t.triangles() {
            for &v in tri {
                seen[v] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    fn pseudo_random(n: usize, seed: u64) -> Vec<Point> {
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).max(1);
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect()
    }
}
