//! Recursive coordinate bisection (RCB) partitioning.
//!
//! The 1992-era standard for distributing unstructured meshes (and the
//! method the runtime-scheduling literature around the paper used): split
//! the point set at the median of its wider axis, recurse on each half.
//! Produces balanced, geometrically compact parts whose halo patterns have
//! the density/byte statistics Table 12 reports.

use crate::point::Point;

/// Assign each point to one of `parts` partitions. `parts` may be any value
/// ≥ 1 (non-powers of two split proportionally). Returns `part[i]` per
/// point; part sizes differ by at most one per bisection chain.
pub fn rcb(points: &[Point], parts: usize) -> Vec<usize> {
    assert!(parts >= 1, "need at least one part");
    assert!(
        points.len() >= parts,
        "cannot split {} points into {parts} parts",
        points.len()
    );
    let mut assignment = vec![0usize; points.len()];
    let mut indices: Vec<usize> = (0..points.len()).collect();
    split(points, &mut indices, 0, parts, &mut assignment);
    assignment
}

fn split(
    points: &[Point],
    indices: &mut [usize],
    first_part: usize,
    parts: usize,
    assignment: &mut Vec<usize>,
) {
    if parts == 1 {
        for &i in indices.iter() {
            assignment[i] = first_part;
        }
        return;
    }
    // Split proportionally: left gets floor(parts/2)/parts of the points.
    let left_parts = parts / 2;
    let right_parts = parts - left_parts;
    let cut = indices.len() * left_parts / parts;
    // Wider axis of the current bounding box.
    let (mut minx, mut maxx, mut miny, mut maxy) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &i in indices.iter() {
        let p = points[i];
        minx = minx.min(p.x);
        maxx = maxx.max(p.x);
        miny = miny.min(p.y);
        maxy = maxy.max(p.y);
    }
    let by_x = (maxx - minx) >= (maxy - miny);
    // Partial sort: nth_element at the cut position by the chosen axis
    // (ties broken by index for determinism).
    indices.select_nth_unstable_by(cut.min(indices.len() - 1), |&a, &b| {
        let ka = if by_x { points[a].x } else { points[a].y };
        let kb = if by_x { points[b].x } else { points[b].y };
        ka.partial_cmp(&kb)
            .expect("mesh coordinates are finite")
            .then(a.cmp(&b))
    });
    let (left, right) = indices.split_at_mut(cut);
    split(points, left, first_part, left_parts, assignment);
    split(
        points,
        right,
        first_part + left_parts,
        right_parts,
        assignment,
    );
}

/// One-dimensional strip partitioning: sort by x and chop into `parts`
/// contiguous, equally-sized strips. The classic 1992 decomposition for
/// solvers on mostly-isotropic meshes; each part talks to ~2 neighbours
/// with long, fat boundaries — the shape of the paper's CG pattern
/// (9 % density, ~640 B messages).
pub fn strips(points: &[Point], parts: usize) -> Vec<usize> {
    assert!(parts >= 1 && points.len() >= parts);
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_unstable_by(|&a, &b| {
        points[a]
            .x
            .partial_cmp(&points[b].x)
            .expect("finite coordinates")
            .then(a.cmp(&b))
    });
    let mut assignment = vec![0usize; points.len()];
    for (rank, &i) in order.iter().enumerate() {
        assignment[i] = (rank * parts / points.len()).min(parts - 1);
    }
    assignment
}

/// Strip partitioning of a *noisy* coordinate key: like [`strips`] but each
/// point's x is perturbed by seeded uniform noise of amplitude `noise`
/// before sorting. This emulates the file-order block decompositions of
/// 1992 solver codes, whose parts interpenetrate geometrically — the
/// mechanism behind the 29–44 % pattern densities of the paper's Euler
/// datasets (Table 12).
pub fn noisy_strips(points: &[Point], parts: usize, noise: f64, seed: u64) -> Vec<usize> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    assert!(parts >= 1 && points.len() >= parts);
    let mut rng = StdRng::seed_from_u64(seed);
    let keys: Vec<f64> = points
        .iter()
        .map(|p| {
            p.x + if noise > 0.0 {
                rng.gen_range(-noise..=noise)
            } else {
                0.0
            }
        })
        .collect();
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_unstable_by(|&a, &b| {
        keys[a]
            .partial_cmp(&keys[b])
            .expect("finite keys")
            .then(a.cmp(&b))
    });
    let mut assignment = vec![0usize; points.len()];
    for (rank, &i) in order.iter().enumerate() {
        assignment[i] = (rank * parts / points.len()).min(parts - 1);
    }
    assignment
}

/// Part sizes given an assignment.
pub fn part_sizes(assignment: &[usize], parts: usize) -> Vec<usize> {
    let mut sizes = vec![0usize; parts];
    for &p in assignment {
        sizes[p] += 1;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meshgen::jittered_grid;

    #[test]
    fn balanced_power_of_two() {
        let pts = jittered_grid(32, 32, 0.3, 1);
        let asg = rcb(&pts, 32);
        let sizes = part_sizes(&asg, 32);
        assert_eq!(sizes.iter().sum::<usize>(), 1024);
        assert!(sizes.iter().all(|&s| s == 32), "{sizes:?}");
    }

    #[test]
    fn balanced_non_power_of_two() {
        let pts = jittered_grid(20, 20, 0.2, 2);
        let asg = rcb(&pts, 5);
        let sizes = part_sizes(&asg, 5);
        assert_eq!(sizes.iter().sum::<usize>(), 400);
        let (lo, hi) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
        assert!(hi - lo <= 2, "{sizes:?}");
    }

    #[test]
    fn parts_are_geometrically_compact() {
        // On a uniform grid, every part's bounding box should cover far less
        // than the whole domain.
        let pts = jittered_grid(32, 32, 0.1, 3);
        let asg = rcb(&pts, 16);
        for part in 0..16 {
            let (mut minx, mut maxx, mut miny, mut maxy) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
            for (i, p) in pts.iter().enumerate() {
                if asg[i] == part {
                    minx = minx.min(p.x);
                    maxx = maxx.max(p.x);
                    miny = miny.min(p.y);
                    maxy = maxy.max(p.y);
                }
            }
            let area = (maxx - minx) * (maxy - miny);
            assert!(area < 32.0 * 32.0 / 8.0, "part {part} too spread: {area}");
        }
    }

    #[test]
    fn single_part_is_identity() {
        let pts = jittered_grid(4, 4, 0.1, 4);
        let asg = rcb(&pts, 1);
        assert!(asg.iter().all(|&p| p == 0));
    }

    #[test]
    fn deterministic() {
        let pts = jittered_grid(16, 16, 0.25, 9);
        assert_eq!(rcb(&pts, 8), rcb(&pts, 8));
    }
}
