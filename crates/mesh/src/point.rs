//! 2-D points and the geometric predicates Delaunay triangulation needs.

/// A point in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point {
    /// Construct a point.
    #[inline]
    pub fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist2(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

/// Sign of the signed area of triangle (a, b, c):
/// positive = counter-clockwise, negative = clockwise, zero = collinear.
#[inline]
pub fn orient2d(a: Point, b: Point, c: Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Whether `p` lies strictly inside the circumcircle of the
/// counter-clockwise triangle (a, b, c).
///
/// Uses the standard 3×3 lifted determinant. The workloads feed jittered
/// grids and seeded random clouds, where f64 arithmetic is comfortably
/// adequate; the triangulator also defends itself against near-degenerate
/// inputs by checking triangle orientation explicitly.
#[inline]
pub fn in_circumcircle(a: Point, b: Point, c: Point, p: Point) -> bool {
    let adx = a.x - p.x;
    let ady = a.y - p.y;
    let bdx = b.x - p.x;
    let bdy = b.y - p.y;
    let cdx = c.x - p.x;
    let cdy = c.y - p.y;
    let ad = adx * adx + ady * ady;
    let bd = bdx * bdx + bdy * bdy;
    let cd = cdx * cdx + cdy * cdy;
    let det =
        adx * (bdy * cd - bd * cdy) - ady * (bdx * cd - bd * cdx) + ad * (bdx * cdy - bdy * cdx);
    det > 0.0
}

/// Circumcenter of triangle (a, b, c); returns `None` for (near-)degenerate
/// triangles.
pub fn circumcenter(a: Point, b: Point, c: Point) -> Option<Point> {
    let d = 2.0 * orient2d(a, b, c);
    if d.abs() < 1e-30 {
        return None;
    }
    let a2 = a.x * a.x + a.y * a.y;
    let b2 = b.x * b.x + b.y * b.y;
    let c2 = c.x * c.x + c.y * c.y;
    let ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
    let uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
    Some(Point::new(ux, uy))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation_signs() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(0.0, 1.0);
        assert!(orient2d(a, b, c) > 0.0); // CCW
        assert!(orient2d(a, c, b) < 0.0); // CW
        assert_eq!(orient2d(a, b, Point::new(2.0, 0.0)), 0.0); // collinear
    }

    #[test]
    fn circumcircle_membership() {
        // Unit right triangle: circumcircle centered at (0.5, 0.5), r²=0.5.
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(0.0, 1.0);
        assert!(in_circumcircle(a, b, c, Point::new(0.5, 0.5)));
        assert!(in_circumcircle(a, b, c, Point::new(0.9, 0.9)));
        assert!(!in_circumcircle(a, b, c, Point::new(1.3, 1.3)));
        assert!(!in_circumcircle(a, b, c, Point::new(-1.0, -1.0)));
    }

    #[test]
    fn circumcenter_matches_membership() {
        let a = Point::new(0.1, 0.2);
        let b = Point::new(2.3, 0.4);
        let c = Point::new(1.1, 1.9);
        let cc = circumcenter(a, b, c).unwrap();
        let r2 = cc.dist2(&a);
        assert!((cc.dist2(&b) - r2).abs() < 1e-9);
        assert!((cc.dist2(&c) - r2).abs() < 1e-9);
    }

    #[test]
    fn degenerate_circumcenter_is_none() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 1.0);
        let c = Point::new(2.0, 2.0);
        assert!(circumcenter(a, b, c).is_none());
    }
}
