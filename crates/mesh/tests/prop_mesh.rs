//! Property-based tests of the mesh substrate: Delaunay invariants,
//! partition balance, and halo structure over random inputs.

use cm5_mesh::prelude::*;
use proptest::prelude::*;

fn points_strategy(min: usize, max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), min..max).prop_map(|pts| {
        // Deduplicate near-coincident points (the triangulator requires
        // distinct sites); snapping to a coarse grid then deduping is the
        // simplest guarantee.
        let mut out: Vec<Point> = Vec::new();
        'outer: for (x, y) in pts {
            for p in &out {
                if (p.x - x).abs() < 1e-6 && (p.y - y).abs() < 1e-6 {
                    continue 'outer;
                }
            }
            out.push(Point::new(x, y));
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Delaunay invariants on random clouds: empty circumcircles, CCW
    /// triangles, Euler's formula.
    #[test]
    fn delaunay_invariants(pts in points_strategy(3, 60)) {
        prop_assume!(pts.len() >= 3);
        // Skip fully collinear degenerate clouds.
        let collinear = pts.windows(3).all(|w| {
            orient2d(w[0], w[1], w[2]).abs() < 1e-9
        });
        prop_assume!(!collinear);
        let t = delaunay(&pts);
        prop_assert!(!t.triangles().is_empty());
        prop_assert!(t.is_delaunay(), "empty-circumcircle violated");
        for tri in t.triangles() {
            prop_assert!(orient2d(pts[tri[0]], pts[tri[1]], pts[tri[2]]) > 0.0);
        }
        // Euler: V − E + (T + 1 outer face) = 2.
        let v = pts.len() as i64;
        let e = t.edges().len() as i64;
        let f = t.triangles().len() as i64 + 1;
        prop_assert_eq!(v - e + f, 2);
    }

    /// RCB partitions are balanced within one element along every split
    /// chain, for any part count that divides sensibly.
    #[test]
    fn rcb_balance(pts in points_strategy(40, 120), parts in 2usize..9) {
        prop_assume!(pts.len() >= parts * 2);
        let asg = rcb(&pts, parts);
        let sizes = part_sizes(&asg, parts);
        prop_assert_eq!(sizes.iter().sum::<usize>(), pts.len());
        let lo = *sizes.iter().min().unwrap();
        let hi = *sizes.iter().max().unwrap();
        // Proportional splitting keeps parts within a few elements.
        prop_assert!(hi - lo <= parts, "sizes {sizes:?}");
        prop_assert!(lo > 0, "empty part: {sizes:?}");
    }

    /// Strip partitions are monotone in x: a point in a lower strip never
    /// lies strictly right of a point in a higher strip... up to ties.
    #[test]
    fn strips_are_monotone(pts in points_strategy(30, 80), parts in 2usize..6) {
        prop_assume!(pts.len() >= parts);
        let asg = strips(&pts, parts);
        for (i, a) in pts.iter().enumerate() {
            for (j, b) in pts.iter().enumerate() {
                if asg[i] + 1 < asg[j] {
                    prop_assert!(
                        a.x <= b.x,
                        "strip {} point x={} right of strip {} point x={}",
                        asg[i], a.x, asg[j], b.x
                    );
                }
            }
        }
    }

    /// Halos of undirected graphs have symmetric support, and the 2-ring
    /// halo contains the 1-ring halo pair-for-pair.
    #[test]
    fn halo_monotone_in_depth(pts in points_strategy(24, 70), parts in 2usize..5) {
        prop_assume!(pts.len() >= parts * 3);
        let collinear = pts.windows(3).all(|w| {
            orient2d(w[0], w[1], w[2]).abs() < 1e-9
        });
        prop_assume!(!collinear);
        let t = delaunay(&pts);
        let asg = rcb(&pts, parts);
        let edges = t.edges();
        let h1 = Halo::build(parts, &asg, &edges);
        let h2 = Halo::build_k(parts, &asg, &edges, 2);
        let p1 = h1.pattern(8);
        let p2 = h2.pattern(8);
        prop_assert!(p1.symmetric_support());
        prop_assert!(p2.symmetric_support());
        for a in 0..parts {
            for b in 0..parts {
                if a != b {
                    // Depth 2 sends at least what depth 1 sends.
                    prop_assert!(
                        p2.get(a, b) >= p1.get(a, b),
                        "({a},{b}): {} < {}",
                        p2.get(a, b),
                        p1.get(a, b)
                    );
                    // And the 1-ring send list is a subset of the 2-ring's.
                    for v in h1.send_list(a, b) {
                        prop_assert!(h2.send_list(a, b).contains(v));
                    }
                }
            }
        }
    }

    /// CSR Laplacian: symmetric, rows sum to the shift, SpMV matches a
    /// dense reference.
    #[test]
    fn laplacian_spmv_matches_dense(
        n in 3usize..20,
        edge_picks in prop::collection::vec((0usize..20, 0usize..20), 2..40),
        xs in prop::collection::vec(-10.0f64..10.0, 20),
    ) {
        let edges: Vec<(usize, usize)> = edge_picks
            .into_iter()
            .map(|(a, b)| (a % n, b % n))
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        prop_assume!(!edges.is_empty());
        let m = Csr::laplacian(n, &edges, 1.5);
        // Dense reference.
        let mut dense = vec![vec![0.0f64; n]; n];
        for &(a, b) in &edges {
            dense[a][b] -= 1.0;
            dense[b][a] -= 1.0;
            dense[a][a] += 1.0;
            dense[b][b] += 1.0;
        }
        for (i, row) in dense.iter_mut().enumerate() {
            row[i] += 1.5;
        }
        let x: Vec<f64> = xs[..n].to_vec();
        let mut y = vec![0.0; n];
        m.spmv(&x, &mut y);
        for i in 0..n {
            let want: f64 = (0..n).map(|j| dense[i][j] * x[j]).sum();
            prop_assert!((y[i] - want).abs() < 1e-9, "row {i}: {} vs {want}", y[i]);
        }
    }
}
