//! Figures 6–8 benchmark: complete exchange across machine sizes at the
//! paper's message sizes (0, 256, 512, 1920 B).

use cm5_bench::runners::exchange_time;
use cm5_core::regular::ExchangeAlg;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Criterion keeps to <=128 nodes so `cargo bench` stays quick; the `report`
/// binary sweeps the full 32-256 range of the figures.
const BENCH_SIZES: [usize; 3] = [32, 64, 128];

fn bench(c: &mut Criterion) {
    for (fig, bytes) in [
        ("fig6", 0u64),
        ("fig6b", 256),
        ("fig7", 512),
        ("fig8", 1920),
    ] {
        let mut g = c.benchmark_group(format!("{fig}_exchange_scaling_{bytes}B"));
        g.sample_size(10)
            .measurement_time(std::time::Duration::from_secs(2));
        for alg in [ExchangeAlg::Pex, ExchangeAlg::Rex, ExchangeAlg::Bex] {
            for &n in &BENCH_SIZES {
                g.bench_with_input(BenchmarkId::new(alg.name(), n), &n, |b, &n| {
                    b.iter(|| black_box(exchange_time(alg, n, bytes)))
                });
            }
        }
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
