//! Figure 5 benchmark: complete exchange on 32 nodes across message sizes.
//! Criterion measures the simulator's wall-clock; the simulated times are
//! what `report fig5` prints.

use cm5_bench::runners::exchange_time;
use cm5_core::regular::ExchangeAlg;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_exchange_32");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));
    for alg in ExchangeAlg::ALL {
        for bytes in [0u64, 256, 2048] {
            g.bench_with_input(BenchmarkId::new(alg.name(), bytes), &bytes, |b, &bytes| {
                b.iter(|| black_box(exchange_time(alg, 32, bytes)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
