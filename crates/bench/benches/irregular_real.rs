//! Table 12 benchmark: the four schedulers on the real workload patterns
//! (CG 16K + the four Euler meshes).

use cm5_bench::runners::{irregular_time, table12_patterns};
use cm5_core::irregular::IrregularAlg;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let patterns = table12_patterns(32);
    let mut g = c.benchmark_group("table12_irregular_real");
    g.sample_size(10);
    for (name, pattern) in &patterns {
        for alg in IrregularAlg::ALL {
            g.bench_with_input(BenchmarkId::new(alg.name(), name), pattern, |b, pattern| {
                b.iter(|| black_box(irregular_time(alg, pattern)))
            });
        }
    }
    g.finish();

    // End-to-end pattern extraction (mesh → partition → halo → pattern).
    let mut g = c.benchmark_group("table12_pattern_extraction");
    g.sample_size(10);
    g.bench_function("euler_2k", |b| {
        b.iter(|| black_box(cm5_workloads::euler_pattern(2048, 32)))
    });
    g.bench_function("cg_16k", |b| {
        b.iter(|| black_box(cm5_workloads::cg_pattern(32)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
