//! Table 5 benchmark: the 2-D FFT cost model across array sizes, exchange
//! algorithms and machine sizes.

use cm5_bench::runners::fft_time;
use cm5_core::regular::ExchangeAlg;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5_fft2d");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));
    // 32 processors: all four algorithms. 256 processors: only the pairwise
    // family (Linear at 256 nodes serializes 65k rendezvous and would
    // dominate the bench's wall clock; `report table5` still measures it).
    for side in [256usize, 1024] {
        for alg in ExchangeAlg::ALL {
            g.bench_with_input(
                BenchmarkId::new(format!("{}_p32", alg.name()), side),
                &side,
                |b, &side| b.iter(|| black_box(fft_time(alg, 32, side))),
            );
        }
        for alg in [ExchangeAlg::Pex, ExchangeAlg::Bex] {
            g.bench_with_input(
                BenchmarkId::new(format!("{}_p256", alg.name()), side),
                &side,
                |b, &side| b.iter(|| black_box(fft_time(alg, 256, side))),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
