//! Sweep-executor benchmark: the Figure 5 column (32 nodes, all message
//! sizes × algorithms) run through [`SweepRunner`] at different worker
//! counts. On a multi-core host the jobs>1 rows should approach
//! jobs=1 / cores; on a single core they only measure scheduling overhead.

use cm5_bench::runners::{exchange_time, FIG5_MSG_SIZES};
use cm5_bench::sweep::SweepRunner;
use cm5_core::regular::ExchangeAlg;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cells: Vec<(ExchangeAlg, u64)> = FIG5_MSG_SIZES
        .iter()
        .flat_map(|&bytes| ExchangeAlg::ALL.map(|alg| (alg, bytes)))
        .collect();
    let mut g = c.benchmark_group("sweep_fig5_grid");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5));
    for jobs in [1usize, 2, 4] {
        let runner = SweepRunner::new(jobs);
        g.bench_with_input(BenchmarkId::new("jobs", jobs), &runner, |b, runner| {
            b.iter(|| {
                black_box(runner.run(&cells, |_, &(alg, bytes)| exchange_time(alg, 32, bytes)))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
