//! Table 11 benchmark: the four irregular schedulers on synthetic patterns
//! (schedule construction + simulated execution).

use cm5_bench::runners::irregular_time;
use cm5_core::irregular::IrregularAlg;
use cm5_workloads::synthetic::synthetic_pattern_exact;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table11_irregular_synthetic");
    g.sample_size(10);
    for alg in IrregularAlg::ALL {
        for density in [10u32, 50, 75] {
            let pattern = synthetic_pattern_exact(32, density as f64 / 100.0, 256, 0x7AB1E);
            g.bench_with_input(
                BenchmarkId::new(alg.name(), format!("{density}pct")),
                &pattern,
                |b, pattern| b.iter(|| black_box(irregular_time(alg, pattern))),
            );
        }
    }
    g.finish();

    // Scheduling cost alone (the paper amortizes it over iterations).
    let mut g = c.benchmark_group("schedule_construction");
    g.sample_size(20);
    let pattern = synthetic_pattern_exact(32, 0.5, 256, 0x7AB1E);
    for alg in IrregularAlg::ALL {
        g.bench_function(alg.name(), |b| b.iter(|| black_box(alg.schedule(&pattern))));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
