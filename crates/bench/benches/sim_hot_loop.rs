//! The network hot path end to end: complete exchanges and a dense
//! irregular schedule under the incremental max-min solver, plus the
//! 128-node REX cell re-run under the retained `--rates full` oracle so
//! the solver speedup (the PR's ≥3× target) shows up in the same output.

use cm5_bench::perf::perf_cases;
use cm5_sim::{MachineParams, RateSolver, Simulation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_hot_loop");
    g.sample_size(20);
    let cases = perf_cases();
    for case in &cases {
        g.bench_with_input(
            BenchmarkId::new("incremental", case.name),
            &case.programs,
            |b, programs| {
                let sim = Simulation::new(case.n, MachineParams::cm5_1992());
                b.iter(|| black_box(sim.run_ops(programs).unwrap().messages))
            },
        );
    }
    // The ablation oracle on the heaviest regular cell: wall-clock here
    // divided by incremental/rex_128 above is the solver speedup.
    let rex_128 = cases
        .iter()
        .find(|c| c.name == "rex_128")
        .expect("rex_128 in the perf grid");
    g.bench_with_input(
        BenchmarkId::new("full_oracle", rex_128.name),
        &rex_128.programs,
        |b, programs| {
            let mut params = MachineParams::cm5_1992();
            params.rate_solver = RateSolver::Full;
            let sim = Simulation::new(rex_128.n, params);
            b.iter(|| black_box(sim.run_ops(programs).unwrap().messages))
        },
    );
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
