//! Design-choice ablations beyond the paper (DESIGN.md §4):
//! rendezvous vs eager sends, max-min vs equal-share fairness, fat-tree
//! thinning sweep, and barrier-per-step lowering.

use cm5_bench::runners::exchange_time_with;
use cm5_core::prelude::*;
use cm5_sim::{FairnessModel, MachineParams, SendMode, Simulation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    // 1. The synchronous-communication constraint (LEX rendezvous vs eager).
    for (name, mode) in [
        ("rendezvous", SendMode::Rendezvous),
        ("eager", SendMode::Eager),
    ] {
        let mut params = MachineParams::cm5_1992();
        params.send_mode = mode;
        g.bench_with_input(BenchmarkId::new("lex_send_mode", name), &params, |b, p| {
            b.iter(|| black_box(exchange_time_with(ExchangeAlg::Lex, 32, 256, p)))
        });
    }

    // 2. Fairness model under root contention (PEX).
    for (name, fairness) in [
        ("maxmin", FairnessModel::MaxMin),
        ("equal_share", FairnessModel::EqualShare),
    ] {
        let mut params = MachineParams::cm5_1992();
        params.fairness = fairness;
        g.bench_with_input(BenchmarkId::new("pex_fairness", name), &params, |b, p| {
            b.iter(|| black_box(exchange_time_with(ExchangeAlg::Pex, 32, 1920, p)))
        });
    }

    // 3. Fat-tree thinning: BEX's edge disappears on an unthinned tree.
    for (name, upper) in [("thinned_5MBps", 5.0e6), ("unthinned_20MBps", 20.0e6)] {
        let mut params = MachineParams::cm5_1992();
        params.upper_bandwidth = upper;
        params.level1_bandwidth = upper.max(10.0e6);
        g.bench_with_input(BenchmarkId::new("bex_thinning", name), &params, |b, p| {
            b.iter(|| black_box(exchange_time_with(ExchangeAlg::Bex, 32, 1920, p)))
        });
    }

    // 4. Crystal router (the paper's cited prior art) vs greedy, either
    //    side of the aggregation crossover.
    for (name, bytes) in [("tiny_8B", 8u64), ("fat_512B", 512)] {
        let pattern = Pattern::seeded_random(32, 0.5, bytes, 42);
        for (label, which) in [("crystal", true), ("greedy", false)] {
            g.bench_with_input(
                BenchmarkId::new(format!("crystal_vs_greedy_{label}"), name),
                &pattern,
                |b, pattern| {
                    let params = MachineParams::cm5_1992();
                    b.iter(|| {
                        let schedule = if which {
                            cm5_core::irregular::crystal(pattern)
                        } else {
                            gs(pattern)
                        };
                        black_box(run_schedule(&schedule, &params).unwrap().makespan)
                    })
                },
            );
        }
    }

    // 5. Topology counterfactual: the same PEX schedule on fat tree vs
    //    hypercube.
    {
        use cm5_sim::{FatTree, Hypercube, Topology};
        for (name, topo) in [
            ("fat_tree", Topology::FatTree(FatTree::new(32))),
            ("hypercube", Topology::Hypercube(Hypercube::new(32))),
        ] {
            let programs = lower(&pex(32, 1920));
            g.bench_with_input(
                BenchmarkId::new("pex_topology", name),
                &programs,
                |b, programs| {
                    let sim = Simulation::new_on(topo.clone(), MachineParams::cm5_1992());
                    b.iter(|| black_box(sim.run_ops(programs).unwrap().makespan))
                },
            );
        }
    }

    // 6. Barrier-per-step lowering vs the paper's loose synchronization.
    for (name, barrier) in [("loose", false), ("barriered", true)] {
        let schedule = pex(32, 512);
        let programs = lower_with(
            &schedule,
            &LowerOptions {
                barrier_between_steps: barrier,
                ..Default::default()
            },
        );
        g.bench_with_input(
            BenchmarkId::new("pex_step_sync", name),
            &programs,
            |b, programs| {
                let sim = Simulation::new(32, MachineParams::cm5_1992());
                b.iter(|| black_box(sim.run_ops(programs).unwrap().makespan))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
