//! Advisor overhead: what a runtime pays to ask "which algorithm?".
//!
//! Three regimes, coldest to hottest: pricing every candidate from
//! scratch (`recommend_uncached`), a fresh advisor whose cache misses on
//! every call, and the steady state where the quantized decision key
//! hits the memoized answer. The cached path is the one `--alg auto`
//! and the workloads inspector sit on, so it must stay trivially cheap
//! next to even a single 40 µs message overhead.

use cm5_model::prelude::*;
use cm5_sim::{FatTree, MachineParams};
use cm5_workloads::synthetic::synthetic_pattern_exact;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let params = MachineParams::cm5_1992();
    let tree = FatTree::new(32);
    let exchange = Workload::Exchange { n: 32, bytes: 1024 };
    let pattern = synthetic_pattern_exact(32, 0.25, 256, 0x7AB1E);
    let stats = PatternStats::of(&pattern, &tree);
    let irregular = Workload::Irregular(stats.clone());

    let mut g = c.benchmark_group("advisor_overhead");
    g.sample_size(50)
        .measurement_time(std::time::Duration::from_secs(2));

    g.bench_function("uncached_exchange", |b| {
        b.iter(|| black_box(Advisor::recommend_uncached(&exchange, &params, &tree)))
    });
    g.bench_function("uncached_irregular", |b| {
        b.iter(|| black_box(Advisor::recommend_uncached(&irregular, &params, &tree)))
    });
    g.bench_function("cold_cache_exchange", |b| {
        b.iter(|| {
            let advisor = Advisor::new();
            black_box(advisor.recommend(&exchange, &params, &tree))
        })
    });
    let warm = Advisor::new();
    warm.recommend(&exchange, &params, &tree);
    warm.recommend(&irregular, &params, &tree);
    g.bench_function("cached_exchange", |b| {
        b.iter(|| black_box(warm.recommend(&exchange, &params, &tree)))
    });
    g.bench_function("cached_irregular", |b| {
        b.iter(|| black_box(warm.recommend(&irregular, &params, &tree)))
    });
    g.bench_function("stats_pass_32x32", |b| {
        b.iter(|| black_box(PatternStats::of(&pattern, &tree)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
