//! Simulator microbenchmarks: event-core throughput and the network model's
//! rate recomputation.

use cm5_bench::runners::pingpong_programs;
use cm5_sim::{MachineParams, Simulation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_micro");
    g.sample_size(20);
    for msgs in [100usize, 1000] {
        let programs = pingpong_programs(msgs, 64);
        g.bench_with_input(
            BenchmarkId::new("pingpong", msgs),
            &programs,
            |b, programs| {
                let sim = Simulation::new(2, MachineParams::cm5_1992());
                b.iter(|| black_box(sim.run_ops(programs).unwrap().messages))
            },
        );
    }
    // Dense contention: complete exchange (max-min recomputation stress).
    for n in [32usize, 128] {
        g.bench_with_input(BenchmarkId::new("pex_exchange", n), &n, |b, &n| {
            let programs = cm5_core::exec::exchange_programs(cm5_core::ExchangeAlg::Pex, n, 1024);
            let sim = Simulation::new(n, MachineParams::cm5_1992());
            b.iter(|| black_box(sim.run_ops(&programs).unwrap().messages))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
