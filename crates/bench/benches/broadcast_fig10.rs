//! Figures 10–11 benchmark: broadcast algorithms across message and machine
//! sizes.

use cm5_bench::runners::{broadcast_time, MACHINE_SIZES};
use cm5_core::broadcast::BroadcastAlg;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_broadcast_32");
    g.sample_size(10);
    for alg in BroadcastAlg::ALL {
        for bytes in [256u64, 2048, 16384] {
            g.bench_with_input(BenchmarkId::new(alg.name(), bytes), &bytes, |b, &bytes| {
                b.iter(|| black_box(broadcast_time(alg, 32, bytes)))
            });
        }
    }
    g.finish();

    let mut g = c.benchmark_group("fig11_broadcast_scaling_2048B");
    g.sample_size(10);
    for alg in [BroadcastAlg::Recursive, BroadcastAlg::System] {
        for &n in &MACHINE_SIZES {
            g.bench_with_input(BenchmarkId::new(alg.name(), n), &n, |b, &n| {
                b.iter(|| black_box(broadcast_time(alg, n, 2048)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
