//! Observability overhead: the same PEX exchange with the trace/rate sinks
//! disabled vs fully enabled.
//!
//! The disabled path must be in the noise — recording is guarded by one
//! branch per event — and the enabled path documents the real cost of
//! filling the trace ring and sampling per-link rates (expect a measurable
//! but small constant factor; the trace also grows the report, so the
//! enabled numbers include building those vectors).

use cm5_core::{exec::exchange_programs, ExchangeAlg};
use cm5_sim::{MachineParams, Simulation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(20);
    for n in [16usize, 32] {
        let programs = exchange_programs(ExchangeAlg::Pex, n, 1024);
        g.bench_with_input(BenchmarkId::new("disabled", n), &programs, |b, programs| {
            let sim = Simulation::new(n, MachineParams::cm5_1992());
            b.iter(|| black_box(sim.run_ops(programs).unwrap().messages))
        });
        g.bench_with_input(BenchmarkId::new("enabled", n), &programs, |b, programs| {
            let sim = Simulation::new(n, MachineParams::cm5_1992())
                .record_trace(true)
                .record_rates(true);
            b.iter(|| {
                let report = sim.run_ops(programs).unwrap();
                black_box((report.messages, report.trace.len()))
            })
        });
        // Bounded ring: same recording cost, constant memory.
        g.bench_with_input(
            BenchmarkId::new("enabled_ring_1k", n),
            &programs,
            |b, programs| {
                let sim = Simulation::new(n, MachineParams::cm5_1992())
                    .record_trace(true)
                    .trace_capacity(1024);
                b.iter(|| {
                    let report = sim.run_ops(programs).unwrap();
                    black_box((report.messages, report.trace_dropped))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
