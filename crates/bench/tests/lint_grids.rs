//! The benchmark grids only measure schedules the verifier accepts: a
//! dirty cell would benchmark a broken schedule and poison the figures.

use cm5_bench::sweep::{exchange_grid, irregular_grid};
use cm5_core::prelude::*;
use cm5_verify::{exchange_policy, irregular_policy, verify_schedule};

#[test]
fn every_exchange_grid_cell_verifies_clean() {
    for cell in exchange_grid() {
        let pattern = Pattern::complete_exchange(cell.n, cell.bytes);
        let report = verify_schedule(
            &cell.alg.schedule(cell.n, cell.bytes),
            Some(&pattern),
            &exchange_policy(cell.alg),
        );
        assert!(
            report.is_clean(),
            "{} n={} bytes={}:\n{}",
            cell.alg.name(),
            cell.n,
            cell.bytes,
            report.render_human()
        );
    }
}

#[test]
fn every_irregular_grid_cell_verifies_clean() {
    for cell in irregular_grid(&[0.1, 0.3, 0.5], &[16, 256, 1024]) {
        // Exactly the pattern `irregular_report` simulates for this cell.
        let pattern = cm5_workloads::synthetic::synthetic_pattern_exact(
            32,
            cell.density,
            cell.msg,
            0x7AB1E + cell.seed,
        );
        let report = verify_schedule(
            &cell.alg.schedule(&pattern),
            Some(&pattern),
            &irregular_policy(cell.alg),
        );
        assert!(
            report.is_clean(),
            "{} density={} msg={} seed={}:\n{}",
            cell.alg.name(),
            cell.density,
            cell.msg,
            cell.seed,
            report.render_human()
        );
    }
}
