//! Parallel sweep executor for the paper's experiment grids.
//!
//! The `report` binary and the regression tests both walk the same grid:
//! algorithm × message size × machine size (× density for the irregular
//! tables). Every cell is an independent simulation — each worker owns its
//! own [`Simulation`] and [`cm5_sim::network::Network`], so cells can run
//! on a pool of threads without sharing mutable state.
//!
//! Determinism is preserved *structurally*, not by luck: workers pull cell
//! indices from a queue and write each result into the slot reserved for
//! that index, and the merged output is read back in index order. The
//! output of [`SweepRunner::run`] is therefore byte-identical to the
//! serial loop regardless of thread count or OS scheduling — the only
//! thing parallelism can change is wall-clock time.

use std::sync::Mutex;

use cm5_core::prelude::*;
use cm5_sim::{MachineParams, SimReport};

use crate::runners::{FIG5_MSG_SIZES, MACHINE_SIZES, TABLE11_SEEDS};

/// A fixed-size worker pool that maps a function over a slice of work
/// items and returns the results in input order.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    jobs: usize,
}

impl SweepRunner {
    /// A runner with `jobs` worker threads. `jobs == 0` means "use the
    /// machine": one worker per available hardware thread.
    pub fn new(jobs: usize) -> SweepRunner {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            jobs
        };
        SweepRunner { jobs }
    }

    /// Number of worker threads this runner will spawn.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Apply `f` to every item, in parallel across the worker pool, and
    /// return the results in the same order as `items`.
    ///
    /// `f` receives the item's index alongside the item so callers can
    /// key results without capturing extra state. Results are collected
    /// into per-index slots and merged in canonical (input) order, so the
    /// returned `Vec` is identical for any `jobs` value. A panic in `f`
    /// propagates out of `run`.
    pub fn run<J, T, F>(&self, items: &[J], f: F) -> Vec<T>
    where
        J: Sync,
        T: Send,
        F: Fn(usize, &J) -> T + Sync,
    {
        let jobs = self.jobs.min(items.len()).max(1);
        if jobs == 1 {
            return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
        }
        let slots: Vec<Mutex<Option<T>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
        let (tx, rx) = crossbeam::channel::unbounded::<usize>();
        for i in 0..items.len() {
            tx.send(i).expect("queue send");
        }
        drop(tx);
        crossbeam::thread::scope(|s| {
            for _ in 0..jobs {
                let rx = rx.clone();
                let slots = &slots;
                let f = &f;
                s.spawn(move || {
                    while let Ok(i) = rx.recv() {
                        let out = f(i, &items[i]);
                        *slots[i].lock().unwrap() = Some(out);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("slot lock poisoned")
                    .expect("worker filled every dispatched slot")
            })
            .collect()
    }
}

impl Default for SweepRunner {
    /// One worker per available hardware thread.
    fn default() -> SweepRunner {
        SweepRunner::new(0)
    }
}

/// One cell of the regular complete-exchange grid (Figures 5–8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExchangeCell {
    /// Which complete-exchange algorithm.
    pub alg: ExchangeAlg,
    /// Machine size (nodes).
    pub n: usize,
    /// Message size per node pair (bytes).
    pub bytes: u64,
}

/// The paper's full regular grid in canonical order: machine size, then
/// message size, then algorithm — the order the figures print in.
pub fn exchange_grid() -> Vec<ExchangeCell> {
    let mut cells = Vec::new();
    for &n in &MACHINE_SIZES {
        for &bytes in &FIG5_MSG_SIZES {
            for alg in ExchangeAlg::ALL {
                cells.push(ExchangeCell { alg, n, bytes });
            }
        }
    }
    cells
}

/// Full simulation report for one regular-exchange cell.
pub fn exchange_report(cell: ExchangeCell) -> SimReport {
    exchange_report_jobs(cell, 1)
}

/// [`exchange_report`] on the windowed engine at `sim_jobs` workers per
/// cell (1 = serial; bit-identical across values).
pub fn exchange_report_jobs(cell: ExchangeCell, sim_jobs: usize) -> SimReport {
    run_schedule_jobs(
        &cell.alg.schedule(cell.n, cell.bytes),
        &MachineParams::cm5_1992(),
        sim_jobs,
    )
    .unwrap_or_else(|e| panic!("{} n={} bytes={}: {e}", cell.alg.name(), cell.n, cell.bytes))
}

/// Run the full regular grid on `runner`, returning `(cell, report)` pairs
/// in canonical grid order.
pub fn run_exchange_grid(runner: &SweepRunner) -> Vec<(ExchangeCell, SimReport)> {
    run_exchange_grid_jobs(runner, 1)
}

/// [`run_exchange_grid`] with `sim_jobs` engine workers inside each cell —
/// two orthogonal layers of parallelism: the runner fans cells across
/// threads, the windowed engine fans nodes within one simulation.
pub fn run_exchange_grid_jobs(
    runner: &SweepRunner,
    sim_jobs: usize,
) -> Vec<(ExchangeCell, SimReport)> {
    let cells = exchange_grid();
    let reports = runner.run(&cells, |_, &cell| exchange_report_jobs(cell, sim_jobs));
    cells.into_iter().zip(reports).collect()
}

/// One cell of the irregular synthetic grid (Table 11).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IrregularCell {
    /// Which irregular scheduling algorithm.
    pub alg: IrregularAlg,
    /// Fraction of node pairs that communicate.
    pub density: f64,
    /// Message size per communicating pair (bytes).
    pub msg: u64,
    /// Synthetic-pattern seed.
    pub seed: u64,
}

/// The Table 11 synthetic grid in canonical order: density, then message
/// size, then seed, then algorithm.
pub fn irregular_grid(densities: &[f64], msgs: &[u64]) -> Vec<IrregularCell> {
    let mut cells = Vec::new();
    for &density in densities {
        for &msg in msgs {
            for seed in 0..TABLE11_SEEDS {
                for alg in IrregularAlg::ALL {
                    cells.push(IrregularCell {
                        alg,
                        density,
                        msg,
                        seed,
                    });
                }
            }
        }
    }
    cells
}

/// Full simulation report for one irregular synthetic cell (32 nodes,
/// matching Table 11's machine size).
pub fn irregular_report(cell: IrregularCell) -> SimReport {
    irregular_report_jobs(cell, 1)
}

/// [`irregular_report`] on the windowed engine at `sim_jobs` workers.
pub fn irregular_report_jobs(cell: IrregularCell, sim_jobs: usize) -> SimReport {
    let pattern = cm5_workloads::synthetic::synthetic_pattern_exact(
        32,
        cell.density,
        cell.msg,
        0x7AB1E + cell.seed,
    );
    run_schedule_jobs(
        &cell.alg.schedule(&pattern),
        &MachineParams::cm5_1992(),
        sim_jobs,
    )
    .unwrap_or_else(|e| {
        panic!(
            "{} density={} msg={} seed={}: {e}",
            cell.alg.name(),
            cell.density,
            cell.msg,
            cell.seed
        )
    })
}

/// Run an irregular synthetic grid on `runner`, returning `(cell, report)`
/// pairs in canonical grid order.
pub fn run_irregular_grid(
    runner: &SweepRunner,
    densities: &[f64],
    msgs: &[u64],
) -> Vec<(IrregularCell, SimReport)> {
    run_irregular_grid_jobs(runner, densities, msgs, 1)
}

/// [`run_irregular_grid`] with `sim_jobs` engine workers inside each cell.
pub fn run_irregular_grid_jobs(
    runner: &SweepRunner,
    densities: &[f64],
    msgs: &[u64],
    sim_jobs: usize,
) -> Vec<(IrregularCell, SimReport)> {
    let cells = irregular_grid(densities, msgs);
    let reports = runner.run(&cells, |_, &cell| irregular_report_jobs(cell, sim_jobs));
    cells.into_iter().zip(reports).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm5_sim::{RouteTable, SimDuration, Simulation, Topology};

    /// The whole point of the executor: everything a worker owns or
    /// shares must be safe to move to / reference from another thread.
    #[test]
    fn simulation_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Simulation>();
        assert_send_sync::<MachineParams>();
        assert_send_sync::<Topology>();
        assert_send_sync::<RouteTable>();
        assert_send_sync::<SimReport>();
        assert_send_sync::<SimDuration>();
        assert_send_sync::<Schedule>();
        assert_send_sync::<Pattern>();
        assert_send_sync::<ExchangeAlg>();
        assert_send_sync::<IrregularAlg>();
        assert_send_sync::<BroadcastAlg>();
        assert_send_sync::<SweepRunner>();
        assert_send_sync::<ExchangeCell>();
        assert_send_sync::<IrregularCell>();
    }

    #[test]
    fn run_preserves_input_order() {
        let runner = SweepRunner::new(4);
        let items: Vec<usize> = (0..64).collect();
        let out = runner.run(&items, |i, &x| {
            assert_eq!(i, x);
            x * x
        });
        let expected: Vec<usize> = (0..64).map(|x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn jobs_zero_uses_available_parallelism() {
        assert!(SweepRunner::new(0).jobs() >= 1);
        assert_eq!(SweepRunner::new(3).jobs(), 3);
    }

    #[test]
    fn empty_input_is_fine() {
        let runner = SweepRunner::new(8);
        let out: Vec<u32> = runner.run(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_matches_serial_on_a_small_grid() {
        let cells: Vec<ExchangeCell> = ExchangeAlg::ALL
            .into_iter()
            .map(|alg| ExchangeCell {
                alg,
                n: 8,
                bytes: 256,
            })
            .collect();
        let serial = SweepRunner::new(1).run(&cells, |_, &c| exchange_report(c));
        let par = SweepRunner::new(4).run(&cells, |_, &c| exchange_report(c));
        for (s, p) in serial.iter().zip(&par) {
            assert_eq!(s.makespan, p.makespan);
            assert_eq!(s.messages, p.messages);
            assert_eq!(s.wire_bytes, p.wire_bytes);
            assert_eq!(s.bytes_per_level, p.bytes_per_level);
        }
    }

    #[test]
    fn engine_jobs_inside_cells_match_serial() {
        // The inner (windowed-engine) parallel layer must be invisible in
        // the results, exactly like the outer (cell-fanning) layer.
        for alg in ExchangeAlg::ALL {
            let cell = ExchangeCell {
                alg,
                n: 8,
                bytes: 256,
            };
            let s = exchange_report(cell);
            let p = exchange_report_jobs(cell, 3);
            assert_eq!(s.makespan, p.makespan, "{}", alg.name());
            assert_eq!(s.wire_bytes, p.wire_bytes, "{}", alg.name());
            assert_eq!(s.bytes_per_level, p.bytes_per_level, "{}", alg.name());
        }
    }

    #[test]
    fn exchange_grid_is_canonical_and_complete() {
        let grid = exchange_grid();
        assert_eq!(
            grid.len(),
            crate::runners::MACHINE_SIZES.len()
                * crate::runners::FIG5_MSG_SIZES.len()
                * ExchangeAlg::ALL.len()
        );
        // Canonical order: machine size is the slowest-varying key.
        assert_eq!(grid[0].n, 32);
        assert_eq!(grid.last().unwrap().n, 256);
    }
}
