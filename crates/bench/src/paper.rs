//! The paper's published numbers, transcribed for side-by-side comparison.
//!
//! Only Tables 5, 11 and 12 print absolute values in the text; the figures
//! (5–8, 10, 11) are curves, so for those the report prints our measured
//! series together with the paper's *qualitative* claims.

/// Table 5 — "Performance of Scheduling Algorithms on 2D FFT (Time in
/// Secs.)". Rows: array side ∈ {256, 512, 1024, 2048}; per row, the times
/// for (Linear, Pairwise, Recursive, Balanced) on 32 and on 256 processors.
pub struct Table5Row {
    /// Array side (the array is side × side complex).
    pub side: usize,
    /// 32-processor times, seconds: (LEX, PEX, REX, BEX).
    pub p32: [f64; 4],
    /// 256-processor times, seconds.
    pub p256: [f64; 4],
}

/// Table 5 of the paper.
pub const TABLE_5: [Table5Row; 4] = [
    Table5Row {
        side: 256,
        p32: [0.215, 0.152, 0.112, 0.114],
        p256: [4.340, 0.076, 0.077, 0.076],
    },
    Table5Row {
        side: 512,
        p32: [0.845, 0.470, 0.467, 0.470],
        p256: [4.750, 0.120, 0.120, 0.120],
    },
    Table5Row {
        side: 1024,
        p32: [3.135, 2.007, 2.480, 2.005],
        p256: [5.968, 0.314, 0.313, 0.312],
    },
    Table5Row {
        side: 2048,
        p32: [14.780, 9.032, 9.245, 8.509],
        p256: [18.087, 1.738, 2.160, 1.668],
    },
];

/// Table 11 — synthetic irregular patterns on 32 processors, times in ms.
/// Rows: (density %, msg bytes) → (Linear, Pairwise, Balanced, Greedy).
pub struct Table11Row {
    /// Pattern density as a fraction of complete exchange.
    pub density: f64,
    /// Message size in bytes.
    pub msg: u64,
    /// Times in milliseconds: (LS, PS, BS, GS).
    pub times_ms: [f64; 4],
}

/// Table 11 of the paper.
pub const TABLE_11: [Table11Row; 8] = [
    Table11Row {
        density: 0.10,
        msg: 256,
        times_ms: [4.723, 1.766, 1.933, 1.597],
    },
    Table11Row {
        density: 0.10,
        msg: 512,
        times_ms: [6.116, 2.275, 2.494, 2.044],
    },
    Table11Row {
        density: 0.25,
        msg: 256,
        times_ms: [11.67, 3.977, 3.724, 3.266],
    },
    Table11Row {
        density: 0.25,
        msg: 512,
        times_ms: [15.34, 5.193, 4.861, 4.192],
    },
    Table11Row {
        density: 0.50,
        msg: 256,
        times_ms: [29.01, 6.324, 6.034, 6.009],
    },
    Table11Row {
        density: 0.50,
        msg: 512,
        times_ms: [38.27, 8.360, 8.013, 7.934],
    },
    Table11Row {
        density: 0.75,
        msg: 256,
        times_ms: [50.14, 7.882, 7.856, 9.241],
    },
    Table11Row {
        density: 0.75,
        msg: 512,
        times_ms: [66.63, 10.52, 10.50, 12.29],
    },
];

/// Table 12 — real irregular patterns on 32 processors, times in ms.
pub struct Table12Row {
    /// Workload name as printed in the paper.
    pub name: &'static str,
    /// The paper's reported pattern density (fraction of complete exchange).
    pub density: f64,
    /// The paper's reported mean bytes per message.
    pub avg_bytes: f64,
    /// Times in milliseconds: (LS, PS, BS, GS).
    pub times_ms: [f64; 4],
}

/// Table 12 of the paper.
pub const TABLE_12: [Table12Row; 5] = [
    Table12Row {
        name: "Conj. Grad. 16K",
        density: 0.09,
        avg_bytes: 643.0,
        times_ms: [8.046, 6.623, 7.188, 5.799],
    },
    Table12Row {
        name: "Euler 545",
        density: 0.37,
        avg_bytes: 85.0,
        times_ms: [25.87, 7.374, 7.386, 5.656],
    },
    Table12Row {
        name: "Euler 2K",
        density: 0.44,
        avg_bytes: 226.0,
        times_ms: [48.88, 15.04, 15.07, 12.30],
    },
    Table12Row {
        name: "Euler 3K",
        density: 0.29,
        avg_bytes: 612.0,
        times_ms: [50.78, 19.98, 17.57, 14.34],
    },
    Table12Row {
        name: "Euler 9K",
        density: 0.44,
        avg_bytes: 505.0,
        times_ms: [77.13, 21.91, 20.19, 17.01],
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transcription_sanity() {
        // Linear is the worst column in every transcribed row.
        for row in &TABLE_11 {
            assert!(row.times_ms[0] > row.times_ms[1]);
            assert!(row.times_ms[0] > row.times_ms[3]);
        }
        for row in &TABLE_12 {
            assert!(row.times_ms[0] > row.times_ms[3]);
            // All real densities are below the 50 % crossover, so greedy is
            // the paper's winner in every row.
            assert!(row.density < 0.5);
            let min = row.times_ms.iter().cloned().fold(f64::INFINITY, f64::min);
            assert_eq!(min, row.times_ms[3]);
        }
        for row in &TABLE_5 {
            assert!(row.p32[0] > row.p32[1]);
            assert!(row.p256[0] > row.p256[1]);
        }
    }
}
