//! Performance-regression watchdog: compare a `BENCH_sim.json` artifact
//! (schema `cm5-bench-sim-perf/3`, including the merged `serve_replay`
//! cell) against the floors in `ci/perf_baseline.txt` and emit a
//! `cm5-watch/1` verdict that CI gates on.
//!
//! The check is intentionally strict in both directions:
//!
//! * a grid cell **below its floor** fails the verdict (the classic
//!   regression), and
//! * a baseline name **missing from the artifact** also fails it — a
//!   silently dropped cell is exactly the kind of regression a watchdog
//!   exists to catch (`check_baseline`'s fail-open behaviour is for
//!   interactive runs; the watchdog fails closed).
//!
//! Wall-clock quarantine: the verdict JSON contains the measured
//! throughputs, so the *document* varies run to run — it is a timing
//! artifact like `cm5-serve-timing/1`, never diffed bytewise in CI. Only
//! the boolean verdict gates.

use cm5_serve::Json;

use crate::perf::parse_baseline;

/// One baseline floor checked against the artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchCheck {
    /// Grid-cell name (`rex_64`, `serve_replay`, ...).
    pub name: String,
    /// Measured `events_per_sec` from the artifact.
    pub events_per_sec: f64,
    /// Baseline floor the measurement must meet.
    pub floor: f64,
    /// `events_per_sec / floor` — ≥ 1 passes; 0.5 is a 50 % regression.
    pub ratio: f64,
    /// Whether this cell met its floor.
    pub pass: bool,
}

/// The watchdog's overall verdict for one artifact/baseline pair.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchVerdict {
    /// `true` iff every baseline name was found and met its floor.
    pub pass: bool,
    /// Per-cell results, in baseline order.
    pub checks: Vec<WatchCheck>,
    /// Baseline names with no matching cell in the artifact.
    pub missing: Vec<String>,
}

/// Extract `(name, events_per_sec)` pairs from a `BENCH_sim.json` text.
/// Tolerates `null` oracle fields (schema 3) and ignores cells without a
/// throughput figure. Errors on malformed JSON or a wrong/missing schema
/// stamp — a watchdog reading the wrong artifact must say so, not pass.
fn parse_bench(text: &str) -> Result<Vec<(String, f64)>, String> {
    let doc = Json::parse(text).map_err(|e| format!("bench artifact is not valid JSON: {e}"))?;
    let schema = doc
        .get(cm5_obs::SCHEMA_KEY)
        .and_then(Json::as_str)
        .ok_or("bench artifact has no schema stamp")?;
    let want = cm5_obs::schema_id("bench-sim-perf", 3);
    if schema != want {
        return Err(format!("bench artifact is {schema}, watchdog wants {want}"));
    }
    let grids = doc
        .get("grids")
        .and_then(Json::as_arr)
        .ok_or("bench artifact has no grids array")?;
    Ok(grids
        .iter()
        .filter_map(|cell| {
            let name = cell.get("name").and_then(Json::as_str)?.to_string();
            let eps = cell.get("events_per_sec").and_then(Json::as_f64)?;
            Some((name, eps))
        })
        .collect())
}

/// Run the watchdog: `bench_text` is the `BENCH_sim.json` contents,
/// `baseline_text` the `ci/perf_baseline.txt` contents. Pure function of
/// its inputs; file IO lives in the `report watch` driver.
pub fn watch(bench_text: &str, baseline_text: &str) -> Result<WatchVerdict, String> {
    let cells = parse_bench(bench_text)?;
    let baseline = parse_baseline(baseline_text);
    if baseline.is_empty() {
        return Err("baseline has no floors — nothing to watch".to_string());
    }
    let mut checks = Vec::new();
    let mut missing = Vec::new();
    for (name, floor) in &baseline {
        match cells.iter().find(|(n, _)| n == name) {
            Some((_, eps)) => {
                let ratio = if *floor > 0.0 {
                    eps / floor
                } else {
                    f64::INFINITY
                };
                checks.push(WatchCheck {
                    name: name.clone(),
                    events_per_sec: *eps,
                    floor: *floor,
                    ratio,
                    pass: eps >= floor,
                });
            }
            None => missing.push(name.clone()),
        }
    }
    let pass = missing.is_empty() && checks.iter().all(|c| c.pass);
    Ok(WatchVerdict {
        pass,
        checks,
        missing,
    })
}

/// Render a verdict as the `cm5-watch/1` JSON document.
pub fn verdict_json(v: &WatchVerdict) -> String {
    let mut out = format!(
        "{{\n  {},\n  \"pass\": {},\n  \"checks\": [\n",
        cm5_obs::schema_field("watch", 1),
        v.pass
    );
    for (i, c) in v.checks.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"events_per_sec\": {:.1}, \"floor\": {:.1}, \
             \"ratio\": {:.3}, \"pass\": {}}}{}\n",
            c.name,
            c.events_per_sec,
            c.floor,
            c.ratio,
            c.pass,
            if i + 1 < v.checks.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"missing\": [");
    for (i, name) in v.missing.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{name}\""));
    }
    out.push_str("]\n}\n");
    out
}

/// Human-readable one-line-per-check summary for terminal runs.
pub fn verdict_table(v: &WatchVerdict) -> String {
    let mut out = format!(
        "{:>14} {:>14} {:>14} {:>7} {:>6}\n",
        "cell", "events/sec", "floor", "ratio", "ok"
    );
    for c in &v.checks {
        out.push_str(&format!(
            "{:>14} {:>14.0} {:>14.0} {:>7.3} {:>6}\n",
            c.name,
            c.events_per_sec,
            c.floor,
            c.ratio,
            if c.pass { "ok" } else { "FAIL" }
        ));
    }
    for name in &v.missing {
        out.push_str(&format!("{name:>14} {:>14} — missing from artifact\n", "?"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_doc(cells: &[(&str, f64)]) -> String {
        let grids = cells
            .iter()
            .map(|(name, eps)| {
                format!(
                    "    {{\"name\": \"{name}\", \"events_per_sec\": {eps:.1}, \
                     \"oracle_wall_secs\": null, \"speedup_vs_oracle\": null}}"
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"schema\": \"cm5-bench-sim-perf/3\",\n  \"quick\": true,\n  \
             \"grids\": [\n{grids}\n  ]\n}}\n"
        )
    }

    #[test]
    fn healthy_artifact_passes() {
        let bench = bench_doc(&[("rex_64", 2_000_000.0), ("serve_replay", 500.0)]);
        let v = watch(&bench, "rex_64 1750000\nserve_replay 150\n").unwrap();
        assert!(v.pass, "{v:?}");
        assert_eq!(v.checks.len(), 2);
        assert!(v.missing.is_empty());
        assert!(v.checks.iter().all(|c| c.ratio > 1.0));
        let json = verdict_json(&v);
        assert!(json.contains("\"schema\":\"cm5-watch/1\""), "{json}");
        assert!(json.contains("\"pass\": true"), "{json}");
    }

    #[test]
    fn injected_regression_fails() {
        // A 50 % regression on one cell must flip the verdict.
        let bench = bench_doc(&[("rex_64", 875_000.0), ("serve_replay", 500.0)]);
        let v = watch(&bench, "rex_64 1750000\nserve_replay 150\n").unwrap();
        assert!(!v.pass);
        let failed: Vec<_> = v.checks.iter().filter(|c| !c.pass).collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].name, "rex_64");
        assert!((failed[0].ratio - 0.5).abs() < 1e-9);
        assert!(verdict_json(&v).contains("\"pass\": false"));
    }

    #[test]
    fn missing_cell_fails_closed() {
        // `check_baseline` ignores unknown names; the watchdog must not.
        let bench = bench_doc(&[("rex_64", 2_000_000.0)]);
        let v = watch(&bench, "rex_64 1750000\nserve_replay 150\n").unwrap();
        assert!(!v.pass);
        assert_eq!(v.missing, vec!["serve_replay".to_string()]);
        assert!(verdict_json(&v).contains("\"missing\": [\"serve_replay\"]"));
    }

    #[test]
    fn wrong_schema_is_an_error() {
        let bench = "{\"schema\": \"cm5-bench-sim-perf/2\", \"grids\": []}";
        assert!(watch(bench, "rex_64 1\n")
            .unwrap_err()
            .contains("watchdog wants"));
        assert!(watch("not json", "rex_64 1\n").is_err());
        let ok = bench_doc(&[("rex_64", 1.0)]);
        assert!(watch(&ok, "# only comments\n").is_err());
    }

    #[test]
    fn table_renders_every_row() {
        let bench = bench_doc(&[("rex_64", 875_000.0)]);
        let v = watch(&bench, "rex_64 1750000\nserve_replay 150\n").unwrap();
        let table = verdict_table(&v);
        assert!(table.contains("FAIL"), "{table}");
        assert!(table.contains("missing from artifact"), "{table}");
    }
}
