//! Simulator performance suite: measures the *host* cost of representative
//! workloads (as opposed to the simulated times every other module reports).
//!
//! The grid exercises the network hot path from three directions: REX keeps
//! few flows alive but churns them quickly, PEX holds a full bisection of
//! simultaneous flows, and the greedy irregular schedule at 75 % density
//! admits large unbalanced batches. Each case also runs once under the
//! retained full-recompute oracle (`--rates full`) so the speedup of the
//! incremental solver is part of the measurement.
//!
//! Used by `report perf` (and `cm5 bench`), which serialise the results to
//! `BENCH_sim.json`, and by the `sim_hot_loop` Criterion bench.

use std::time::Instant;

use cm5_core::prelude::*;
use cm5_sim::{MachineParams, OpProgram, RateSolver, SimReport, Simulation};
use cm5_workloads::synthetic::synthetic_pattern_exact;

/// One workload of the performance grid.
pub struct PerfCase {
    /// Short stable identifier (`rex_128`, `gs_75`...), used as the JSON key
    /// and the baseline-file key.
    pub name: &'static str,
    /// Human description printed by `report perf`.
    pub what: &'static str,
    /// Machine size.
    pub n: usize,
    /// Lowered per-node programs.
    pub programs: Vec<OpProgram>,
}

/// Host-side measurements for one [`PerfCase`].
#[derive(Debug, Clone)]
pub struct PerfMeasurement {
    /// Case identifier.
    pub name: String,
    /// Machine size.
    pub n: usize,
    /// Simulation repetitions timed (best run reported).
    pub reps: u32,
    /// Engine wall-clock seconds of the best incremental run.
    pub wall_secs: f64,
    /// Engine events processed per run.
    pub events: u64,
    /// Events per wall-clock second (best run).
    pub events_per_sec: f64,
    /// Whole simulations ("grid cells") per wall-clock second.
    pub cells_per_sec: f64,
    /// Rate recomputations per run under the incremental solver.
    pub recomputes: u64,
    /// Flows admitted per run.
    pub flows: u64,
    /// Peak simultaneous flows.
    pub flows_peak: usize,
    /// Wall-clock of the same workload under [`RateSolver::Full`], seconds.
    pub full_wall_secs: f64,
    /// `full_wall_secs / wall_secs` — the incremental solver's speedup.
    pub speedup_vs_full: f64,
    /// Simulated makespan (sanity anchor: must not depend on the solver).
    pub makespan_ms: f64,
}

/// The standard grid: REX/PEX at 64 and 128 nodes, greedy irregular at
/// 75 % density on 32 nodes.
pub fn perf_cases() -> Vec<PerfCase> {
    let mut cases = Vec::new();
    for &n in &[64usize, 128] {
        for (alg, tag) in [(ExchangeAlg::Rex, "rex"), (ExchangeAlg::Pex, "pex")] {
            cases.push(PerfCase {
                name: match (tag, n) {
                    ("rex", 64) => "rex_64",
                    ("rex", 128) => "rex_128",
                    ("pex", 64) => "pex_64",
                    _ => "pex_128",
                },
                what: if tag == "rex" {
                    "recursive exchange (flow churn)"
                } else {
                    "pairwise exchange (full bisection)"
                },
                n,
                programs: lower(&alg.schedule(n, 1024)),
            });
        }
    }
    let pattern = synthetic_pattern_exact(32, 0.75, 256, 0x7AB1E);
    cases.push(PerfCase {
        name: "gs_75",
        what: "greedy irregular, 75% density (batched admissions)",
        n: 32,
        programs: lower(&gs(&pattern)),
    });
    cases
}

fn run_with(case: &PerfCase, solver: RateSolver) -> SimReport {
    let mut params = MachineParams::cm5_1992();
    params.rate_solver = solver;
    Simulation::new(case.n, params)
        .run_ops(&case.programs)
        .unwrap_or_else(|e| panic!("perf case {}: {e}", case.name))
}

/// Run the whole suite. `reps` incremental repetitions per case (the best
/// run is reported, damping scheduler noise); the full-recompute oracle
/// runs `max(1, reps / 2)` times.
pub fn run_perf_suite(reps: u32) -> Vec<PerfMeasurement> {
    assert!(reps > 0, "at least one repetition");
    perf_cases()
        .iter()
        .map(|case| {
            // Warm-up: page in code and the allocator before timing.
            let warm = run_with(case, RateSolver::Incremental);
            let mut best = f64::INFINITY;
            let mut report = warm;
            for _ in 0..reps {
                let start = Instant::now();
                let r = run_with(case, RateSolver::Incremental);
                let wall = start.elapsed().as_secs_f64();
                if wall < best {
                    best = wall;
                    report = r;
                }
            }
            let mut full_best = f64::INFINITY;
            let mut full_makespan = None;
            for _ in 0..reps.div_ceil(2) {
                let start = Instant::now();
                let r = run_with(case, RateSolver::Full);
                full_best = full_best.min(start.elapsed().as_secs_f64());
                full_makespan = Some(r.makespan);
            }
            assert_eq!(
                Some(report.makespan),
                full_makespan,
                "{}: solvers must agree on simulated time",
                case.name
            );
            PerfMeasurement {
                name: case.name.to_string(),
                n: case.n,
                reps,
                wall_secs: best,
                events: report.perf.events,
                events_per_sec: if best > 0.0 {
                    report.perf.events as f64 / best
                } else {
                    0.0
                },
                cells_per_sec: if best > 0.0 { 1.0 / best } else { 0.0 },
                recomputes: report.perf.recomputes,
                flows: report.perf.flows,
                flows_peak: report.perf.flows_peak,
                full_wall_secs: full_best,
                speedup_vs_full: if best > 0.0 { full_best / best } else { 0.0 },
                makespan_ms: report.makespan.as_millis_f64(),
            }
        })
        .collect()
}

/// Serialise measurements as the `BENCH_sim.json` artifact (hand-rolled —
/// the build is offline and the schema is flat).
pub fn to_json(measurements: &[PerfMeasurement], quick: bool) -> String {
    let mut out = format!(
        "{{\n  \"{}\": \"{}\",\n",
        cm5_obs::SCHEMA_KEY,
        cm5_obs::schema_id("bench-sim-perf", 1)
    );
    out.push_str(&format!("  \"quick\": {quick},\n  \"grids\": [\n"));
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"nodes\": {}, \"reps\": {}, \
             \"wall_secs\": {:.6}, \"events\": {}, \"events_per_sec\": {:.1}, \
             \"cells_per_sec\": {:.3}, \"recomputes\": {}, \"flows\": {}, \
             \"flows_peak\": {}, \"full_wall_secs\": {:.6}, \
             \"speedup_vs_full\": {:.2}, \"makespan_ms\": {:.4}}}{}\n",
            m.name,
            m.n,
            m.reps,
            m.wall_secs,
            m.events,
            m.events_per_sec,
            m.cells_per_sec,
            m.recomputes,
            m.flows,
            m.flows_peak,
            m.full_wall_secs,
            m.speedup_vs_full,
            m.makespan_ms,
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parse a perf baseline file: `name  min_events_per_sec` pairs, `#`
/// comments and blank lines ignored. Returns `(name, floor)` pairs.
pub fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter_map(|line| {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                return None;
            }
            let mut parts = line.split_whitespace();
            let name = parts.next()?.to_string();
            let floor: f64 = parts.next()?.parse().ok()?;
            Some((name, floor))
        })
        .collect()
}

/// Check measurements against a baseline. Returns the list of failures
/// (`name, got, floor`); empty means the gate passes. Unknown baseline
/// names are ignored (a renamed grid fails open, loudly, in CI review).
pub fn check_baseline(
    measurements: &[PerfMeasurement],
    baseline: &[(String, f64)],
) -> Vec<(String, f64, f64)> {
    let mut failures = Vec::new();
    for (name, floor) in baseline {
        if let Some(m) = measurements.iter().find(|m| &m.name == name) {
            if m.events_per_sec < *floor {
                failures.push((name.clone(), m.events_per_sec, *floor));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_and_serialises() {
        let ms = run_perf_suite(1);
        assert_eq!(ms.len(), 5);
        for m in &ms {
            assert!(m.events > 0, "{}", m.name);
            assert!(m.flows > 0, "{}", m.name);
            assert!(m.makespan_ms > 0.0, "{}", m.name);
        }
        let json = to_json(&ms, true);
        assert!(json.contains("\"schema\": \"cm5-bench-sim-perf/1\""));
        assert!(json.contains("\"rex_128\""));
        assert_eq!(json.matches("\"name\"").count(), 5);
    }

    #[test]
    fn baseline_parses_and_gates() {
        let base = parse_baseline("# comment\nrex_64 1000.0\n\npex_64  2e3 # trailing\n");
        assert_eq!(base.len(), 2);
        let ms = vec![PerfMeasurement {
            name: "rex_64".into(),
            n: 64,
            reps: 1,
            wall_secs: 1.0,
            events: 500,
            events_per_sec: 500.0,
            cells_per_sec: 1.0,
            recomputes: 1,
            flows: 1,
            flows_peak: 1,
            full_wall_secs: 2.0,
            speedup_vs_full: 2.0,
            makespan_ms: 1.0,
        }];
        let failures = check_baseline(&ms, &base);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, "rex_64");
    }
}
