//! Simulator performance suite: measures the *host* cost of representative
//! workloads (as opposed to the simulated times every other module reports).
//!
//! The small grid exercises the network hot path from three directions: REX
//! keeps few flows alive but churns them quickly, PEX holds a full bisection
//! of simultaneous flows, and the greedy irregular schedule at 75 % density
//! admits large unbalanced batches. The large grid scales the same pressure
//! two orders of magnitude past the paper — 1024/4096/16384-node fat trees —
//! where the hierarchical solver's subtree invalidation is the difference
//! between seconds and minutes. Each case also runs once under an oracle
//! solver (the full recompute for the small grid, the incremental solver for
//! the large grid) so the measured speedup is part of the artifact.
//!
//! Used by `report perf` (and `cm5 bench`), which serialise the results to
//! `BENCH_sim.json`, and by the `sim_hot_loop` Criterion bench.

use std::time::Instant;

use cm5_core::prelude::*;
use cm5_sim::{
    run_tenants_jobs, MachineParams, Op, OpProgram, Placement, RateSolver, SimReport, Simulation,
    TenantSpec,
};
use cm5_workloads::synthetic::synthetic_pattern_exact;

/// One workload of the performance grid.
pub struct PerfCase {
    /// Short stable identifier (`rex_128`, `pex_4k`...), used as the JSON
    /// key and the baseline-file key.
    pub name: &'static str,
    /// Human description printed by `report perf`.
    pub what: &'static str,
    /// Machine size.
    pub n: usize,
    /// Lowered per-node programs.
    pub programs: Vec<OpProgram>,
    /// The solver being measured.
    pub solver: RateSolver,
    /// The solver timed alongside as the speedup reference; its makespan
    /// must agree bitwise with `solver`'s (the bit-identity contract).
    pub oracle: RateSolver,
}

/// Host-side measurements for one [`PerfCase`].
#[derive(Debug, Clone)]
pub struct PerfMeasurement {
    /// Case identifier.
    pub name: String,
    /// Machine size.
    pub n: usize,
    /// `--rates` name of the measured solver.
    pub solver: &'static str,
    /// Simulation repetitions timed (best run reported).
    pub reps: u32,
    /// Engine wall-clock seconds of the best primary-solver run.
    pub wall_secs: f64,
    /// Engine events processed per run.
    pub events: u64,
    /// Events per wall-clock second (best run).
    pub events_per_sec: f64,
    /// Whole simulations ("grid cells") per wall-clock second.
    pub cells_per_sec: f64,
    /// Rate recomputations per run under the measured solver.
    pub recomputes: u64,
    /// Flows admitted per run.
    pub flows: u64,
    /// Peak simultaneous flows.
    pub flows_peak: usize,
    /// Wall-clock of the same workload under the oracle solver, seconds.
    /// `None` when the oracle pass was skipped (`--no-oracle` / `par_*`
    /// cells) — rendered as JSON `null`, never a fake `0.00`.
    pub oracle_wall_secs: Option<f64>,
    /// `oracle_wall_secs / wall_secs` — the measured solver's speedup.
    /// `None` whenever the oracle pass was skipped.
    pub speedup_vs_oracle: Option<f64>,
    /// Simulated makespan (sanity anchor: must not depend on the solver).
    pub makespan_ms: f64,
    /// Worker threads used by the windowed engine (1 = serial engine).
    pub sim_jobs: usize,
    /// Time windows executed by the windowed engine (0 for serial cells).
    pub windows: u64,
    /// Total node actions speculated across workers (0 for serial cells).
    pub worker_events_total: u64,
    /// Host seconds the merge thread spent staging windows and collecting
    /// worker results (0 for serial cells).
    pub merge_secs: f64,
    /// Serial-engine wall over windowed-engine wall for `par_*` cells
    /// (0 when not measured). Recorded, not gated: on a one-CPU host this
    /// is ≤ 1 — the bit-identity contract is what CI enforces.
    pub speedup_vs_serial: f64,
}

fn solver_name(solver: RateSolver) -> &'static str {
    match solver {
        RateSolver::Incremental => "incremental",
        RateSolver::Full => "full",
        RateSolver::Hierarchical => "hierarchical",
    }
}

/// The standard grid: REX/PEX at 64 and 128 nodes, greedy irregular at
/// 75 % density on 32 nodes. Incremental solver against the full oracle.
pub fn perf_cases() -> Vec<PerfCase> {
    let mut cases = Vec::new();
    for &n in &[64usize, 128] {
        for (alg, tag) in [(ExchangeAlg::Rex, "rex"), (ExchangeAlg::Pex, "pex")] {
            cases.push(PerfCase {
                name: match (tag, n) {
                    ("rex", 64) => "rex_64",
                    ("rex", 128) => "rex_128",
                    ("pex", 64) => "pex_64",
                    _ => "pex_128",
                },
                what: if tag == "rex" {
                    "recursive exchange (flow churn)"
                } else {
                    "pairwise exchange (full bisection)"
                },
                n,
                programs: lower(&alg.schedule(n, 1024)),
                solver: RateSolver::Incremental,
                oracle: RateSolver::Full,
            });
        }
    }
    let pattern = synthetic_pattern_exact(32, 0.75, 256, 0x7AB1E);
    cases.push(PerfCase {
        name: "gs_75",
        what: "greedy irregular, 75% density (batched admissions)",
        n: 32,
        programs: lower(&gs(&pattern)),
        solver: RateSolver::Incremental,
        oracle: RateSolver::Full,
    });
    cases
}

/// A truncated PEX: the XOR-stride steps `i ↔ i ^ j` for each `j` in
/// `strides`, lowered directly to per-node programs. A full PEX at 16 384
/// nodes is ~268 M messages — far more work than a perf cell needs — but a
/// slice mixing local strides (intra-cluster) and global strides (root
/// crossings) exercises exactly the same per-step contention structure.
/// `bytes_of(i)` sets node `i`'s payload; varying it staggers completions,
/// which is the hierarchical solver's hard case (every completion dirties a
/// spine).
pub fn pex_slice_programs(
    n: usize,
    strides: &[usize],
    bytes_of: impl Fn(usize) -> u64,
) -> Vec<OpProgram> {
    assert!(n.is_power_of_two(), "XOR strides need a power-of-two n");
    let mut programs: Vec<OpProgram> = vec![Vec::with_capacity(2 * strides.len()); n];
    for (step, &j) in strides.iter().enumerate() {
        assert!(j > 0 && j < n, "stride {j} out of range for n={n}");
        let tag = step as u32;
        for (i, prog) in programs.iter_mut().enumerate() {
            let partner = i ^ j;
            let send = Op::Send {
                to: partner,
                bytes: bytes_of(i),
                tag,
            };
            let recv = Op::Recv { from: partner, tag };
            if i < partner {
                prog.push(send);
                prog.push(recv);
            } else {
                prog.push(recv);
                prog.push(send);
            }
        }
    }
    programs
}

/// The large-N grid: 1024/4096/16384-node fat trees, hierarchical solver
/// against the incremental oracle. `pex_*` cells hold a full bisection of
/// uniform flows per step; `mix_*` cells stagger payload sizes so
/// completions trickle in and every recompute is an invalidation test.
pub fn perf_cases_large() -> Vec<PerfCase> {
    let uniform = |_: usize| 1024u64;
    let varied = |i: usize| 256 + 192 * (i % 16) as u64;
    let mut cases = Vec::new();
    for (name, n) in [("pex_1k", 1024usize), ("pex_4k", 4096), ("pex_16k", 16384)] {
        let strides = [1usize, 2, 3, n / 4, n / 2, n / 2 + 1];
        cases.push(PerfCase {
            name,
            what: "truncated pairwise exchange (local + root-crossing strides)",
            n,
            programs: pex_slice_programs(n, &strides, uniform),
            solver: RateSolver::Hierarchical,
            oracle: RateSolver::Incremental,
        });
    }
    for (name, n) in [("mix_1k", 1024usize), ("mix_4k", 4096)] {
        // Intra-cluster strides only (1..3 flips the low two bits, so every
        // pair shares a cluster of four) with varied payloads: completions
        // trickle in pair by pair and each one invalidates a single leaf
        // subtree — the hierarchical solver's win case.
        let strides = [1usize, 2, 3];
        cases.push(PerfCase {
            name,
            what: "cluster-local staggered exchange (localized invalidation)",
            n,
            programs: pex_slice_programs(n, &strides, varied),
            solver: RateSolver::Hierarchical,
            oracle: RateSolver::Incremental,
        });
    }
    cases
}

fn run_with(case: &PerfCase, solver: RateSolver) -> SimReport {
    let mut params = MachineParams::cm5_1992();
    params.rate_solver = solver;
    Simulation::new(case.n, params)
        .run_ops(&case.programs)
        .unwrap_or_else(|e| panic!("perf case {}: {e}", case.name))
}

/// Run a slice of the grid with the oracle pass enabled; see
/// [`run_cases_opts`].
pub fn run_cases(cases: &[PerfCase], reps: u32) -> Vec<PerfMeasurement> {
    run_cases_opts(cases, reps, true)
}

/// Run a slice of the grid. `reps` primary-solver repetitions per case (the
/// best run is reported, damping scheduler noise); with `oracle` set the
/// oracle solver runs `max(1, reps / 2)` times and its makespan is checked
/// against the primary's. `oracle: false` skips that pass entirely (the CI
/// scaling smoke runs the suite twice and only needs to pay once), leaving
/// `oracle_wall_secs`/`speedup_vs_oracle` `None`. Cases at ≥ 1024 nodes skip
/// the untimed warm-up run — at that size one extra simulation costs more
/// than the scheduler noise it would dampen.
pub fn run_cases_opts(cases: &[PerfCase], reps: u32, oracle: bool) -> Vec<PerfMeasurement> {
    assert!(reps > 0, "at least one repetition");
    cases
        .iter()
        .map(|case| {
            if case.n < 1024 {
                // Warm-up: page in code and the allocator before timing.
                let _ = run_with(case, case.solver);
            }
            let mut best = f64::INFINITY;
            let mut report = None;
            for _ in 0..reps {
                let start = Instant::now();
                let r = run_with(case, case.solver);
                let wall = start.elapsed().as_secs_f64();
                if wall < best {
                    best = wall;
                    report = Some(r);
                }
            }
            let report = report.expect("reps > 0");
            let mut oracle_best = None;
            if oracle {
                let mut oracle_wall = f64::INFINITY;
                let mut oracle_makespan = None;
                for _ in 0..reps.div_ceil(2) {
                    let start = Instant::now();
                    let r = run_with(case, case.oracle);
                    oracle_wall = oracle_wall.min(start.elapsed().as_secs_f64());
                    oracle_makespan = Some(r.makespan);
                }
                assert_eq!(
                    Some(report.makespan),
                    oracle_makespan,
                    "{}: solvers must agree on simulated time",
                    case.name
                );
                oracle_best = Some(oracle_wall);
            }
            PerfMeasurement {
                name: case.name.to_string(),
                n: case.n,
                solver: solver_name(case.solver),
                reps,
                wall_secs: best,
                events: report.perf.events,
                events_per_sec: if best > 0.0 {
                    report.perf.events as f64 / best
                } else {
                    0.0
                },
                cells_per_sec: if best > 0.0 { 1.0 / best } else { 0.0 },
                recomputes: report.perf.recomputes,
                flows: report.perf.flows,
                flows_peak: report.perf.flows_peak,
                oracle_wall_secs: oracle_best,
                speedup_vs_oracle: oracle_best.and_then(|o| (best > 0.0).then(|| o / best)),
                makespan_ms: report.makespan.as_millis_f64(),
                sim_jobs: 1,
                windows: 0,
                worker_events_total: 0,
                merge_secs: 0.0,
                speedup_vs_serial: 0.0,
            }
        })
        .collect()
}

/// Core counters that must not depend on the engine's worker count. The
/// deep identity contract (traces, rate samples, per-node accounting) is
/// enforced by the sim crate's own tests and `tests/determinism.rs`; the
/// bench re-checks the headline numbers on every timed run.
fn assert_par_identical(name: &str, serial: &SimReport, par: &SimReport) {
    assert_eq!(serial.makespan, par.makespan, "{name}: makespan");
    assert_eq!(serial.messages, par.messages, "{name}: messages");
    assert_eq!(serial.payload_bytes, par.payload_bytes, "{name}: payload");
    assert_eq!(serial.wire_bytes, par.wire_bytes, "{name}: wire bytes");
    assert_eq!(serial.perf.events, par.perf.events, "{name}: events");
    assert_eq!(
        serial.perf.recomputes, par.perf.recomputes,
        "{name}: recomputes"
    );
    assert_eq!(serial.perf.flows, par.perf.flows, "{name}: flows");
}

/// Time one op workload on the serial engine, then on the windowed engine
/// at `sim_jobs` workers, asserting the reports agree.
fn measure_ops_par(
    name: &'static str,
    n: usize,
    programs: &[OpProgram],
    solver: RateSolver,
    sim_jobs: usize,
) -> PerfMeasurement {
    let mut params = MachineParams::cm5_1992();
    params.rate_solver = solver;
    let start = Instant::now();
    let serial = Simulation::new(n, params.clone())
        .run_ops(programs)
        .unwrap_or_else(|e| panic!("par case {name} (serial): {e}"));
    let serial_wall = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let par = Simulation::new(n, params)
        .sim_jobs(sim_jobs)
        .run_ops(programs)
        .unwrap_or_else(|e| panic!("par case {name} (jobs {sim_jobs}): {e}"));
    let wall = start.elapsed().as_secs_f64();
    assert_par_identical(name, &serial, &par);
    par_measurement(name, n, solver, sim_jobs, serial_wall, wall, &par)
}

fn par_measurement(
    name: &str,
    n: usize,
    solver: RateSolver,
    sim_jobs: usize,
    serial_wall: f64,
    wall: f64,
    par: &SimReport,
) -> PerfMeasurement {
    PerfMeasurement {
        name: name.to_string(),
        n,
        solver: solver_name(solver),
        reps: 1,
        wall_secs: wall,
        events: par.perf.events,
        events_per_sec: if wall > 0.0 {
            par.perf.events as f64 / wall
        } else {
            0.0
        },
        cells_per_sec: if wall > 0.0 { 1.0 / wall } else { 0.0 },
        recomputes: par.perf.recomputes,
        flows: par.perf.flows,
        flows_peak: par.perf.flows_peak,
        oracle_wall_secs: None,
        speedup_vs_oracle: None,
        makespan_ms: par.makespan.as_millis_f64(),
        sim_jobs,
        windows: par.perf.windows,
        worker_events_total: par.perf.worker_events.iter().sum(),
        merge_secs: par.perf.merge_secs,
        speedup_vs_serial: if wall > 0.0 { serial_wall / wall } else { 0.0 },
    }
}

/// An Isend/Recv/WaitAll ring — the tenant-safe analogue of PEX traffic
/// (collectives are rejected inside tenant slices).
fn ring_programs(n: usize, bytes: u64) -> Vec<OpProgram> {
    (0..n)
        .map(|i| {
            vec![
                Op::Isend {
                    to: (i + 1) % n,
                    bytes,
                    tag: 7,
                },
                Op::Recv {
                    from: (i + n - 1) % n,
                    tag: 7,
                },
                Op::WaitAll,
            ]
        })
        .collect()
}

/// The windowed-engine cells: each workload runs once serial and once at
/// `sim_jobs` workers, the reports must agree, and the wall-clock ratio is
/// recorded as `speedup_vs_serial`. `par_pex_16k` is the large-grid PEX
/// slice on the parallel engine; `par_tenants` runs three striped ring
/// tenants through [`run_tenants_jobs`], covering the tenancy path.
pub fn run_par_cases(sim_jobs: usize) -> Vec<PerfMeasurement> {
    assert!(sim_jobs >= 2, "a par cell needs at least two workers");
    let mut out = Vec::new();

    let n = 16384usize;
    let strides = [1usize, 2, 3, n / 4, n / 2, n / 2 + 1];
    let programs = pex_slice_programs(n, &strides, |_| 1024);
    out.push(measure_ops_par(
        "par_pex_16k",
        n,
        &programs,
        RateSolver::Hierarchical,
        sim_jobs,
    ));

    let shared_n = 1024usize;
    let specs = vec![
        TenantSpec {
            name: "ring-a".to_string(),
            programs: ring_programs(512, 4096),
        },
        TenantSpec {
            name: "ring-b".to_string(),
            programs: ring_programs(256, 1024),
        },
        TenantSpec {
            name: "ring-c".to_string(),
            programs: ring_programs(256, 256),
        },
    ];
    let mut params = MachineParams::cm5_1992();
    params.rate_solver = RateSolver::Hierarchical;
    let start = Instant::now();
    let serial = run_tenants_jobs(shared_n, Placement::Striped, &specs, &params, 1)
        .unwrap_or_else(|e| panic!("par case par_tenants (serial): {e}"));
    let serial_wall = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let par = run_tenants_jobs(shared_n, Placement::Striped, &specs, &params, sim_jobs)
        .unwrap_or_else(|e| panic!("par case par_tenants (jobs {sim_jobs}): {e}"));
    let wall = start.elapsed().as_secs_f64();
    assert_par_identical("par_tenants", &serial.report, &par.report);
    for (s, p) in serial.tenants.iter().zip(&par.tenants) {
        assert_eq!(s.makespan, p.makespan, "par_tenants: slice {}", s.name);
        assert_eq!(s.messages, p.messages, "par_tenants: slice {}", s.name);
    }
    out.push(par_measurement(
        "par_tenants",
        shared_n,
        RateSolver::Hierarchical,
        sim_jobs,
        serial_wall,
        wall,
        &par.report,
    ));
    out
}

/// Run the whole suite: the standard grid at `reps` repetitions, then the
/// large-N grid at one repetition each (a 16384-node cell is its own
/// noise damping — the run is long enough to average out the scheduler),
/// then the windowed-engine `par_*` cells at `sim_jobs` workers.
pub fn run_perf_suite(reps: u32) -> Vec<PerfMeasurement> {
    run_perf_suite_opts(reps, true, 4)
}

/// [`run_perf_suite`] with the oracle pass and worker count configurable
/// (`report perf --no-oracle --sim-jobs N`). `sim_jobs` is fixed at 4 by
/// default so the recorded `par_*` cells are comparable across hosts.
pub fn run_perf_suite_opts(reps: u32, oracle: bool, sim_jobs: usize) -> Vec<PerfMeasurement> {
    let mut ms = run_cases_opts(&perf_cases(), reps, oracle);
    ms.extend(run_cases_opts(&perf_cases_large(), 1, oracle));
    ms.extend(run_par_cases(sim_jobs.max(2)));
    ms
}

/// Serialise measurements as the `BENCH_sim.json` artifact (hand-rolled —
/// the build is offline and the schema is flat).
pub fn to_json(measurements: &[PerfMeasurement], quick: bool) -> String {
    // Skipped oracle passes serialise as `null`, not a fake `0.00`.
    let opt = |v: Option<f64>, digits: usize| match v {
        Some(v) => format!("{v:.digits$}"),
        None => "null".to_string(),
    };
    let mut out = format!(
        "{{\n  \"{}\": \"{}\",\n",
        cm5_obs::SCHEMA_KEY,
        cm5_obs::schema_id("bench-sim-perf", 3)
    );
    out.push_str(&format!("  \"quick\": {quick},\n  \"grids\": [\n"));
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"nodes\": {}, \"solver\": \"{}\", \
             \"reps\": {}, \
             \"wall_secs\": {:.6}, \"events\": {}, \"events_per_sec\": {:.1}, \
             \"cells_per_sec\": {:.3}, \"recomputes\": {}, \"flows\": {}, \
             \"flows_peak\": {}, \"oracle_wall_secs\": {}, \
             \"speedup_vs_oracle\": {}, \"makespan_ms\": {:.4}, \
             \"sim_jobs\": {}, \"windows\": {}, \"worker_events_total\": {}, \
             \"merge_secs\": {:.6}, \"speedup_vs_serial\": {:.2}}}{}\n",
            m.name,
            m.n,
            m.solver,
            m.reps,
            m.wall_secs,
            m.events,
            m.events_per_sec,
            m.cells_per_sec,
            m.recomputes,
            m.flows,
            m.flows_peak,
            opt(m.oracle_wall_secs, 6),
            opt(m.speedup_vs_oracle, 2),
            m.makespan_ms,
            m.sim_jobs,
            m.windows,
            m.worker_events_total,
            m.merge_secs,
            m.speedup_vs_serial,
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parse a perf baseline file: `name  min_events_per_sec` pairs, `#`
/// comments and blank lines ignored. Returns `(name, floor)` pairs.
pub fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter_map(|line| {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                return None;
            }
            let mut parts = line.split_whitespace();
            let name = parts.next()?.to_string();
            let floor: f64 = parts.next()?.parse().ok()?;
            Some((name, floor))
        })
        .collect()
}

/// Check measurements against a baseline. Returns the list of failures
/// (`name, got, floor`); empty means the gate passes. Unknown baseline
/// names are ignored (a renamed grid fails open, loudly, in CI review).
pub fn check_baseline(
    measurements: &[PerfMeasurement],
    baseline: &[(String, f64)],
) -> Vec<(String, f64, f64)> {
    let mut failures = Vec::new();
    for (name, floor) in baseline {
        if let Some(m) = measurements.iter().find(|m| &m.name == name) {
            if m.events_per_sec < *floor {
                failures.push((name.clone(), m.events_per_sec, *floor));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_and_serialises() {
        // The small grid only: the large cells are release-build territory
        // and are covered by `report perf` in CI plus tests/scaling_smoke.rs.
        let ms = run_cases(&perf_cases(), 1);
        assert_eq!(ms.len(), 5);
        for m in &ms {
            assert!(m.events > 0, "{}", m.name);
            assert!(m.flows > 0, "{}", m.name);
            assert!(m.makespan_ms > 0.0, "{}", m.name);
            assert_eq!(m.solver, "incremental", "{}", m.name);
        }
        let json = to_json(&ms, true);
        assert!(json.contains("\"schema\": \"cm5-bench-sim-perf/3\""));
        assert!(json.contains("\"rex_128\""));
        assert!(json.contains("\"solver\": \"incremental\""));
        assert!(json.contains("\"sim_jobs\": 1"));
        assert!(json.contains("\"speedup_vs_serial\": 0.00"));
        assert_eq!(json.matches("\"name\"").count(), 5);
    }

    #[test]
    fn no_oracle_skips_the_reference_pass() {
        let cases = perf_cases();
        let ms = run_cases_opts(&cases[..1], 1, false);
        assert_eq!(ms[0].oracle_wall_secs, None);
        assert_eq!(ms[0].speedup_vs_oracle, None);
        assert!(ms[0].events > 0);
        // Skipped passes must read as null downstream, never "0× speedup".
        let json = to_json(&ms, true);
        assert!(json.contains("\"oracle_wall_secs\": null"), "{json}");
        assert!(json.contains("\"speedup_vs_oracle\": null"), "{json}");
    }

    #[test]
    fn par_measurement_covers_windowed_counters() {
        // A scaled-down `par_pex_16k`: debug builds can't afford the real
        // cell, but the measurement path (serial + windowed run, identity
        // assert, counter extraction) is size-independent.
        let programs = pex_slice_programs(64, &[1, 2, 32, 33], |i| 128 + i as u64);
        let m = measure_ops_par("par_smoke", 64, &programs, RateSolver::Incremental, 2);
        assert_eq!(m.sim_jobs, 2);
        assert!(m.windows > 0);
        assert!(m.worker_events_total > 0);
        assert!(m.speedup_vs_serial > 0.0);
        let json = to_json(&[m], true);
        assert!(json.contains("\"sim_jobs\": 2"));
    }

    #[test]
    fn large_grid_is_well_formed() {
        // Shape-check the large cells without running them (debug builds).
        let cases = perf_cases_large();
        assert_eq!(cases.len(), 5);
        for case in &cases {
            assert!(case.n >= 1024, "{}", case.name);
            assert_eq!(case.programs.len(), case.n, "{}", case.name);
            assert_eq!(case.solver, RateSolver::Hierarchical, "{}", case.name);
            assert_eq!(case.oracle, RateSolver::Incremental, "{}", case.name);
            let ops: usize = case.programs.iter().map(Vec::len).sum();
            // Truncated slices, not the full O(N²) exchange.
            assert!(
                ops <= 16 * case.n,
                "{}: {ops} ops is not a truncated slice",
                case.name
            );
        }
    }

    #[test]
    fn pex_slice_is_a_valid_pairing() {
        // Every send has a matching receive: run a small instance end to
        // end under both large-grid solvers.
        let programs = pex_slice_programs(16, &[1, 2, 8, 9], |i| 64 + i as u64);
        for solver in [RateSolver::Hierarchical, RateSolver::Incremental] {
            let mut params = MachineParams::cm5_1992();
            params.rate_solver = solver;
            let r = Simulation::new(16, params).run_ops(&programs).unwrap();
            assert_eq!(r.messages, 4 * 16);
        }
    }

    #[test]
    fn baseline_parses_and_gates() {
        let base = parse_baseline("# comment\nrex_64 1000.0\n\npex_64  2e3 # trailing\n");
        assert_eq!(base.len(), 2);
        let ms = vec![PerfMeasurement {
            name: "rex_64".into(),
            n: 64,
            solver: "incremental",
            reps: 1,
            wall_secs: 1.0,
            events: 500,
            events_per_sec: 500.0,
            cells_per_sec: 1.0,
            recomputes: 1,
            flows: 1,
            flows_peak: 1,
            oracle_wall_secs: Some(2.0),
            speedup_vs_oracle: Some(2.0),
            makespan_ms: 1.0,
            sim_jobs: 1,
            windows: 0,
            worker_events_total: 0,
            merge_secs: 0.0,
            speedup_vs_serial: 0.0,
        }];
        let failures = check_baseline(&ms, &base);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, "rex_64");
    }
}
