//! # cm5-bench — the harness that regenerates the paper's evaluation
//!
//! One runner per experiment family, shared between the Criterion benches
//! (which measure the *simulator*'s wall-clock cost) and the `report`
//! binary (which prints the *simulated* times — the actual reproduction of
//! every figure and table, side by side with the paper's published numbers
//! where the paper gives them).

#![forbid(unsafe_code)]

pub mod model_validation;
pub mod paper;
pub mod perf;
pub mod querygen;
pub mod runners;
pub mod sweep;
pub mod watch;
