//! Deterministic query-trace generator for the scheduling service.
//!
//! `cm5 serve --record` calls into this module to write a reproducible
//! JSON-lines trace in the serve request codec, which `cm5 serve --replay`
//! then feeds back through the worker pool. The generator is a plain
//! xorshift64* stream — same seed, same mix, same query count ⇒ the same
//! trace byte for byte — so the replay determinism test and the CI QPS
//! gate both run against a trace they can regenerate instead of a checked-
//! in fixture.
//!
//! The mix is shaped like real advisory traffic: mostly cheap advise-only
//! queries over the synthetic generators, a steady minority asking for
//! static verification (amortized by the service's verify memo), and rare
//! expensive requests — simulation and multi-tenant runs — kept to small
//! node counts so one trace exercises every service path without any
//! single request dominating the replay.

use std::fmt::Write as _;

/// Which traffic shape to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMix {
    /// Pure advise queries (exchange/broadcast/irregular/workload), no
    /// verification or simulation: the cache-friendly hot path.
    AdviseOnly,
    /// The full mix: advise-heavy with a verify minority and rare
    /// simulate/tenants requests.
    Mixed,
}

impl TraceMix {
    /// Parse a `--mix` flag value.
    pub fn parse(text: &str) -> Result<TraceMix, String> {
        match text {
            "advise" => Ok(TraceMix::AdviseOnly),
            "mixed" => Ok(TraceMix::Mixed),
            other => Err(format!("unknown mix '{other}' (advise|mixed)")),
        }
    }

    /// Stable name, inverse of [`TraceMix::parse`].
    pub fn name(&self) -> &'static str {
        match self {
            TraceMix::AdviseOnly => "advise",
            TraceMix::Mixed => "mixed",
        }
    }
}

/// xorshift64* — tiny, seedable, good enough for traffic shaping. Not
/// `rand` so the trace bytes can never drift with a crate upgrade.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        // Avoid the all-zeros fixed point; splash the seed bits first.
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `0..bound` (bound > 0).
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    /// Pick one element of a non-empty slice.
    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

/// Node counts for cheap advise-only queries: the service accepts any
/// power of two up to its bound, and advising alone is cheap even at the
/// top of this range.
const ADVISE_NODES: [usize; 6] = [8, 16, 32, 64, 128, 256];

/// Node counts for requests the service will actually simulate: the
/// engine is O(n²) per exchange, so replayed simulations stay small.
const SIM_NODES: [usize; 3] = [8, 16, 32];

/// Per-pair message sizes, spanning the paper's short-to-long range.
const BYTES: [u64; 5] = [64, 256, 1024, 4096, 16384];

/// Named real-application patterns the service knows.
const WORKLOADS: [&str; 3] = ["cg", "euler545", "euler2k"];

/// Generate `queries` request lines (newline-terminated JSON-lines text)
/// for `mix`, deterministically from `seed`.
pub fn generate_trace(mix: TraceMix, queries: usize, seed: u64) -> String {
    let mut rng = Rng::new(seed);
    let mut out = String::new();
    for id in 0..queries as u64 {
        let line = match mix {
            TraceMix::AdviseOnly => advise_line(&mut rng, id),
            TraceMix::Mixed => mixed_line(&mut rng, id),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// One cheap advise-only request: no verify, no simulate.
fn advise_line(rng: &mut Rng, id: u64) -> String {
    let n = *rng.pick(&ADVISE_NODES);
    let bytes = *rng.pick(&BYTES);
    match rng.below(10) {
        0..=4 => format!(
            "{{\"id\":{id},\"query\":{{\"kind\":\"exchange\",\"n\":{n},\"bytes\":{bytes}}}}}"
        ),
        5..=6 => format!(
            "{{\"id\":{id},\"query\":{{\"kind\":\"broadcast\",\"n\":{n},\"bytes\":{bytes}}}}}"
        ),
        7..=8 => {
            // Small seed pool so repeated queries hit the advisor cache at
            // a realistic rate instead of never.
            let density = ["0.1", "0.25", "0.5", "0.75"][rng.below(4) as usize];
            let pat_seed = 0x7AB1E + rng.below(8);
            format!(
                "{{\"id\":{id},\"query\":{{\"kind\":\"irregular\",\"n\":{n},\"density\":{density},\"bytes\":256,\"seed\":{pat_seed}}}}}"
            )
        }
        _ => {
            let name = *rng.pick(&WORKLOADS);
            format!(
                "{{\"id\":{id},\"query\":{{\"kind\":\"workload\",\"name\":\"{name}\",\"n\":{n}}}}}"
            )
        }
    }
}

/// One request from the full mix.
fn mixed_line(rng: &mut Rng, id: u64) -> String {
    match rng.below(100) {
        // 70 %: plain advise traffic.
        0..=69 => advise_line(rng, id),
        // 20 %: advise + static verification (memoized by the service).
        70..=89 => {
            let n = *rng.pick(&SIM_NODES);
            let bytes = *rng.pick(&BYTES);
            match rng.below(3) {
                0 => format!(
                    "{{\"id\":{id},\"query\":{{\"kind\":\"broadcast\",\"n\":{n},\"bytes\":{bytes}}},\"verify\":true}}"
                ),
                1 => {
                    let pat_seed = 0x7AB1E + rng.below(4);
                    format!(
                        "{{\"id\":{id},\"query\":{{\"kind\":\"irregular\",\"n\":{n},\"density\":0.25,\"bytes\":256,\"seed\":{pat_seed}}},\"verify\":true}}"
                    )
                }
                _ => format!(
                    "{{\"id\":{id},\"query\":{{\"kind\":\"exchange\",\"n\":{n},\"bytes\":{bytes}}},\"verify\":true}}"
                ),
            }
        }
        // 7 %: advise + simulate, small n only.
        90..=96 => {
            let n = *rng.pick(&SIM_NODES);
            let bytes = *rng.pick(&BYTES);
            format!(
                "{{\"id\":{id},\"query\":{{\"kind\":\"exchange\",\"n\":{n},\"bytes\":{bytes}}},\"simulate\":true}}"
            )
        }
        // 3 %: a two-tenant shared-tree run, the heaviest request kind.
        _ => {
            let placement = if rng.below(2) == 0 {
                "subtree"
            } else {
                "striped"
            };
            let tn = *rng.pick(&[4usize, 8]);
            let bytes = *rng.pick(&[256u64, 1024]);
            let mut line = String::new();
            let _ = write!(
                line,
                "{{\"id\":{id},\"query\":{{\"kind\":\"tenants\",\"shared_n\":64,\"placement\":\"{placement}\",\
                 \"tenants\":[{{\"name\":\"a\",\"n\":{tn},\"bytes\":{bytes}}},{{\"name\":\"b\",\"n\":{tn},\"bytes\":{bytes}}}]}}}}"
            );
            line
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic() {
        let a = generate_trace(TraceMix::Mixed, 200, 42);
        let b = generate_trace(TraceMix::Mixed, 200, 42);
        assert_eq!(a, b);
        let c = generate_trace(TraceMix::Mixed, 200, 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn trace_has_one_line_per_query_with_sequential_ids() {
        let t = generate_trace(TraceMix::AdviseOnly, 50, 7);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 50);
        for (i, line) in lines.iter().enumerate() {
            assert!(
                line.starts_with(&format!("{{\"id\":{i},")),
                "line {i} is {line}"
            );
        }
    }

    #[test]
    fn mixed_trace_contains_every_request_kind() {
        let t = generate_trace(TraceMix::Mixed, 400, 1);
        for needle in [
            "\"kind\":\"exchange\"",
            "\"kind\":\"broadcast\"",
            "\"kind\":\"irregular\"",
            "\"kind\":\"workload\"",
            "\"kind\":\"tenants\"",
            "\"verify\":true",
            "\"simulate\":true",
        ] {
            assert!(t.contains(needle), "mix missing {needle}");
        }
    }

    #[test]
    fn advise_only_trace_never_verifies_or_simulates() {
        let t = generate_trace(TraceMix::AdviseOnly, 300, 9);
        assert!(!t.contains("\"verify\""));
        assert!(!t.contains("\"simulate\""));
        assert!(!t.contains("\"kind\":\"tenants\""));
    }

    #[test]
    fn mix_names_round_trip() {
        for mix in [TraceMix::AdviseOnly, TraceMix::Mixed] {
            assert_eq!(TraceMix::parse(mix.name()), Ok(mix));
        }
        assert!(TraceMix::parse("bogus").is_err());
    }
}
