//! Model validation: score the `cm5-model` advisor against the simulator.
//!
//! Walks the same grids the paper's figures and tables walk — Figure 5,
//! the Figure 6–8 machine-size sweep, Figures 10/11 and Table 11 — and,
//! per cell, compares the algorithm the [`cm5_model::Advisor`] picks from
//! its closed-form cost models against the winner the simulator actually
//! produces. A cell *agrees* when the picks coincide, or when the
//! simulated winner was predicted within 10 % of the pick (the models
//! cannot be asked to split near-ties they price as near-ties).
//!
//! The `report model` section prints these grids plus the four regime
//! boundaries the paper's discussion hangs on (BEX-vs-PEX message-size
//! crossover, REX's 0-byte supremacy, the REB/system-broadcast crossover
//! at 256 nodes, the GS/BS density flip), and `--gate F` turns the
//! Fig 5 + Table 11 agreement fraction into a CI exit code.

use cm5_core::prelude::*;
use cm5_model::prelude::*;
use cm5_sim::{FatTree, MachineParams};
use cm5_workloads::synthetic::synthetic_pattern_exact;

use crate::runners::{
    broadcast_time, exchange_time, irregular_time, FIG10_MSG_SIZES, FIG5_MSG_SIZES, MACHINE_SIZES,
    TABLE11_SEEDS,
};
use crate::sweep::SweepRunner;

/// Message sizes of the Figure 6–8 machine-size sweep (bytes).
pub const SCALING_MSG_SIZES: [u64; 4] = [0, 256, 512, 1920];
/// Message sizes of the Figure 11 machine-size sweep (bytes).
pub const FIG11_MSG_SIZES: [u64; 4] = [256, 1024, 2048, 8192];
/// A sim winner predicted within this factor of the pick still agrees.
pub const MARGIN: f64 = 1.10;

/// One grid cell: every candidate priced by the model and timed by the
/// simulator, in the same (candidate) order.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Human-readable cell coordinates, e.g. `n=32 b=1920`.
    pub label: String,
    /// Candidate algorithms, in `Workload::candidates` order.
    pub algs: Vec<Algorithm>,
    /// Simulated milliseconds per candidate.
    pub sim_ms: Vec<f64>,
    /// Model-predicted milliseconds per candidate.
    pub pred_ms: Vec<f64>,
}

impl Cell {
    /// Index of the simulated winner.
    pub fn sim_winner(&self) -> usize {
        argmin(&self.sim_ms)
    }

    /// Index of the advisor's pick (the predicted winner).
    pub fn pick(&self) -> usize {
        argmin(&self.pred_ms)
    }

    /// Does the advisor's pick agree with the simulator, under the
    /// 10 %-predicted-margin forgiveness?
    pub fn agrees(&self) -> bool {
        let (s, p) = (self.sim_winner(), self.pick());
        s == p || self.pred_ms[s] <= MARGIN * self.pred_ms[p]
    }

    /// Mean relative model error across this cell's candidates.
    pub fn mean_abs_err(&self) -> f64 {
        let total: f64 = self
            .sim_ms
            .iter()
            .zip(&self.pred_ms)
            .map(|(&s, &p)| ((p - s) / s).abs())
            .sum();
        total / self.sim_ms.len() as f64
    }
}

/// A scored grid of cells.
#[derive(Debug, Clone)]
pub struct GridReport {
    /// Which figure or table this grid reproduces.
    pub name: &'static str,
    /// One entry per grid cell.
    pub cells: Vec<Cell>,
}

impl GridReport {
    /// Fraction of cells whose pick agrees with the simulator.
    pub fn agreement(&self) -> f64 {
        let hits = self.cells.iter().filter(|c| c.agrees()).count();
        hits as f64 / self.cells.len().max(1) as f64
    }

    /// Mean relative model error across all cells and candidates.
    pub fn mean_abs_err(&self) -> f64 {
        let total: f64 = self.cells.iter().map(Cell::mean_abs_err).sum();
        total / self.cells.len().max(1) as f64
    }
}

fn argmin(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x < xs[best] {
            best = i;
        }
    }
    best
}

/// Advisor predictions re-ordered into canonical `Workload::candidates`
/// order (the `Recommendation` sorts its candidate list by predicted
/// time; the simulated grids are laid out in `ALL` order).
fn predictions(w: &Workload, params: &MachineParams, tree: &FatTree) -> (Vec<Algorithm>, Vec<f64>) {
    let rec = Advisor::recommend_uncached(w, params, tree);
    let algs = w.candidates();
    let ms: Vec<f64> = algs
        .iter()
        .map(|a| {
            rec.candidates
                .iter()
                .find(|(c, _)| c == a)
                .expect("every candidate priced")
                .1
                .as_millis_f64()
        })
        .collect();
    (algs, ms)
}

/// Exchange grid over `(n, bytes)` points: all four §3 algorithms,
/// simulated in parallel and priced by the advisor.
pub fn exchange_grid(
    runner: &SweepRunner,
    name: &'static str,
    points: &[(usize, u64)],
) -> GridReport {
    let params = MachineParams::cm5_1992();
    let sims: Vec<(ExchangeAlg, usize, u64)> = points
        .iter()
        .flat_map(|&(n, bytes)| ExchangeAlg::ALL.map(move |alg| (alg, n, bytes)))
        .collect();
    let ms = runner.run(&sims, |_, &(alg, n, bytes)| {
        exchange_time(alg, n, bytes).as_millis_f64()
    });
    let cells = points
        .iter()
        .enumerate()
        .map(|(i, &(n, bytes))| {
            let tree = FatTree::new(n);
            let w = Workload::Exchange { n, bytes };
            let (algs, pred_ms) = predictions(&w, &params, &tree);
            let k = ExchangeAlg::ALL.len();
            Cell {
                label: format!("n={n} b={bytes}"),
                algs,
                sim_ms: ms[i * k..(i + 1) * k].to_vec(),
                pred_ms,
            }
        })
        .collect();
    GridReport { name, cells }
}

/// Broadcast grid over `(n, bytes)` points: LIB, REB and the system
/// broadcast, simulated in parallel and priced by the advisor.
pub fn broadcast_grid(
    runner: &SweepRunner,
    name: &'static str,
    points: &[(usize, u64)],
) -> GridReport {
    let params = MachineParams::cm5_1992();
    let sims: Vec<(BroadcastAlg, usize, u64)> = points
        .iter()
        .flat_map(|&(n, bytes)| BroadcastAlg::ALL.map(move |alg| (alg, n, bytes)))
        .collect();
    let ms = runner.run(&sims, |_, &(alg, n, bytes)| {
        broadcast_time(alg, n, bytes).as_millis_f64()
    });
    let cells = points
        .iter()
        .enumerate()
        .map(|(i, &(n, bytes))| {
            let tree = FatTree::new(n);
            let w = Workload::Broadcast { n, bytes };
            let (algs, pred_ms) = predictions(&w, &params, &tree);
            let k = BroadcastAlg::ALL.len();
            Cell {
                label: format!("n={n} b={bytes}"),
                algs,
                sim_ms: ms[i * k..(i + 1) * k].to_vec(),
                pred_ms,
            }
        })
        .collect();
    GridReport { name, cells }
}

/// The Figure 5 grid: 32 nodes, every Figure 5 message size.
pub fn fig5_grid(runner: &SweepRunner) -> GridReport {
    let points: Vec<(usize, u64)> = FIG5_MSG_SIZES.iter().map(|&b| (32, b)).collect();
    exchange_grid(runner, "Figure 5 (exchange, 32 nodes)", &points)
}

/// The Figure 6–8 grid: every machine size × {0, 256, 512, 1920} B.
pub fn scaling_grid(runner: &SweepRunner) -> GridReport {
    let points: Vec<(usize, u64)> = SCALING_MSG_SIZES
        .iter()
        .flat_map(|&b| MACHINE_SIZES.map(move |n| (n, b)))
        .collect();
    exchange_grid(runner, "Figures 6-8 (exchange scaling)", &points)
}

/// The Figure 10 grid: broadcast on 32 nodes, every Figure 10 size.
pub fn fig10_grid(runner: &SweepRunner) -> GridReport {
    let points: Vec<(usize, u64)> = FIG10_MSG_SIZES.iter().map(|&b| (32, b)).collect();
    broadcast_grid(runner, "Figure 10 (broadcast, 32 nodes)", &points)
}

/// The Figure 11 grid: broadcast, every machine size × Figure 11 size.
pub fn fig11_grid(runner: &SweepRunner) -> GridReport {
    let points: Vec<(usize, u64)> = FIG11_MSG_SIZES
        .iter()
        .flat_map(|&b| MACHINE_SIZES.map(move |n| (n, b)))
        .collect();
    broadcast_grid(runner, "Figure 11 (broadcast scaling)", &points)
}

/// The Table 11 grid: 32 nodes, 4 densities × 2 message sizes; both the
/// simulated times and the model predictions are per-cell means over the
/// same [`TABLE11_SEEDS`] synthetic patterns the report section uses.
pub fn table11_grid(runner: &SweepRunner) -> GridReport {
    let params = MachineParams::cm5_1992();
    let tree = FatTree::new(32);
    let points: [(f64, u64); 8] = [
        (0.10, 256),
        (0.10, 512),
        (0.25, 256),
        (0.25, 512),
        (0.50, 256),
        (0.50, 512),
        (0.75, 256),
        (0.75, 512),
    ];
    let sims: Vec<(IrregularAlg, f64, u64, u64)> = points
        .iter()
        .flat_map(|&(density, msg)| {
            (0..TABLE11_SEEDS)
                .flat_map(move |seed| IrregularAlg::ALL.map(move |alg| (alg, density, msg, seed)))
        })
        .collect();
    let ms = runner.run(&sims, |_, &(alg, density, msg, seed)| {
        let pattern = synthetic_pattern_exact(32, density, msg, 0x7AB1E + seed);
        irregular_time(alg, &pattern).as_millis_f64()
    });
    let k = IrregularAlg::ALL.len();
    let cells = points
        .iter()
        .enumerate()
        .map(|(i, &(density, msg))| {
            let mut sim_ms = vec![0.0; k];
            let mut pred_ms = vec![0.0; k];
            let mut algs = Vec::new();
            for seed in 0..TABLE11_SEEDS {
                let base = (i as u64 * TABLE11_SEEDS + seed) as usize * k;
                for (a, s) in sim_ms.iter_mut().enumerate() {
                    *s += ms[base + a] / TABLE11_SEEDS as f64;
                }
                let pattern = synthetic_pattern_exact(32, density, msg, 0x7AB1E + seed);
                let stats = PatternStats::of(&pattern, &tree);
                let w = Workload::Irregular(stats);
                let (cand, pred) = predictions(&w, &params, &tree);
                algs = cand;
                for (a, p) in pred_ms.iter_mut().enumerate() {
                    *p += pred[a] / TABLE11_SEEDS as f64;
                }
            }
            Cell {
                label: format!("d={:.0}% b={msg}", density * 100.0),
                algs,
                sim_ms,
                pred_ms,
            }
        })
        .collect();
    GridReport {
        name: "Table 11 (irregular, 32 nodes)",
        cells,
    }
}

/// One of the four regime boundaries the paper's discussion identifies.
#[derive(Debug, Clone)]
pub struct Boundary {
    /// What the paper claims.
    pub claim: &'static str,
    /// Where the simulator puts the boundary.
    pub simulated: String,
    /// Where the cost models put the boundary.
    pub modeled: String,
    /// Do they coincide?
    pub reproduced: bool,
}

/// Locate the four regime boundaries in both the simulated grids and the
/// model's predictions. Reuses already-scored grids, so this is free.
pub fn boundaries(
    fig5: &GridReport,
    scaling: &GridReport,
    fig11: &GridReport,
    table11: &GridReport,
) -> Vec<Boundary> {
    let mut out = Vec::new();

    // 1. BEX pulls ahead of PEX on 32 nodes once messages are non-zero.
    // "Leads" means a >0.5 % margin: the paper calls the small-message
    // cells indistinguishable, so sub-noise gaps must not move the
    // boundary.
    let lead = |c: &Cell, a: Algorithm, b: Algorithm, ms: &dyn Fn(&Cell, usize) -> f64| {
        let (ia, ib) = (
            c.algs.iter().position(|&x| x == a).expect("candidate"),
            c.algs.iter().position(|&x| x == b).expect("candidate"),
        );
        ms(c, ia) < 0.995 * ms(c, ib)
    };
    let bex = Algorithm::Exchange(ExchangeAlg::Bex);
    let pex = Algorithm::Exchange(ExchangeAlg::Pex);
    let first_bex = |by: &dyn Fn(&Cell, usize) -> f64| {
        fig5.cells
            .iter()
            .zip(&FIG5_MSG_SIZES)
            .find(|(c, _)| lead(c, bex, pex, by))
            .map_or("never".to_string(), |(_, b)| format!("{b} B"))
    };
    let sim_at = first_bex(&|c: &Cell, i: usize| c.sim_ms[i]);
    let model_at = first_bex(&|c: &Cell, i: usize| c.pred_ms[i]);
    out.push(Boundary {
        claim: "BEX overtakes PEX on 32 nodes once messages are non-trivial",
        reproduced: sim_at == model_at,
        simulated: format!("BEX leads from {sim_at}"),
        modeled: format!("BEX leads from {model_at}"),
    });

    // 2. REX wins the 0-byte exchange at every machine size.
    let rex = Algorithm::Exchange(ExchangeAlg::Rex);
    let zero_cells: Vec<&Cell> = scaling
        .cells
        .iter()
        .filter(|c| c.label.ends_with(" b=0"))
        .collect();
    let sim_all = zero_cells.iter().all(|c| c.algs[c.sim_winner()] == rex);
    let model_all = zero_cells.iter().all(|c| c.algs[c.pick()] == rex);
    out.push(Boundary {
        claim: "REX wins the 0-byte exchange at every size through N=256",
        reproduced: sim_all == model_all,
        simulated: format!(
            "REX best in {}/{} sizes",
            zero_cells
                .iter()
                .filter(|c| c.algs[c.sim_winner()] == rex)
                .count(),
            zero_cells.len()
        ),
        modeled: format!(
            "REX best in {}/{} sizes",
            zero_cells
                .iter()
                .filter(|c| c.algs[c.pick()] == rex)
                .count(),
            zero_cells.len()
        ),
    });

    // 3. The REB/system crossover message size at 256 nodes.
    let reb = Algorithm::Broadcast(BroadcastAlg::Recursive);
    let sys = Algorithm::Broadcast(BroadcastAlg::System);
    let cross = |by: &dyn Fn(&Cell, usize) -> f64| {
        fig11
            .cells
            .iter()
            .zip(
                FIG11_MSG_SIZES
                    .iter()
                    .flat_map(|&b| MACHINE_SIZES.map(move |n| (n, b))),
            )
            .filter(|(_, (n, _))| *n == 256)
            .filter(|(c, _)| lead(c, sys, reb, by))
            .last()
            .map_or("never".to_string(), |(_, (_, b))| format!("{b} B"))
    };
    let sim_at = cross(&|c: &Cell, i: usize| c.sim_ms[i]);
    let model_at = cross(&|c: &Cell, i: usize| c.pred_ms[i]);
    out.push(Boundary {
        claim: "system broadcast still beats REB at 1-2 KB on 256 nodes",
        reproduced: sim_at == model_at,
        simulated: format!("system leads through {sim_at}"),
        modeled: format!("system leads through {model_at}"),
    });

    // 4. GS stops winning at 50 % density (Table 11's flip).
    let gs = Algorithm::Irregular(IrregularAlg::Gs);
    let flip = |by: &dyn Fn(&Cell, usize) -> f64| {
        table11
            .cells
            .iter()
            .find(|c| {
                let best = argmin(&(0..c.algs.len()).map(|i| by(c, i)).collect::<Vec<_>>());
                c.algs[best] != gs
            })
            .map_or("never".to_string(), |c| c.label.clone())
    };
    let sim_at = flip(&|c: &Cell, i: usize| c.sim_ms[i]);
    let model_at = flip(&|c: &Cell, i: usize| c.pred_ms[i]);
    out.push(Boundary {
        claim: "GS best below 50 % density; PS/BS take over at >= 50 %",
        reproduced: sim_at.split_whitespace().next() == model_at.split_whitespace().next(),
        simulated: format!("first non-GS win at {sim_at}"),
        modeled: format!("first non-GS win at {model_at}"),
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_grid_agrees_and_prices_accurately() {
        let grid = fig5_grid(&SweepRunner::new(0));
        assert_eq!(grid.cells.len(), FIG5_MSG_SIZES.len());
        assert!(
            grid.agreement() >= 0.9,
            "fig5 agreement {:.2} below gate",
            grid.agreement()
        );
        assert!(
            grid.mean_abs_err() < 0.15,
            "fig5 mean model error {:.3} too large",
            grid.mean_abs_err()
        );
    }

    #[test]
    fn cell_margin_forgiveness() {
        let near_tie = Cell {
            label: "t".into(),
            algs: vec![
                Algorithm::Irregular(IrregularAlg::Ps),
                Algorithm::Irregular(IrregularAlg::Bs),
            ],
            sim_ms: vec![2.0, 1.9],
            pred_ms: vec![1.0, 1.05],
        };
        // Sim winner (Bs) was predicted within 10% of the pick (Ps).
        assert_ne!(near_tie.sim_winner(), near_tie.pick());
        assert!(near_tie.agrees());
        let clear_miss = Cell {
            pred_ms: vec![1.0, 1.5],
            ..near_tie
        };
        assert!(!clear_miss.agrees());
    }
}
