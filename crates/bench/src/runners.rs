//! Shared experiment runners: one function per experiment family, used by
//! both the Criterion benches and the `report` binary.

use cm5_core::prelude::*;
use cm5_sim::{MachineParams, Op, SimDuration, Simulation};
use cm5_workloads::fft::fft2d_programs;
use cm5_workloads::synthetic::synthetic_pattern_exact;

/// Machine-size sweep used by Figures 6–8 and 11.
pub const MACHINE_SIZES: [usize; 4] = [32, 64, 128, 256];
/// Message-size sweep of Figure 5 (bytes).
pub const FIG5_MSG_SIZES: [u64; 9] = [0, 16, 64, 128, 256, 512, 1024, 1920, 2048];
/// Message-size sweep of Figure 10 (bytes).
pub const FIG10_MSG_SIZES: [u64; 8] = [0, 256, 512, 1024, 2048, 4096, 8192, 16384];
/// Number of synthetic-pattern seeds averaged per Table 11 cell.
pub const TABLE11_SEEDS: u64 = 5;

/// Simulated time of one complete exchange.
pub fn exchange_time(alg: ExchangeAlg, n: usize, bytes: u64) -> SimDuration {
    run_schedule(&alg.schedule(n, bytes), &MachineParams::cm5_1992())
        .unwrap_or_else(|e| panic!("{} n={n} bytes={bytes}: {e}", alg.name()))
        .makespan
}

/// Simulated time of one complete exchange under explicit parameters
/// (ablations).
pub fn exchange_time_with(
    alg: ExchangeAlg,
    n: usize,
    bytes: u64,
    params: &MachineParams,
) -> SimDuration {
    run_schedule(&alg.schedule(n, bytes), params)
        .unwrap_or_else(|e| panic!("{} n={n} bytes={bytes}: {e}", alg.name()))
        .makespan
}

/// Simulated time of one one-to-all broadcast from node 0.
pub fn broadcast_time(alg: BroadcastAlg, n: usize, bytes: u64) -> SimDuration {
    let programs = broadcast_programs(alg, n, 0, bytes);
    Simulation::new(n, MachineParams::cm5_1992())
        .run_ops(&programs)
        .unwrap_or_else(|e| panic!("{} n={n} bytes={bytes}: {e}", alg.name()))
        .makespan
}

/// Simulated time of the 2-D FFT cost model (Table 5): `side × side`
/// single-precision complex array on `procs` processors.
pub fn fft_time(alg: ExchangeAlg, procs: usize, side: usize) -> SimDuration {
    let programs = fft2d_programs(alg, procs, side, 8);
    Simulation::new(procs, MachineParams::cm5_1992())
        .run_ops(&programs)
        .unwrap_or_else(|e| panic!("{} p={procs} side={side}: {e}", alg.name()))
        .makespan
}

/// Simulated time of one irregular schedule execution.
pub fn irregular_time(alg: IrregularAlg, pattern: &Pattern) -> SimDuration {
    run_schedule(&alg.schedule(pattern), &MachineParams::cm5_1992())
        .unwrap_or_else(|e| panic!("{}: {e}", alg.name()))
        .makespan
}

/// Mean simulated milliseconds over [`TABLE11_SEEDS`] synthetic patterns
/// (Table 11 cell).
pub fn table11_cell(alg: IrregularAlg, density: f64, msg: u64) -> f64 {
    let mut total = 0.0;
    for seed in 0..TABLE11_SEEDS {
        let pattern = synthetic_pattern_exact(32, density, msg, 0x7AB1E + seed);
        total += irregular_time(alg, &pattern).as_millis_f64();
    }
    total / TABLE11_SEEDS as f64
}

/// The five Table 12 workload patterns on `parts` processors, with names.
pub fn table12_patterns(parts: usize) -> Vec<(&'static str, Pattern)> {
    vec![
        ("Conj. Grad. 16K", cm5_workloads::cg_pattern(parts)),
        ("Euler 545", cm5_workloads::euler_pattern(545, parts)),
        ("Euler 2K", cm5_workloads::euler_pattern(2048, parts)),
        ("Euler 3K", cm5_workloads::euler_pattern(3072, parts)),
        ("Euler 9K", cm5_workloads::euler_pattern(9216, parts)),
    ]
}

/// A quick engine micro-workload: `msgs` back-to-back ping-pongs between
/// two nodes (for benchmarking the event core itself).
pub fn pingpong_programs(msgs: usize, bytes: u64) -> Vec<cm5_sim::OpProgram> {
    let mut a = Vec::with_capacity(msgs * 2);
    let mut b = Vec::with_capacity(msgs * 2);
    for k in 0..msgs as u32 {
        a.push(Op::Send {
            to: 1,
            bytes,
            tag: k,
        });
        a.push(Op::Recv { from: 1, tag: k });
        b.push(Op::Recv { from: 0, tag: k });
        b.push(Op::Send {
            to: 0,
            bytes,
            tag: k,
        });
    }
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runners_produce_positive_times() {
        assert!(exchange_time(ExchangeAlg::Pex, 8, 64).as_nanos() > 0);
        assert!(broadcast_time(BroadcastAlg::Recursive, 8, 64).as_nanos() > 0);
        assert!(fft_time(ExchangeAlg::Bex, 8, 64).as_nanos() > 0);
        assert!(table11_cell(IrregularAlg::Gs, 0.1, 256) > 0.0);
    }

    #[test]
    fn pingpong_runs() {
        let r = Simulation::new(2, MachineParams::cm5_1992())
            .run_ops(&pingpong_programs(10, 16))
            .unwrap();
        assert_eq!(r.messages, 20);
    }

    #[test]
    fn table12_patterns_have_paper_shape() {
        let pats = table12_patterns(32);
        assert_eq!(pats.len(), 5);
        for (name, p) in &pats {
            assert!(p.density() < 0.5, "{name}: density {}", p.density());
            assert!(p.nonzero_pairs() > 0, "{name}");
        }
    }
}
