//! Regenerate every table and figure of the paper's evaluation on the
//! simulated CM-5 and print them side by side with the published numbers.
//!
//! ```sh
//! cargo run --release -p cm5-bench --bin report            # everything
//! cargo run --release -p cm5-bench --bin report -- fig5 table11
//! cargo run --release -p cm5-bench --bin report -- --jobs 4   # 4 workers
//! ```
//!
//! Sections: `fig5 fig6 fig7 fig8 table5 fig10 fig11 table11 table12
//! model`.
//! `model` scores the `cm5-model` advisor's predicted winners against the
//! simulated winners on every grid; `--gate F` makes the binary exit
//! nonzero if Fig 5 + Table 11 agreement falls below `F` (CI hook).
//! `perf` (opt-in, like `beyond`) measures the *simulator's* host cost —
//! wall-clock, events/sec, incremental-vs-full solver speedup — and writes
//! `BENCH_sim.json`; `--quick` runs one repetition per case, `--baseline F`
//! exits nonzero if any grid's events/sec falls below the floors in `F`,
//! `--no-oracle` skips the reference-solver pass (CI smoke runs that
//! already pay for it elsewhere), and `--sim-jobs N` sets the worker count
//! of the windowed-engine `par_*` cells (default 4, minimum 2).
//! `perf` is excluded from the default section set so default output stays
//! byte-identical across runs and `--jobs` values (wall-clock never is).
//! `watch` (opt-in) is the perf-regression watchdog: it re-reads the
//! written `BENCH_sim.json` (including the `serve_replay` cell merged by
//! `cm5 serve --replay --bench-json`) against the `--baseline` floors,
//! writes a `cm5-watch/1` verdict (`--watch-json PATH`), and exits nonzero
//! on any miss — including a baseline cell missing from the artifact.
//! `--prom-lint PATH` runs the offline Prometheus-exposition linter over a
//! scraped `GET /metrics` body.
//! `certify` (opt-in) cross-checks every Fig 5/6–8/10/11 grid point
//! against `cm5-verify`'s static `[LB, UB]` makespan certificates and
//! exits nonzero on a containment miss or a regular-exchange tightness
//! above 2.0× at ≥ 1 KB (the CI certify-smoke gate); `--csv` adds
//! `certify.csv`.
//! `--jobs N` fans the grid cells across `N` worker threads (`0` = one per
//! hardware thread); output is byte-identical to the serial run because
//! results are merged in canonical grid order before printing.
//! `--trace-out DIR` additionally writes one Chrome-trace JSON per Fig 5
//! exchange algorithm at 32 nodes (rerun serially with the `cm5-obs` sinks
//! on, so the files are identical across `--jobs` values).
//! Absolute times are not expected to match 1992 hardware; orderings,
//! ratios and crossover locations are the reproduction targets (see
//! EXPERIMENTS.md).

#![forbid(unsafe_code)]

use cm5_bench::model_validation as mv;
use cm5_bench::paper::{TABLE_11, TABLE_12, TABLE_5};
use cm5_bench::runners::*;
use cm5_bench::sweep::SweepRunner;
use cm5_core::prelude::*;
use cm5_sim::{MachineParams, Simulation};

/// When `--csv <dir>` is given, every section also writes its data there.
static CSV_DIR: std::sync::OnceLock<Option<std::path::PathBuf>> = std::sync::OnceLock::new();

/// Worker pool shared by every section (`--jobs N`, default serial).
static JOBS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();

/// Minimum Fig 5 + Table 11 winner-agreement fraction (`--gate F`).
static GATE: std::sync::OnceLock<Option<f64>> = std::sync::OnceLock::new();

/// `--quick`: one timed repetition per perf case instead of three.
static QUICK: std::sync::OnceLock<bool> = std::sync::OnceLock::new();

/// `--baseline F`: events/sec floors the perf section must clear.
static BASELINE: std::sync::OnceLock<Option<std::path::PathBuf>> = std::sync::OnceLock::new();

/// `--no-oracle`: skip the perf section's reference-solver pass.
static NO_ORACLE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();

/// `--sim-jobs N`: worker count for the perf section's `par_*` cells.
static SIM_JOBS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();

/// `--bench-json PATH`: where the perf section writes its artifact.
static BENCH_JSON: std::sync::OnceLock<std::path::PathBuf> = std::sync::OnceLock::new();

/// `--trace-out DIR`: write Chrome-trace JSON for the Fig 5 algorithms
/// there (one file per exchange algorithm at 32 nodes).
static TRACE_OUT: std::sync::OnceLock<Option<std::path::PathBuf>> = std::sync::OnceLock::new();

/// `--watch-json PATH`: where the `watch` section writes its `cm5-watch/1`
/// verdict document.
static WATCH_JSON: std::sync::OnceLock<Option<std::path::PathBuf>> = std::sync::OnceLock::new();

fn runner() -> SweepRunner {
    SweepRunner::new(*JOBS.get().unwrap_or(&1))
}

fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let Some(Some(dir)) = CSV_DIR.get().map(|d| d.as_ref()) else {
        return;
    };
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    let path = dir.join(format!("{name}.csv"));
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut args: Vec<String> = Vec::new();
    let mut csv_dir = None;
    let mut jobs = 1usize;
    let mut gate = None;
    let mut quick = false;
    let mut baseline = None;
    let mut no_oracle = false;
    let mut sim_jobs = 4usize;
    let mut bench_json = std::path::PathBuf::from("BENCH_sim.json");
    let mut trace_out = None;
    let mut watch_json = None;
    let mut prom_lint = None;
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        if a == "--quick" {
            quick = true;
        } else if a == "--no-oracle" {
            no_oracle = true;
        } else if a == "--sim-jobs" {
            let n = it.next().unwrap_or_else(|| {
                eprintln!("--sim-jobs needs a worker count >= 2 for the par_* cells");
                std::process::exit(2);
            });
            sim_jobs = n.parse().unwrap_or_else(|_| {
                eprintln!("--sim-jobs: not a number: {n}");
                std::process::exit(2);
            });
        } else if a == "--baseline" {
            let f = it.next().unwrap_or_else(|| {
                eprintln!("--baseline needs a floors file (name min_events_per_sec lines)");
                std::process::exit(2);
            });
            baseline = Some(std::path::PathBuf::from(f));
        } else if a == "--bench-json" {
            let f = it.next().unwrap_or_else(|| {
                eprintln!("--bench-json needs a path");
                std::process::exit(2);
            });
            bench_json = std::path::PathBuf::from(f);
        } else if a == "--trace-out" {
            let dir = it.next().unwrap_or_else(|| {
                eprintln!("--trace-out needs a directory");
                std::process::exit(2);
            });
            std::fs::create_dir_all(&dir).expect("create trace dir");
            trace_out = Some(std::path::PathBuf::from(dir));
        } else if a == "--watch-json" {
            let f = it.next().unwrap_or_else(|| {
                eprintln!("--watch-json needs a path for the cm5-watch/1 verdict");
                std::process::exit(2);
            });
            watch_json = Some(std::path::PathBuf::from(f));
        } else if a == "--prom-lint" {
            let f = it.next().unwrap_or_else(|| {
                eprintln!("--prom-lint needs a scraped /metrics file to check");
                std::process::exit(2);
            });
            prom_lint = Some(std::path::PathBuf::from(f));
        } else if a == "--csv" {
            let dir = it.next().unwrap_or_else(|| "report_csv".to_string());
            std::fs::create_dir_all(&dir).expect("create csv dir");
            csv_dir = Some(std::path::PathBuf::from(dir));
        } else if a == "--gate" {
            let f = it.next().unwrap_or_else(|| {
                eprintln!("--gate needs an agreement fraction, e.g. 0.90");
                std::process::exit(2);
            });
            gate = Some(f.parse().unwrap_or_else(|_| {
                eprintln!("--gate: not a number: {f}");
                std::process::exit(2);
            }));
        } else if a == "--jobs" {
            let n = it.next().unwrap_or_else(|| {
                eprintln!("--jobs needs a thread count (0 = all cores)");
                std::process::exit(2);
            });
            jobs = n.parse().unwrap_or_else(|_| {
                eprintln!("--jobs: not a number: {n}");
                std::process::exit(2);
            });
        } else {
            args.push(a);
        }
    }
    CSV_DIR.set(csv_dir).expect("set once");
    JOBS.set(jobs).expect("set once");
    GATE.set(gate).expect("set once");
    QUICK.set(quick).expect("set once");
    BASELINE.set(baseline).expect("set once");
    NO_ORACLE.set(no_oracle).expect("set once");
    SIM_JOBS.set(sim_jobs).expect("set once");
    BENCH_JSON.set(bench_json).expect("set once");
    TRACE_OUT.set(trace_out).expect("set once");
    WATCH_JSON.set(watch_json).expect("set once");
    if let Some(path) = prom_lint {
        run_prom_lint(&path);
    }
    // `beyond`, `perf`, `certify` and `watch` are opt-in: the default
    // section set must stay byte-identical across runs, perf output
    // includes wall-clock, and certify/watch are gates (they exit nonzero
    // on a violation) rather than reproduction tables.
    let want = |s: &str| {
        args.is_empty() && s != "beyond" && s != "perf" && s != "certify" && s != "watch"
            || args.iter().any(|a| a == s || a == "all")
    };

    if want("fig5") {
        fig5();
    }
    if want("fig6") {
        fig_scaling("Figure 6", &[0, 256]);
    }
    if want("fig7") {
        fig_scaling("Figure 7", &[512]);
    }
    if want("fig8") {
        fig_scaling("Figure 8", &[1920]);
    }
    if want("table5") {
        table5();
    }
    if want("fig10") {
        fig10();
    }
    if want("fig11") {
        fig11();
    }
    if want("table11") {
        table11();
    }
    if want("table12") {
        table12();
    }
    if want("certify") {
        certify();
    }
    if want("beyond") {
        beyond();
    }
    if want("model") {
        model();
    }
    if want("perf") {
        perf();
    }
    if want("watch") {
        watch();
    }
    write_traces();
}

/// `--prom-lint PATH`: run the offline Prometheus-exposition linter over a
/// scraped `/metrics` body (CI pipes `curl` output here). Exits nonzero on
/// the first format violation.
fn run_prom_lint(path: &std::path::Path) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("could not read {}: {e}", path.display());
        std::process::exit(2);
    });
    match cm5_obs::lint_prometheus(&text) {
        Ok(samples) => println!("prom-lint: {} — {samples} samples, clean", path.display()),
        Err(e) => {
            eprintln!("prom-lint: {} — {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// The `watch` section: the perf-regression watchdog. Reads the
/// `BENCH_sim.json` artifact (`--bench-json`, including the merged
/// `serve_replay` cell) and the `--baseline` floors, prints the per-cell
/// verdict, optionally writes the `cm5-watch/1` document (`--watch-json`),
/// and exits nonzero if any floor is missed or any baseline cell is
/// missing from the artifact.
fn watch() {
    use cm5_bench::watch as w;
    header(
        "Perf-regression watchdog (opt-in gate)",
        "BENCH_sim.json vs ci/perf_baseline.txt floors; missing cells fail \
         closed. Verdict JSON is a timing artifact — never byte-diffed",
    );
    let bench = BENCH_JSON.get().expect("set in main");
    let Some(Some(baseline)) = BASELINE.get().map(|b| b.as_ref()) else {
        eprintln!("watch needs --baseline <floors file>");
        std::process::exit(2);
    };
    let bench_text = std::fs::read_to_string(bench).unwrap_or_else(|e| {
        eprintln!("could not read {}: {e}", bench.display());
        std::process::exit(2);
    });
    let baseline_text = std::fs::read_to_string(baseline).unwrap_or_else(|e| {
        eprintln!("could not read {}: {e}", baseline.display());
        std::process::exit(2);
    });
    let verdict = w::watch(&bench_text, &baseline_text).unwrap_or_else(|e| {
        eprintln!("watch: {e}");
        std::process::exit(2);
    });
    print!("{}", w::verdict_table(&verdict));
    if let Some(Some(path)) = WATCH_JSON.get().map(|p| p.as_ref()) {
        match std::fs::write(path, w::verdict_json(&verdict)) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("could not write {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    if verdict.pass {
        println!("watch: all {} floors met", verdict.checks.len());
    } else {
        eprintln!(
            "watch: FAILED — {} cell(s) below floor, {} missing",
            verdict.checks.iter().filter(|c| !c.pass).count(),
            verdict.missing.len()
        );
        std::process::exit(1);
    }
}

/// `--trace-out DIR`: rerun the four Fig 5 exchange algorithms at 32 nodes
/// with the observability sinks on and export one Chrome-trace JSON each.
/// Runs serially outside the worker pool, so the files are byte-identical
/// across `--jobs` values.
fn write_traces() {
    let Some(Some(dir)) = TRACE_OUT.get().map(|d| d.as_ref()) else {
        return;
    };
    let n = 32;
    let bytes = 1024;
    let params = MachineParams::cm5_1992();
    let topo = cm5_sim::Topology::FatTree(cm5_sim::FatTree::new(n));
    for alg in ExchangeAlg::ALL {
        let key = match alg {
            ExchangeAlg::Lex => "lex",
            ExchangeAlg::Pex => "pex",
            ExchangeAlg::Rex => "rex",
            ExchangeAlg::Bex => "bex",
        };
        let programs = lower(&alg.schedule(n, bytes));
        let report = Simulation::new_on(topo.clone(), params.clone())
            .record_trace(true)
            .record_rates(true)
            .run_ops(&programs)
            .expect("trace run");
        let json = cm5_obs::chrome_trace(&report, &topo, &params);
        let path = dir.join(format!("trace_{key}_n{n}.json"));
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("wrote {}", path.display());
        }
    }
}

fn header(title: &str, claim: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("paper's claim: {claim}");
    println!("================================================================");
}

fn fig5() {
    header(
        "Figure 5 — Complete exchange on 32 nodes vs message size (ms)",
        "LEX far worst; PEX/REX/BEX indistinguishable when small; for large \
         messages PEX beats REX and BEX beats PEX",
    );
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "bytes", "Linear", "Pairwise", "Recursive", "Balanced"
    );
    let cells: Vec<(ExchangeAlg, u64)> = FIG5_MSG_SIZES
        .iter()
        .flat_map(|&bytes| ExchangeAlg::ALL.map(|alg| (alg, bytes)))
        .collect();
    let ms = runner().run(&cells, |_, &(alg, bytes)| {
        exchange_time(alg, 32, bytes).as_millis_f64()
    });
    let mut rows = Vec::new();
    for (r, &bytes) in FIG5_MSG_SIZES.iter().enumerate() {
        print!("{bytes:>8}");
        let mut row = vec![bytes.to_string()];
        for c in 0..ExchangeAlg::ALL.len() {
            let ms = ms[r * ExchangeAlg::ALL.len() + c];
            print!(" {ms:>12.3}");
            row.push(format!("{ms:.4}"));
        }
        println!();
        rows.push(row);
    }
    write_csv(
        "fig5",
        &[
            "bytes",
            "linear_ms",
            "pairwise_ms",
            "recursive_ms",
            "balanced_ms",
        ],
        &rows,
    );
}

fn fig_scaling(title: &str, msg_sizes: &[u64]) {
    header(
        &format!("{title} — Complete exchange vs machine size (ms), msg ∈ {msg_sizes:?} B"),
        "0 B: REX best at every size (lg N steps). Larger messages: BEX/PEX \
         lead; the paper's prose has REX overtaking at 256 nodes, though its \
         own Table 5 at 256 procs shows REX slightly behind — our model \
         follows the Table 5 shape (see EXPERIMENTS.md)",
    );
    let cells: Vec<(ExchangeAlg, usize, u64)> = msg_sizes
        .iter()
        .flat_map(|&bytes| {
            MACHINE_SIZES
                .iter()
                .flat_map(move |&n| ExchangeAlg::ALL.map(move |alg| (alg, n, bytes)))
        })
        .collect();
    let ms = runner().run(&cells, |_, &(alg, n, bytes)| {
        exchange_time(alg, n, bytes).as_millis_f64()
    });
    let mut next = ms.iter();
    for &bytes in msg_sizes {
        println!("message size {bytes} B:");
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>12}",
            "nodes", "Linear", "Pairwise", "Recursive", "Balanced"
        );
        for &n in &MACHINE_SIZES {
            print!("{n:>8}");
            for _ in ExchangeAlg::ALL {
                print!(" {:>12.3}", next.next().expect("grid size"));
            }
            println!();
        }
    }
}

fn table5() {
    header(
        "Table 5 — 2-D FFT (seconds); measured | paper",
        "Linear worst by far (catastrophic at 256 procs); the other three \
         close, Balanced best for the largest arrays",
    );
    let cells: Vec<(ExchangeAlg, usize, usize)> = [(32usize, 0usize), (256, 1)]
        .iter()
        .flat_map(|&(procs, _)| {
            TABLE_5
                .iter()
                .flat_map(move |row| ExchangeAlg::ALL.map(move |alg| (alg, procs, row.side)))
        })
        .collect();
    let secs = runner().run(&cells, |_, &(alg, procs, side)| {
        fft_time(alg, procs, side).as_secs_f64()
    });
    let mut next = secs.iter();
    for &(procs, pick) in &[(32usize, 0usize), (256, 1)] {
        println!("processors = {procs}:");
        println!(
            "{:>10} {:>17} {:>17} {:>17} {:>17}",
            "array", "Linear", "Pairwise", "Recursive", "Balanced"
        );
        for row in &TABLE_5 {
            print!("{:>7}^2 ", row.side);
            let paper = if pick == 0 { &row.p32 } else { &row.p256 };
            for (i, _) in ExchangeAlg::ALL.iter().enumerate() {
                let t = next.next().expect("grid size");
                print!(" {:>8.3}|{:<8.3}", t, paper[i]);
            }
            println!();
        }
    }
}

fn fig10() {
    header(
        "Figure 10 — Broadcast on 32 nodes vs message size (ms)",
        "LIB far worst; system broadcast wins below ~1 KB, REB wins above",
    );
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "bytes", "LIB", "REB", "System"
    );
    let cells: Vec<(BroadcastAlg, u64)> = FIG10_MSG_SIZES
        .iter()
        .flat_map(|&bytes| BroadcastAlg::ALL.map(|alg| (alg, bytes)))
        .collect();
    let ms = runner().run(&cells, |_, &(alg, bytes)| {
        broadcast_time(alg, 32, bytes).as_millis_f64()
    });
    let mut next = ms.iter();
    for &bytes in &FIG10_MSG_SIZES {
        print!("{bytes:>8}");
        for _ in BroadcastAlg::ALL {
            print!(" {:>12.3}", next.next().expect("grid size"));
        }
        println!();
    }
}

fn fig11() {
    header(
        "Figure 11 — REB vs system broadcast vs machine size (ms)",
        "System broadcast nearly flat in N; REB grows with lg N; the \
         crossover message size moves up to ~2 KB at 256 nodes",
    );
    const FIG11_ALGS: [BroadcastAlg; 2] = [BroadcastAlg::Recursive, BroadcastAlg::System];
    let cells: Vec<(BroadcastAlg, usize, u64)> = [256u64, 1024, 2048, 8192]
        .iter()
        .flat_map(|&bytes| {
            MACHINE_SIZES
                .iter()
                .flat_map(move |&n| FIG11_ALGS.map(move |alg| (alg, n, bytes)))
        })
        .collect();
    let ms = runner().run(&cells, |_, &(alg, n, bytes)| {
        broadcast_time(alg, n, bytes).as_millis_f64()
    });
    let mut next = ms.iter();
    for &bytes in &[256u64, 1024, 2048, 8192] {
        println!("message size {bytes} B:");
        println!("{:>8} {:>12} {:>12}", "nodes", "REB", "System");
        for &n in &MACHINE_SIZES {
            let reb = next.next().expect("grid size");
            let sys = next.next().expect("grid size");
            println!("{n:>8} {reb:>12.3} {sys:>12.3}");
        }
    }
}

fn table11() {
    header(
        "Table 11 — Synthetic irregular patterns, 32 nodes (ms); measured | paper",
        "Linear worst everywhere; Greedy best below 50 % density; \
         Balanced best above",
    );
    println!(
        "{:>9} {:>6} {:>17} {:>17} {:>17} {:>17}",
        "density", "msg", "Linear", "Pairwise", "Balanced", "Greedy"
    );
    // Both the paper's columns and IrregularAlg::ALL run
    // (Linear, Pairwise, Balanced, Greedy).
    let cells: Vec<(IrregularAlg, f64, u64)> = TABLE_11
        .iter()
        .flat_map(|row| IrregularAlg::ALL.map(|alg| (alg, row.density, row.msg)))
        .collect();
    let ms = runner().run(&cells, |_, &(alg, density, msg)| {
        table11_cell(alg, density, msg)
    });
    let mut next = ms.iter();
    for row in &TABLE_11 {
        print!("{:>8.0}% {:>6}", row.density * 100.0, row.msg);
        for i in 0..IrregularAlg::ALL.len() {
            let t = next.next().expect("grid size");
            print!(" {:>8.3}|{:<8.3}", t, row.times_ms[i]);
        }
        println!();
    }
}

fn table12() {
    header(
        "Table 12 — Real irregular patterns, 32 nodes (ms); measured | paper",
        "Greedy best on every real problem (all densities < 50 %); \
         Linear far worst",
    );
    let patterns = table12_patterns(32);
    println!(
        "{:>16} {:>14} {:>17} {:>17} {:>17} {:>17}",
        "workload", "dens/avgB", "Linear", "Pairwise", "Balanced", "Greedy"
    );
    let cells: Vec<(IrregularAlg, usize)> = (0..patterns.len())
        .flat_map(|pi| IrregularAlg::ALL.map(move |alg| (alg, pi)))
        .collect();
    let ms = runner().run(&cells, |_, &(alg, pi)| {
        irregular_time(alg, &patterns[pi].1).as_millis_f64()
    });
    let mut next = ms.iter();
    for (row, (name, pattern)) in TABLE_12.iter().zip(&patterns) {
        assert_eq!(row.name, *name);
        print!(
            "{:>16} {:>6.0}%/{:<6.0}",
            name,
            pattern.density() * 100.0,
            pattern.avg_msg_bytes()
        );
        for i in 0..IrregularAlg::ALL.len() {
            let t = next.next().expect("grid size");
            print!(" {:>8.3}|{:<8.3}", t, row.times_ms[i]);
        }
        println!();
        println!(
            "{:>16} {:>6.0}%/{:<6.0}   (paper's pattern statistics)",
            "",
            row.density * 100.0,
            row.avg_bytes
        );
    }
}

/// Extensions beyond the paper (opt-in: `report beyond`).
fn beyond() {
    header(
        "Beyond the paper — what-if machines and the crystal-router baseline",
        "not in the paper; extensions DESIGN.md motivates",
    );

    // 1. Asynchronous CMMD: the §3.1 hypothetical per algorithm.
    println!("(a) blocking vs non-blocking sends, 32 nodes, 256 B/pair (ms):");
    println!(
        "{:>12} {:>12} {:>12} {:>8}",
        "algorithm", "blocking", "isend", "gain"
    );
    let mut rows = Vec::new();
    for alg in ExchangeAlg::ALL {
        let schedule = alg.schedule(32, 256);
        let params = MachineParams::cm5_1992();
        let sim = Simulation::new(32, params);
        let sync = sim
            .run_ops(&lower(&schedule))
            .expect("sync run")
            .makespan
            .as_millis_f64();
        let asy = sim
            .run_ops(&lower_with(
                &schedule,
                &LowerOptions {
                    async_sends: true,
                    ..Default::default()
                },
            ))
            .expect("async run")
            .makespan
            .as_millis_f64();
        println!(
            "{:>12} {sync:>12.3} {asy:>12.3} {:>7.2}x",
            alg.name(),
            sync / asy
        );
        rows.push(vec![
            alg.name().to_string(),
            format!("{sync:.4}"),
            format!("{asy:.4}"),
        ]);
    }
    write_csv(
        "beyond_async",
        &["algorithm", "blocking_ms", "isend_ms"],
        &rows,
    );

    // 2. The 1993 vector-unit upgrade: Table 5's 2048² row recomputed.
    println!("\n(b) Table 5, 2048² on 32 procs, scalar 1992 vs vector 1993 (s):");
    println!("{:>12} {:>12} {:>12}", "algorithm", "scalar", "vector");
    for alg in ExchangeAlg::ALL {
        let programs = cm5_workloads::fft2d_programs(alg, 32, 2048, 8);
        let scalar = Simulation::new(32, MachineParams::cm5_1992())
            .run_ops(&programs)
            .expect("scalar run")
            .makespan
            .as_secs_f64();
        let vector = Simulation::new(32, MachineParams::cm5_vector_1993())
            .run_ops(&programs)
            .expect("vector run")
            .makespan
            .as_secs_f64();
        println!("{:>12} {scalar:>12.3} {vector:>12.3}", alg.name());
    }
    println!(
        "vector units shrink compute ~12x; the exchange algorithm choice \n\
         becomes the dominant term — scheduling matters more, not less."
    );

    // 3. Crystal router vs greedy across message sizes.
    println!("\n(c) crystal router (Fox et al.) vs greedy, 32 nodes, 50% density (ms):");
    println!("{:>10} {:>12} {:>12}", "msg bytes", "greedy", "crystal");
    let mut rows = Vec::new();
    for &bytes in &[4u64, 16, 64, 256, 1024] {
        let pattern = Pattern::seeded_random(32, 0.5, bytes, 42);
        let params = MachineParams::cm5_1992();
        let g = run_schedule(&gs(&pattern), &params)
            .expect("gs run")
            .makespan
            .as_millis_f64();
        let c = run_schedule(&cm5_core::irregular::crystal(&pattern), &params)
            .expect("crystal run")
            .makespan
            .as_millis_f64();
        println!("{bytes:>10} {g:>12.3} {c:>12.3}");
        rows.push(vec![
            bytes.to_string(),
            format!("{g:.4}"),
            format!("{c:.4}"),
        ]);
    }
    write_csv(
        "beyond_crystal",
        &["bytes", "greedy_ms", "crystal_ms"],
        &rows,
    );

    // 4. The architectural counterfactual: the same schedules on the
    //    hypercube PEX was designed for.
    use cm5_sim::{Hypercube, Topology};
    println!("\n(d) PEX vs BEX on the fat tree vs on a hypercube, 32 nodes, 1920 B (ms):");
    println!("{:>12} {:>12} {:>12}", "topology", "Pairwise", "Balanced");
    for (name, topo) in [
        ("fat tree", Topology::FatTree(cm5_sim::FatTree::new(32))),
        ("hypercube", Topology::Hypercube(Hypercube::new(32))),
    ] {
        print!("{name:>12}");
        for alg in [ExchangeAlg::Pex, ExchangeAlg::Bex] {
            let t = Simulation::new_on(topo.clone(), MachineParams::cm5_1992())
                .run_ops(&lower(&alg.schedule(32, 1920)))
                .expect("topology run")
                .makespan
                .as_millis_f64();
            print!(" {t:>12.3}");
        }
        println!();
    }
    println!(
        "on the hypercube, PEX's XOR steps are congestion-free and BEX's \n\
         rotation only hurts — the paper's §3.4 result is a fat-tree fact."
    );
}

/// Simulator performance (`report perf`): host-side cost of the hot loop
/// and the incremental solver's speedup over the full-recompute oracle.
fn perf() {
    use cm5_bench::perf as p;
    header(
        "Simulator performance — host cost of the hot loop (opt-in)",
        "not in the paper; measures the simulator itself. Small grids: \
         incremental solver vs the --rates full oracle. Large grids \
         (1024-16384 nodes): hierarchical solver vs the incremental oracle",
    );
    let quick = *QUICK.get().unwrap_or(&false);
    let reps = if quick { 1 } else { 3 };
    let oracle = !*NO_ORACLE.get().unwrap_or(&false);
    let sim_jobs = *SIM_JOBS.get().unwrap_or(&4);
    let measurements = p::run_perf_suite_opts(reps, oracle, sim_jobs);
    println!(
        "{:>8} {:>6} {:>13} {:>11} {:>10} {:>12} {:>11} {:>10} {:>9}",
        "grid",
        "nodes",
        "solver",
        "wall ms",
        "events",
        "events/sec",
        "recomputes",
        "peakflows",
        "speedup"
    );
    for m in &measurements {
        println!(
            "{:>8} {:>6} {:>13} {:>11.3} {:>10} {:>12.0} {:>11} {:>10} {:>9}",
            m.name,
            m.n,
            m.solver,
            m.wall_secs * 1e3,
            m.events,
            m.events_per_sec,
            m.recomputes,
            m.flows_peak,
            m.speedup_vs_oracle
                .map_or("n/a".to_string(), |s| format!("{s:.2}x")),
        );
    }
    for m in measurements.iter().filter(|m| m.sim_jobs > 1) {
        println!(
            "{:>8}: windowed engine, {} workers, {} windows, {} worker events, \
             merge {:.1} ms, speedup vs serial {:.2}x",
            m.name,
            m.sim_jobs,
            m.windows,
            m.worker_events_total,
            m.merge_secs * 1e3,
            m.speedup_vs_serial
        );
    }
    let json_path = BENCH_JSON.get().expect("set in main");
    let json = p::to_json(&measurements, quick);
    match std::fs::write(json_path, &json) {
        Ok(()) => println!("\nwrote {}", json_path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", json_path.display());
            std::process::exit(1);
        }
    }
    if let Some(Some(path)) = BASELINE.get().map(|b| b.as_ref()) {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("could not read baseline {}: {e}", path.display());
            std::process::exit(2);
        });
        let floors = p::parse_baseline(&text);
        let failures = p::check_baseline(&measurements, &floors);
        if failures.is_empty() {
            println!(
                "perf gate passed: every grid above its events/sec floor ({})",
                path.display()
            );
        } else {
            for (name, got, floor) in &failures {
                eprintln!("perf gate FAILED: {name}: {got:.0} events/sec < floor {floor:.0}");
            }
            std::process::exit(1);
        }
    }
}

/// One certified grid point: a static `[LB, UB]` makespan interval from
/// `cm5-verify` next to the simulated makespan it must bracket.
struct CertRow {
    fig: &'static str,
    alg: &'static str,
    /// Whether the UB/LB ≤ 2.0 tightness gate at ≥ 1 KB applies (the four
    /// regular exchange algorithms; broadcasts are reported, not gated).
    gated: bool,
    n: usize,
    bytes: u64,
    lb_ms: f64,
    ub_ms: f64,
    sim_ms: f64,
    tightness: f64,
    contained: bool,
}

fn cert_row(
    fig: &'static str,
    alg: &'static str,
    gated: bool,
    n: usize,
    bytes: u64,
    cert: &cm5_verify::Certificate,
    sim: cm5_sim::SimDuration,
) -> CertRow {
    CertRow {
        fig,
        alg,
        gated,
        n,
        bytes,
        lb_ms: cert.lb.as_millis_f64(),
        ub_ms: cert.ub.as_millis_f64(),
        sim_ms: sim.as_millis_f64(),
        tightness: cert.tightness(),
        contained: cert.contains(sim),
    }
}

/// Static certification sweep (`report certify`, opt-in): certify every
/// Fig 5/6–8/10/11 grid point with `cm5-verify`'s abstract interpreter and
/// check the simulated makespan lands inside `[LB, UB]`. Exits nonzero on
/// any containment miss, or if a regular exchange algorithm certifies
/// looser than 2.0× at ≥ 1 KB — this is the CI certify-smoke gate.
fn certify() {
    header(
        "Certify — static [LB, UB] makespan certificates vs simulation",
        "not in the paper; every simulated Fig 5/6-8/10/11 grid point must \
         land inside its certified interval, and the four exchange \
         algorithms must certify within 2.0x at >= 1 KB",
    );
    enum Cell {
        Exchange(&'static str, ExchangeAlg, usize, u64),
        Broadcast(&'static str, BroadcastAlg, usize, u64),
    }
    let mut cells: Vec<Cell> = Vec::new();
    for &bytes in &FIG5_MSG_SIZES {
        for alg in ExchangeAlg::ALL {
            cells.push(Cell::Exchange("fig5", alg, 32, bytes));
        }
    }
    for &(fig, bytes) in &[("fig6", 0u64), ("fig6", 256), ("fig7", 512), ("fig8", 1920)] {
        for &n in &MACHINE_SIZES {
            for alg in ExchangeAlg::ALL {
                cells.push(Cell::Exchange(fig, alg, n, bytes));
            }
        }
    }
    for &bytes in &FIG10_MSG_SIZES {
        for alg in BroadcastAlg::ALL {
            cells.push(Cell::Broadcast("fig10", alg, 32, bytes));
        }
    }
    for &bytes in &[256u64, 1024, 2048, 8192] {
        for &n in &MACHINE_SIZES {
            for alg in [BroadcastAlg::Recursive, BroadcastAlg::System] {
                cells.push(Cell::Broadcast("fig11", alg, n, bytes));
            }
        }
    }
    let params = MachineParams::cm5_1992();
    let rows: Vec<CertRow> = runner().run(&cells, |_, cell| match *cell {
        Cell::Exchange(fig, alg, n, bytes) => {
            let cert = cm5_verify::certify_schedule(
                &alg.schedule(n, bytes),
                &LowerOptions::default(),
                &params,
            )
            .unwrap_or_else(|e| panic!("certify {} n={n} bytes={bytes}: {e}", alg.name()));
            cert_row(
                fig,
                alg.name(),
                true,
                n,
                bytes,
                &cert,
                exchange_time(alg, n, bytes),
            )
        }
        Cell::Broadcast(fig, alg, n, bytes) => {
            let programs = broadcast_programs(alg, n, 0, bytes);
            let cert = cm5_verify::certify_programs(&programs, &params)
                .unwrap_or_else(|e| panic!("certify {} n={n} bytes={bytes}: {e}", alg.name()));
            cert_row(
                fig,
                alg.name(),
                false,
                n,
                bytes,
                &cert,
                broadcast_time(alg, n, bytes),
            )
        }
    });

    let mut failures = Vec::new();
    for r in &rows {
        if !r.contained {
            failures.push(format!(
                "{} {} n={} bytes={}: simulated {:.3} ms outside [{:.3}, {:.3}] ms",
                r.fig, r.alg, r.n, r.bytes, r.sim_ms, r.lb_ms, r.ub_ms
            ));
        }
    }
    println!(
        "{:>10} {:>6} {:>10} {:>12} {:>18}",
        "algorithm", "cells", "contained", "worst UB/LB", "worst UB/LB >=1KB"
    );
    let mut algs: Vec<&'static str> = Vec::new();
    for r in &rows {
        if !algs.contains(&r.alg) {
            algs.push(r.alg);
        }
    }
    for alg in algs {
        let sel: Vec<&CertRow> = rows.iter().filter(|r| r.alg == alg).collect();
        let contained = sel.iter().filter(|r| r.contained).count();
        let worst = sel.iter().map(|r| r.tightness).fold(0.0f64, f64::max);
        let worst_big = sel
            .iter()
            .filter(|r| r.bytes >= 1024)
            .map(|r| r.tightness)
            .fold(0.0f64, f64::max);
        println!(
            "{:>10} {:>6} {:>10} {:>12.3} {:>18.3}",
            alg,
            sel.len(),
            contained,
            worst,
            worst_big
        );
        if sel.iter().any(|r| r.gated) && worst_big > 2.0 {
            failures.push(format!(
                "{alg}: worst UB/LB at >= 1 KB is {worst_big:.3}, above the 2.0 gate"
            ));
        }
    }
    write_csv(
        "certify",
        &[
            "figure",
            "algorithm",
            "nodes",
            "bytes",
            "lb_ms",
            "ub_ms",
            "sim_ms",
            "tightness",
            "contained",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.fig.to_string(),
                    r.alg.to_string(),
                    r.n.to_string(),
                    r.bytes.to_string(),
                    format!("{:.4}", r.lb_ms),
                    format!("{:.4}", r.ub_ms),
                    format!("{:.4}", r.sim_ms),
                    format!("{:.4}", r.tightness),
                    r.contained.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    if failures.is_empty() {
        println!(
            "certify gate: PASS — {} grid points contained, exchange tightness <= 2.0 at >= 1 KB",
            rows.len()
        );
    } else {
        println!("certify gate: FAIL");
        for f in &failures {
            println!("  {f}");
        }
        std::process::exit(1);
    }
}

/// Model validation: the `cm5-model` advisor scored against the simulator
/// on every grid, plus the four regime boundaries (`report model`).
fn model() {
    header(
        "Model validation — advisor-predicted vs simulated winners",
        "not in the paper; scores the cm5-model closed-form cost models: \
         the advisor should pick the simulated winner (or a runner-up it \
         prices within 10%) on >= 90% of Fig 5 + Table 11 cells",
    );
    let runner = runner();
    let fig5 = mv::fig5_grid(&runner);
    let scaling = mv::scaling_grid(&runner);
    let fig10 = mv::fig10_grid(&runner);
    let fig11 = mv::fig11_grid(&runner);
    let table11 = mv::table11_grid(&runner);

    let mut rows = Vec::new();
    for grid in [&fig5, &scaling, &fig10, &fig11, &table11] {
        println!("\n{}:", grid.name);
        println!(
            "{:>14} {:>16} {:>16} {:>10} {:>10} {:>7}",
            "cell", "sim winner", "advisor pick", "sim ms", "pred ms", "agree"
        );
        for c in &grid.cells {
            let (s, p) = (c.sim_winner(), c.pick());
            println!(
                "{:>14} {:>16} {:>16} {:>10.3} {:>10.3} {:>7}",
                c.label,
                c.algs[s].name(),
                c.algs[p].name(),
                c.sim_ms[s],
                c.pred_ms[p],
                if c.agrees() { "yes" } else { "MISS" }
            );
            rows.push(vec![
                grid.name.to_string(),
                c.label.clone(),
                c.algs[s].name().to_string(),
                c.algs[p].name().to_string(),
                format!("{:.4}", c.sim_ms[s]),
                format!("{:.4}", c.pred_ms[p]),
                (c.agrees() as u8).to_string(),
            ]);
        }
        println!(
            "  agreement {:>5.1}%   mean |model error| {:>5.1}%",
            grid.agreement() * 100.0,
            grid.mean_abs_err() * 100.0
        );
    }
    write_csv(
        "model_validation",
        &[
            "grid",
            "cell",
            "sim_winner",
            "advisor_pick",
            "sim_best_ms",
            "pred_best_ms",
            "agree",
        ],
        &rows,
    );

    println!("\nregime boundaries (paper §3-§4 discussion):");
    let bounds = mv::boundaries(&fig5, &scaling, &fig11, &table11);
    for b in &bounds {
        println!("  {}", b.claim);
        println!(
            "    sim: {:<38} model: {:<38} {}",
            b.simulated,
            b.modeled,
            if b.reproduced {
                "reproduced"
            } else {
                "DIVERGES"
            }
        );
    }

    let gated_cells = fig5.cells.len() + table11.cells.len();
    let gated_hits = fig5
        .cells
        .iter()
        .chain(&table11.cells)
        .filter(|c| c.agrees())
        .count();
    let gated = gated_hits as f64 / gated_cells as f64;
    println!(
        "\ngate metric (Fig 5 + Table 11): {gated_hits}/{gated_cells} cells agree = {:.1}%",
        gated * 100.0
    );
    if let Some(Some(min)) = GATE.get() {
        if gated < *min {
            eprintln!(
                "model gate FAILED: agreement {:.3} below required {:.3}",
                gated, min
            );
            std::process::exit(1);
        }
        println!("gate passed (>= {:.0}% required)", min * 100.0);
    }
}
