//! Flow-level model of the data network.
//!
//! Rather than routing individual 20-byte packets, each in-flight message is
//! a *flow* with a number of wire bytes remaining. Whenever the set of
//! active flows changes, link bandwidth is re-divided among them — by
//! default with progressive-filling **max-min fairness**, which models the
//! per-packet round-robin arbitration of the CM-5 data-network switches.
//! Between changes every flow drains at a constant rate, so completion
//! times are exact and the whole model is deterministic.
//!
//! Each flow is additionally capped at the CMMD software streaming rate
//! ([`MachineParams::flow_cap`]); the fat-tree thinning (the published
//! 20/10/5 MB/s per-node figures) appears as shared *link* capacity, so it
//! bites exactly when many flows cross a level at once — the PEX-vs-BEX
//! mechanism of the paper's §3.4. The same engine also runs over the
//! hypercube counterfactual ([`crate::topology::Topology`]).
//!
//! # Solver implementations
//!
//! Three [`RateSolver`] backends produce **bit-identical** results:
//!
//! * [`RateSolver::Incremental`] (default) stores flows in a
//!   struct-of-arrays slab with per-link member counts, recomputes rates
//!   lazily — once per timestamp however many flows were admitted — into
//!   persistent scratch buffers with zero per-call allocation, and answers
//!   [`Network::next_completion`] from an indexed min-heap of predicted
//!   finish times that is invalidated wholesale by a per-recompute rate
//!   epoch. Byte integration is folded into the recompute/drain points, so
//!   [`Network::advance_to`] is O(1).
//! * [`RateSolver::Hierarchical`] adds per-subtree dirty bits over the fat
//!   tree: admissions and completions mark only the tree spine they touch,
//!   and the recompute re-runs progressive filling over just the *affected*
//!   subtrees — every other flow keeps its persisted rate. See
//!   [`Network::recompute_hierarchical`] for the closure argument that
//!   makes this exact rather than approximate.
//! * [`RateSolver::Full`] is the original solver — a fresh full
//!   recomputation on every add/remove, eager integration, and an O(flows)
//!   completion scan — retained as the differential-testing oracle and the
//!   `--rates full` ablation.
//!
//! Bit-identity holds because all backends run the *same* progressive
//! filling arithmetic over the *same* flow iteration order (ascending flow
//! id, the old `BTreeMap` order — floating-point subtraction makes the
//! freeze order observable), and because every intermediate recompute the
//! eager solver performs between two timestamps is a pure function of the
//! flow set whose output is never read before the next recompute.
//!
//! # Cache-conscious flow store
//!
//! Large machines (the 4K–16K-node scaling cells) made two seed-era
//! choices untenable: the memoized all-pairs `RouteTable` is O(N²·route)
//! memory — ~30 GB at 16 384 nodes — and `Vec<Option<Flow>>` scatters the
//! per-round fill state across heap allocations. The store here is a
//! struct-of-arrays slab (hot arrays: `remaining`/`rate`/`cap`/`route_len`;
//! cold arrays for identity and accounting) plus one fixed-stride route
//! arena: routes are computed arithmetically at admission (shift/divide on
//! group numbers — no table, no allocation) and written level-major into
//! the flow's arena slot.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::params::{FairnessModel, MachineParams, RateSolver};
use crate::stats::RateSample;
use crate::time::{SimDuration, SimTime};
use crate::topology::{FatTree, Topology, ARITY};

/// Residual bytes below which a flow counts as finished. Completion events
/// are scheduled with ceil-rounding, so at the scheduled instant the true
/// residue is ≤ 0 up to floating-point error; this absorbs that error.
const COMPLETE_EPS: f64 = 1e-3;

/// One in-flight message, as returned by [`Network::take_completed`].
#[derive(Debug, Clone)]
pub struct Flow {
    /// Engine-assigned identifier (also the tie-break for determinism).
    pub id: u64,
    /// Sending node.
    pub src: usize,
    /// Receiving node.
    pub dst: usize,
    /// Per-flow rate cap (software streaming limit), bytes/second.
    pub cap: f64,
    /// Wire bytes still to move.
    pub remaining: f64,
    /// Currently allocated rate, bytes/second.
    pub rate: f64,
    /// Total wire bytes of the message (for accounting).
    pub wire_bytes: u64,
    /// Opaque engine token (message id).
    pub token: u64,
}

/// One predicted completion in the indexed queue. Ordering is
/// `(time, id, …)` so ties resolve by flow id, deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct CompEntry {
    time: SimTime,
    id: u64,
    slot: u32,
    /// The rate epoch this prediction was computed under; entries from an
    /// older epoch are stale and skipped on pop.
    epoch: u64,
}

/// Struct-of-arrays flow slab. The max-min fill touches `remaining`,
/// `rate`, `cap` and the route arena every round; keeping them in dense
/// parallel arrays (instead of one `Vec<Option<Flow>>` of 100-byte
/// structs) keeps the hot loop inside a few cache lines per flow at
/// large N. Cold identity/accounting fields live in their own arrays and
/// are only read on drain.
#[derive(Debug, Default)]
struct FlowStore {
    // Hot: read or written every fill round / integration step.
    remaining: Vec<f64>,
    rate: Vec<f64>,
    cap: Vec<f64>,
    route_len: Vec<u32>,
    // Cold: identity and accounting, read on admission/drain only.
    id: Vec<u64>,
    src: Vec<u32>,
    dst: Vec<u32>,
    token: Vec<u64>,
    wire_bytes: Vec<u64>,
    /// Tree-node index of the flow's LCA ([`TreeIndex`]); `u32::MAX` on
    /// topologies without a tree (hypercube).
    lca_node: Vec<u32>,
    live: Vec<bool>,
    /// Fixed-stride route arena: `stride` link indices per slot, written
    /// level-major (up links ascending, then down links descending). Only
    /// the first `route_len[slot]` entries of a slot are meaningful.
    routes: Vec<u32>,
    stride: usize,
}

impl FlowStore {
    fn with_stride(stride: usize) -> FlowStore {
        FlowStore {
            stride,
            ..FlowStore::default()
        }
    }

    fn len(&self) -> usize {
        self.id.len()
    }

    /// Grow the slab by one (dead) slot and return its index.
    fn push_slot(&mut self) -> u32 {
        let slot = self.id.len() as u32;
        self.remaining.push(0.0);
        self.rate.push(0.0);
        self.cap.push(0.0);
        self.route_len.push(0);
        self.id.push(0);
        self.src.push(0);
        self.dst.push(0);
        self.token.push(0);
        self.wire_bytes.push(0);
        self.lca_node.push(u32::MAX);
        self.live.push(false);
        self.routes.resize(self.routes.len() + self.stride, 0);
        slot
    }

    /// The route of the flow in `slot` (link indices).
    #[inline]
    fn route(&self, slot: u32) -> &[u32] {
        let base = slot as usize * self.stride;
        &self.routes[base..base + self.route_len[slot as usize] as usize]
    }
}

/// Dense indexing of the fat tree's internal nodes — the groups at levels
/// `1..=levels` (the root is the single node at the top) — for the
/// hierarchical solver's per-subtree bookkeeping.
#[derive(Debug)]
struct TreeIndex {
    levels: u32,
    /// `offset[l-1]` = index of the first node of level `l`.
    offset: Vec<usize>,
    /// `count[l-1]` = number of groups at level `l`.
    count: Vec<usize>,
    /// Total tree nodes (≈ n/3).
    total: usize,
}

impl TreeIndex {
    fn new(tree: &FatTree) -> TreeIndex {
        let levels = tree.levels();
        let n = tree.nodes();
        let mut offset = Vec::with_capacity(levels as usize);
        let mut count = Vec::with_capacity(levels as usize);
        let mut total = 0usize;
        for l in 1..=levels {
            offset.push(total);
            let c = n.div_ceil(ARITY.pow(l));
            count.push(c);
            total += c;
        }
        TreeIndex {
            levels,
            offset,
            count,
            total,
        }
    }

    /// Node index of group `group` at `level` (1 ≤ level ≤ levels).
    #[inline]
    fn node(&self, level: u32, group: usize) -> usize {
        self.offset[(level - 1) as usize] + group
    }

    /// Inverse of [`TreeIndex::node`].
    fn level_group(&self, node: usize) -> (u32, usize) {
        let mut l = self.offset.len();
        while self.offset[l - 1] > node {
            l -= 1;
        }
        (l as u32, node - self.offset[l - 1])
    }

    /// Stamp every tree node in the subtree rooted at (`level`, `group`)
    /// with `epoch` (descendant-range marking: each level below the root
    /// is one contiguous group range).
    fn mark_subtree(&self, level: u32, group: usize, marks: &mut [u64], epoch: u64) {
        for l in 1..=level {
            let span = ARITY.pow(level - l);
            let start = group * span;
            let end = ((group + 1) * span).min(self.count[(l - 1) as usize]);
            let off = self.offset[(l - 1) as usize];
            for m in &mut marks[off + start..off + end] {
                *m = epoch;
            }
        }
    }
}

/// The network state: active flows plus per-link byte accounting.
#[derive(Debug)]
pub struct Network {
    topo: Topology,
    fairness: FairnessModel,
    solver: RateSolver,
    /// Static capacity of each link, bytes/second.
    capacity: Vec<f64>,
    /// Aggregation level of each link (cached [`Topology::link_level`]).
    link_levels: Vec<u16>,
    num_levels: usize,
    /// Struct-of-arrays flow slab + route arena.
    store: FlowStore,
    /// Free slots available for reuse.
    free: Vec<u32>,
    /// Active flows as `(id, slot)`, ascending by id. Ids are allocated
    /// monotonically, so appends keep the list sorted; the rate solver
    /// iterates it in this (the old `BTreeMap`) order, which the
    /// floating-point results depend on.
    active: Vec<(u64, u32)>,
    /// Per-link member-flow count (lazy solvers only). Only the count ever
    /// mattered — the seed's `Vec<Vec<u64>>` member lists cost an O(members)
    /// position scan per link on every drain.
    member_count: Vec<u32>,
    /// Links that may have members (lazy solvers only): appended on 0→1
    /// transitions, pruned lazily at the next recompute. Unordered — the
    /// fill only takes exact mins over it, which are order-independent.
    used_links: Vec<usize>,
    /// Whether a link is present in `used_links` (dedup for re-push).
    in_used: Vec<bool>,
    /// Cumulative wire bytes carried per link.
    link_bytes: Vec<f64>,
    /// Virtual time of the network.
    now: SimTime,
    /// Time up to which `remaining`/`link_bytes` have been integrated.
    /// Invariant (lazy solvers): `dirty ⇒ synced_at == now`.
    synced_at: SimTime,
    /// Rates are stale: the flow set changed since the last recompute.
    dirty: bool,
    next_id: u64,
    /// Bumped on every recompute; completion-queue entries from older
    /// epochs are invalid. Also the stamp for `node_mark`/`link_mark`.
    rate_epoch: u64,
    /// Indexed completion queue: min-heap of predicted finish times,
    /// rebuilt at each recompute.
    completions: BinaryHeap<Reverse<CompEntry>>,
    // Hierarchical-solver state (fat tree only; empty otherwise).
    /// Tree-node indexing, present iff solver is Hierarchical on a fat tree.
    tree: Option<TreeIndex>,
    /// Per tree node: active flows whose LCA is exactly this node.
    sub_count: Vec<u32>,
    /// Per tree node: marked dirty since the last recompute.
    node_dirty: Vec<bool>,
    /// Dirty tree nodes since the last recompute (dedup via `node_dirty`).
    dirty_nodes: Vec<u32>,
    /// Epoch stamp: node is in an affected subtree this recompute.
    node_mark: Vec<u64>,
    /// Epoch stamp: link discovered on an affected flow this recompute.
    link_mark: Vec<u64>,
    /// Links of the affected component (rebuilt per recompute).
    scratch_links: Vec<usize>,
    // Persistent scratch buffers (zero per-recompute allocation).
    scratch_residual: Vec<f64>,
    scratch_count: Vec<u32>,
    scratch_unfrozen: Vec<(u64, u32)>,
    scratch_next: Vec<(u64, u32)>,
    drain_scratch: Vec<(u64, u32)>,
    // Perf counters (surfaced through `SimPerf`).
    recomputes: u64,
    flows_admitted: u64,
    flows_peak: usize,
    /// Record a [`RateSample`] at every recompute (observability; never
    /// feeds back into rate arithmetic).
    record_rates: bool,
    rate_samples: Vec<RateSample>,
    sample_scratch: Vec<f64>,
}

impl Network {
    /// Build the network model for a CM-5 fat tree under `params`.
    pub fn new(tree: FatTree, params: &MachineParams) -> Network {
        Network::new_on(Topology::FatTree(tree), params)
    }

    /// Build the network model for any [`Topology`] under `params`.
    pub fn new_on(topo: Topology, params: &MachineParams) -> Network {
        let capacity = topo.link_capacities(params);
        let links = topo.link_count();
        let link_levels: Vec<u16> = (0..links).map(|i| topo.link_level(i) as u16).collect();
        let num_levels = topo.num_levels();
        let stride = topo.max_route_len();
        let tree = match (&topo, params.rate_solver) {
            (Topology::FatTree(t), RateSolver::Hierarchical) => Some(TreeIndex::new(t)),
            _ => None,
        };
        let tnodes = tree.as_ref().map_or(0, |t| t.total);
        Network {
            topo,
            fairness: params.fairness,
            solver: params.rate_solver,
            capacity,
            link_levels,
            num_levels,
            store: FlowStore::with_stride(stride),
            free: Vec::new(),
            active: Vec::new(),
            member_count: vec![0; links],
            used_links: Vec::new(),
            in_used: vec![false; links],
            link_bytes: vec![0.0; links],
            now: SimTime::ZERO,
            synced_at: SimTime::ZERO,
            dirty: false,
            next_id: 0,
            rate_epoch: 0,
            completions: BinaryHeap::new(),
            tree,
            sub_count: vec![0; tnodes],
            node_dirty: vec![false; tnodes],
            dirty_nodes: Vec::new(),
            node_mark: vec![0; tnodes],
            link_mark: if params.rate_solver == RateSolver::Hierarchical {
                vec![0; links]
            } else {
                Vec::new()
            },
            scratch_links: Vec::new(),
            scratch_residual: vec![0.0; links],
            scratch_count: vec![0; links],
            scratch_unfrozen: Vec::new(),
            scratch_next: Vec::new(),
            drain_scratch: Vec::new(),
            recomputes: 0,
            flows_admitted: 0,
            flows_peak: 0,
            record_rates: false,
            rate_samples: Vec::new(),
            sample_scratch: vec![0.0; links],
        }
    }

    /// Enable (or disable) per-recompute [`RateSample`] recording.
    pub fn set_record_rates(&mut self, yes: bool) {
        self.record_rates = yes;
    }

    /// Drain the recorded rate samples (chronological order).
    pub fn take_rate_samples(&mut self) -> Vec<RateSample> {
        std::mem::take(&mut self.rate_samples)
    }

    /// Snapshot the aggregate allocated rate of every link at `self.now`.
    /// Same-timestamp recomputes collapse onto the last snapshot, so the
    /// series stays piecewise-constant with strictly increasing times.
    fn sample_rates(&mut self) {
        let scratch = &mut self.sample_scratch;
        let store = &self.store;
        for &(_, s) in &self.active {
            let rate = store.rate[s as usize];
            for &l in store.route(s) {
                scratch[l as usize] += rate;
            }
        }
        let mut link_rates = Vec::new();
        for (l, r) in scratch.iter_mut().enumerate() {
            if *r > 0.0 {
                link_rates.push((l as u32, *r));
                *r = 0.0;
            }
        }
        match self.rate_samples.last_mut() {
            Some(last) if last.time == self.now => last.link_rates = link_rates,
            _ => self.rate_samples.push(RateSample {
                time: self.now,
                link_rates,
            }),
        }
    }

    /// The topology this network models.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.active.len()
    }

    /// Cumulative wire bytes carried by link `idx`.
    pub fn link_bytes(&mut self, idx: usize) -> f64 {
        self.sync_to_now();
        self.link_bytes[idx]
    }

    /// Current rate of the active flow carrying `token`, if any
    /// (bytes/second). Forces a pending rate recomputation.
    pub fn flow_rate(&mut self, token: u64) -> Option<f64> {
        self.ensure_rates();
        let store = &self.store;
        self.active
            .iter()
            .find(|&&(_, s)| store.token[s as usize] == token)
            .map(|&(_, s)| store.rate[s as usize])
    }

    /// Cumulative wire bytes summed per aggregation level (fat-tree level,
    /// index 0 = leaf links; hypercube dimension).
    pub fn bytes_per_level(&mut self) -> Vec<f64> {
        self.sync_to_now();
        let mut per = vec![0.0; self.num_levels];
        for (idx, bytes) in self.link_bytes.iter().enumerate() {
            per[self.link_levels[idx] as usize] += bytes;
        }
        per
    }

    /// Rate recomputations performed so far (perf counter).
    pub fn recompute_count(&self) -> u64 {
        self.recomputes
    }

    /// Flows admitted over the network's lifetime (perf counter).
    pub fn flows_admitted(&self) -> u64 {
        self.flows_admitted
    }

    /// Peak simultaneous active flows (perf counter).
    pub fn flows_peak(&self) -> usize {
        self.flows_peak
    }

    /// Advance virtual time to `t` (monotone). The eager solver integrates
    /// flow progress immediately; the lazy solvers merely record the
    /// time and fold integration into the next recompute/drain point.
    pub fn advance_to(&mut self, t: SimTime) {
        invariant!(t >= self.now, "network time must be monotone");
        match self.solver {
            RateSolver::Full => {
                self.now = t;
                self.sync_to_now();
            }
            RateSolver::Incremental | RateSolver::Hierarchical => {
                // Rates must be valid before time passes over them.
                if self.dirty && t > self.now {
                    self.ensure_rates();
                }
                self.now = t;
            }
        }
    }

    /// Integrate flow progress over `[synced_at, now]` at current rates.
    fn sync_to_now(&mut self) {
        if self.synced_at == self.now {
            return;
        }
        let dt = (self.now - self.synced_at).as_secs_f64();
        if dt > 0.0 {
            let store = &mut self.store;
            let link_bytes = &mut self.link_bytes;
            let stride = store.stride;
            for &(_, s) in &self.active {
                let si = s as usize;
                let moved = (store.rate[si] * dt).min(store.remaining[si]);
                store.remaining[si] -= moved;
                let base = si * stride;
                for &l in &store.routes[base..base + store.route_len[si] as usize] {
                    link_bytes[l as usize] += moved;
                }
            }
        }
        self.synced_at = self.now;
    }

    /// Recompute rates if the flow set changed since the last recompute
    /// (lazy solvers; the eager solver is never dirty).
    fn ensure_rates(&mut self) {
        if self.dirty {
            invariant_eq!(self.synced_at, self.now, "dirty implies synced");
            self.sync_to_now();
            match self.solver {
                RateSolver::Incremental => self.recompute_incremental(),
                RateSolver::Hierarchical => self.recompute_hierarchical(),
                RateSolver::Full => unreachable!("eager solver is never dirty"),
            }
            self.dirty = false;
        }
    }

    /// Start a new flow *at the current network time* and re-divide
    /// bandwidth. `cap` is the per-flow rate limit, `token` an opaque id the
    /// engine uses to find the message on completion.
    ///
    /// Under the lazy solvers the recomputation is deferred: any number of
    /// same-timestamp admissions cost one recompute, triggered by the next
    /// [`Network::next_completion`] / [`Network::advance_to`]. The route is
    /// computed arithmetically into the flow's arena slot — no allocation,
    /// no table lookup.
    pub fn add_flow(
        &mut self,
        src: usize,
        dst: usize,
        wire_bytes: u64,
        cap: f64,
        token: u64,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.flows_admitted += 1;
        self.sync_to_now();
        let slot = match self.free.pop() {
            Some(s) => s,
            None => self.store.push_slot(),
        };
        let si = slot as usize;
        let stride = self.store.stride;
        let arena = &mut self.store.routes[si * stride..(si + 1) * stride];
        let (rlen, lca_node) = match &self.topo {
            Topology::FatTree(t) => {
                let (len, lca) = t.route_into(src, dst, arena);
                let node = match &self.tree {
                    Some(tix) => tix.node(lca, t.group_of(src, lca)) as u32,
                    None => u32::MAX,
                };
                (len, node)
            }
            Topology::Hypercube(h) => (h.route_into(src, dst, arena), u32::MAX),
        };
        self.store.route_len[si] = rlen as u32;
        if self.solver != RateSolver::Full {
            for k in 0..rlen {
                let l = self.store.routes[si * stride + k] as usize;
                if self.member_count[l] == 0 && !self.in_used[l] {
                    self.in_used[l] = true;
                    self.used_links.push(l);
                }
                self.member_count[l] += 1;
            }
            if self.tree.is_some() {
                self.sub_count[lca_node as usize] += 1;
                self.mark_node_dirty(lca_node);
            }
        }
        self.store.remaining[si] = wire_bytes as f64;
        self.store.rate[si] = 0.0;
        self.store.cap[si] = cap;
        self.store.id[si] = id;
        self.store.src[si] = src as u32;
        self.store.dst[si] = dst as u32;
        self.store.token[si] = token;
        self.store.wire_bytes[si] = wire_bytes;
        self.store.lca_node[si] = lca_node;
        self.store.live[si] = true;
        self.active.push((id, slot));
        self.flows_peak = self.flows_peak.max(self.active.len());
        match self.solver {
            RateSolver::Full => self.recompute_full(),
            RateSolver::Incremental | RateSolver::Hierarchical => self.dirty = true,
        }
        id
    }

    /// Remove and return all flows whose bytes have fully drained at the
    /// current time, re-dividing bandwidth if any were removed.
    pub fn take_completed(&mut self) -> Vec<Flow> {
        let mut out = Vec::new();
        self.drain_completed_into(&mut out);
        out
    }

    /// [`Network::take_completed`] into a caller-provided buffer, so the
    /// engine can reuse one allocation across the whole run. The empty case
    /// performs no allocation at all.
    pub fn drain_completed_into(&mut self, out: &mut Vec<Flow>) {
        match self.solver {
            RateSolver::Full => {
                let before = out.len();
                self.remove_drained(out);
                if out.len() > before {
                    self.recompute_full();
                }
            }
            RateSolver::Incremental | RateSolver::Hierarchical => {
                self.ensure_rates();
                // Fast path: the earliest predicted completion is still in
                // the future — nothing to drain, nothing to allocate.
                match self.peek_completion() {
                    Some(tc) if tc <= self.now => {}
                    _ => return,
                }
                self.sync_to_now();
                let before = out.len();
                self.remove_drained(out);
                if out.len() > before {
                    self.dirty = true;
                }
            }
        }
    }

    /// Scan for drained flows (ascending id, same EPS rule as the original
    /// solver) and remove them from the slab / active list / membership.
    /// Membership upkeep is O(route length) per drained flow — a count
    /// decrement per link, no list scan.
    fn remove_drained(&mut self, out: &mut Vec<Flow>) {
        self.drain_scratch.clear();
        for &(id, s) in &self.active {
            if self.store.remaining[s as usize] <= COMPLETE_EPS {
                self.drain_scratch.push((id, s));
            }
        }
        if self.drain_scratch.is_empty() {
            return;
        }
        let drained = std::mem::take(&mut self.drain_scratch);
        // `drained` is an in-order subsequence of `active`.
        let mut di = 0;
        self.active.retain(|&e| {
            if di < drained.len() && drained[di] == e {
                di += 1;
                false
            } else {
                true
            }
        });
        let lazy = self.solver != RateSolver::Full;
        for &(id, s) in &drained {
            let si = s as usize;
            invariant!(self.store.live[si], "completed flow present");
            if lazy {
                for &l in self.store.route(s) {
                    self.member_count[l as usize] -= 1;
                }
                if self.tree.is_some() {
                    let node = self.store.lca_node[si];
                    self.sub_count[node as usize] -= 1;
                    self.mark_node_dirty(node);
                }
            }
            self.store.live[si] = false;
            self.free.push(s);
            out.push(Flow {
                id,
                src: self.store.src[si] as usize,
                dst: self.store.dst[si] as usize,
                cap: self.store.cap[si],
                remaining: self.store.remaining[si],
                rate: self.store.rate[si],
                wire_bytes: self.store.wire_bytes[si],
                token: self.store.token[si],
            });
        }
        self.drain_scratch = drained;
        self.drain_scratch.clear();
    }

    /// The earliest instant at which some active flow finishes, if any.
    /// Forces a pending rate recomputation first.
    pub fn next_completion(&mut self) -> Option<SimTime> {
        match self.solver {
            RateSolver::Full => {
                let mut best: Option<SimTime> = None;
                for &(_, s) in &self.active {
                    let si = s as usize;
                    let rem = self.store.remaining[si];
                    let t = if rem <= COMPLETE_EPS {
                        self.now
                    } else {
                        let rate = self.store.rate[si];
                        invariant!(rate > 0.0, "active flow with zero rate");
                        self.now + SimDuration::from_rate(rem, rate)
                    };
                    best = Some(match best {
                        Some(b) => b.min(t),
                        None => t,
                    });
                }
                best
            }
            RateSolver::Incremental | RateSolver::Hierarchical => {
                self.ensure_rates();
                self.peek_completion()
            }
        }
    }

    /// Top of the completion queue, skipping entries invalidated by a
    /// newer rate epoch or a removed flow.
    fn peek_completion(&mut self) -> Option<SimTime> {
        while let Some(&Reverse(top)) = self.completions.peek() {
            let si = top.slot as usize;
            let alive = top.epoch == self.rate_epoch
                && si < self.store.len()
                && self.store.live[si]
                && self.store.id[si] == top.id;
            if alive {
                return Some(top.time);
            }
            self.completions.pop();
        }
        None
    }

    /// Drop links whose membership fell to zero since the last recompute
    /// (removal leaves them in `used_links` lazily; O(len) here beats an
    /// O(len) ordered delete per link at drain time).
    fn prune_used_links(&mut self) {
        let member_count = &self.member_count;
        let in_used = &mut self.in_used;
        self.used_links.retain(|&l| {
            if member_count[l] > 0 {
                true
            } else {
                in_used[l] = false;
                false
            }
        });
    }

    /// Mark a tree node dirty (dedup via `node_dirty`).
    fn mark_node_dirty(&mut self, node: u32) {
        let ni = node as usize;
        if !self.node_dirty[ni] {
            self.node_dirty[ni] = true;
            self.dirty_nodes.push(node);
        }
    }

    /// Reset the dirty-node flags and list.
    fn clear_dirty_nodes(&mut self) {
        let flags = &mut self.node_dirty;
        for &d in &self.dirty_nodes {
            flags[d as usize] = false;
        }
        self.dirty_nodes.clear();
    }

    /// Rebuild the completion prediction for every active flow under the
    /// current epoch. Predictions are *not* reusable across recomputes even
    /// for flows whose rate did not change: a prediction is
    /// `t_recompute + ceil(remaining / rate)` and the ceil does not commute
    /// with re-basing `remaining` at a later timestamp, so keeping stale
    /// entries would break bit-identity with the incremental solver.
    fn rebuild_completions(&mut self) {
        let epoch = self.rate_epoch;
        let now = self.now;
        let store = &self.store;
        let completions = &mut self.completions;
        for &(id, s) in &self.active {
            let si = s as usize;
            let rem = store.remaining[si];
            let time = if rem <= COMPLETE_EPS {
                now
            } else {
                let rate = store.rate[si];
                invariant!(rate > 0.0, "active flow with zero rate");
                now + SimDuration::from_rate(rem, rate)
            };
            completions.push(Reverse(CompEntry {
                time,
                id,
                slot: s,
                epoch,
            }));
        }
    }

    /// Incremental-solver recompute: persistent scratch buffers, counts
    /// from the per-link member counts, and a completion-queue rebuild
    /// under a fresh rate epoch.
    fn recompute_incremental(&mut self) {
        self.recomputes += 1;
        self.rate_epoch += 1;
        self.completions.clear();
        self.prune_used_links();
        if self.active.is_empty() {
            if self.record_rates {
                self.sample_rates();
            }
            return;
        }
        match self.fairness {
            FairnessModel::MaxMin => {
                let residual = &mut self.scratch_residual;
                let count = &mut self.scratch_count;
                for &l in &self.used_links {
                    residual[l] = self.capacity[l];
                    count[l] = self.member_count[l];
                }
                self.scratch_unfrozen.clear();
                self.scratch_unfrozen.extend_from_slice(&self.active);
                max_min_fill(
                    &mut self.store,
                    &mut self.scratch_unfrozen,
                    &mut self.scratch_next,
                    &self.used_links,
                    residual,
                    count,
                );
            }
            FairnessModel::EqualShare => {
                equal_share_fill(
                    &mut self.store,
                    &self.active,
                    &self.capacity,
                    &self.member_count,
                );
            }
        }
        self.rebuild_completions();
        if self.record_rates {
            self.sample_rates();
        }
    }

    /// Hierarchical recompute: re-run progressive filling over only the
    /// *affected* subtrees, leaving every other flow's persisted rate
    /// untouched.
    ///
    /// Every admission/completion marks the flow's LCA tree node dirty. At
    /// recompute time each dirty node `d` is resolved to an affected root
    /// `h`: the **highest** node on the path `d → root` whose subtree
    /// population (`sub_count`) is non-zero, or `d` itself if the whole
    /// spine is empty. All tree nodes in `subtree(h)` are marked, and a
    /// flow is affected iff its LCA node is marked.
    ///
    /// **Closure**: any flow using a link inside `subtree(h)` has an
    /// endpoint inside it, so its LCA lies on that endpoint's chain to the
    /// root; an LCA strictly above `h` would be an occupied ancestor of
    /// `h`, contradicting `h`'s maximality, so the LCA is inside
    /// `subtree(h)` and the flow is marked affected. Conversely affected
    /// flows route only over links inside marked subtrees. Affected links
    /// are therefore crossed *only* by affected flows (checked by the
    /// member-count invariant below), so filling the affected flows against
    /// full link capacities reproduces exactly what a global fill would
    /// assign them, and unaffected flows' rates are exactly what the global
    /// fill would re-derive.
    ///
    /// **Bit-identity**: the only way a component-local fill can diverge
    /// from the global fill is the water-level tolerance
    /// (`tol = level·(1+1e-9)`) catching a value from *another* component
    /// that is within 1e-9 relative of, but not equal to, this component's
    /// level. Levels are quotients `group_size·B / count` with `B` the
    /// 5/10/20 MB/s per-node figures; two such quotients closer than 1e-9
    /// relative but unequal require `group_size · count ≳ 1e9`, far beyond
    /// a 16K-node machine. Exactly equal levels freeze identically either
    /// way.
    fn recompute_hierarchical(&mut self) {
        self.recomputes += 1;
        self.rate_epoch += 1;
        self.completions.clear();
        self.prune_used_links();
        if self.active.is_empty() {
            self.clear_dirty_nodes();
            if self.record_rates {
                self.sample_rates();
            }
            return;
        }
        let epoch = self.rate_epoch;
        if let Some(tix) = &self.tree {
            let sub = &self.sub_count;
            let marks = &mut self.node_mark;
            for &d in &self.dirty_nodes {
                let (dl, dg) = tix.level_group(d as usize);
                let (mut root_l, mut root_g) = (dl, dg);
                let (mut l, mut g) = (dl, dg);
                loop {
                    if sub[tix.node(l, g)] > 0 {
                        root_l = l;
                        root_g = g;
                    }
                    if l == tix.levels {
                        break;
                    }
                    l += 1;
                    g /= ARITY;
                }
                // If the resolved root is already stamped, so is its whole
                // subtree (a node is only ever stamped by a `mark_subtree`
                // of itself or an ancestor) — skip the redundant re-mark.
                // This matters when one completion wave dirties hundreds of
                // clusters that all resolve to the same occupied spine.
                if marks[tix.node(root_l, root_g)] != epoch {
                    tix.mark_subtree(root_l, root_g, marks, epoch);
                }
            }
        }
        self.clear_dirty_nodes();
        // Gather affected flows (ascending id: `active` order).
        let affected = &mut self.scratch_unfrozen;
        affected.clear();
        match &self.tree {
            Some(_) => {
                let store = &self.store;
                let marks = &self.node_mark;
                for &(id, s) in &self.active {
                    if marks[store.lca_node[s as usize] as usize] == epoch {
                        affected.push((id, s));
                    }
                }
            }
            // No tree structure (hypercube): every flow is affected and
            // the pass degenerates to the incremental recompute.
            None => affected.extend_from_slice(&self.active),
        }
        match self.fairness {
            FairnessModel::MaxMin => {
                // When the invalidation covers every active flow anyway
                // (hypercube fallback, or a dirty spine that reaches the
                // whole occupied tree), skip the per-route link discovery
                // and reuse the maintained membership counts directly —
                // exactly what the incremental recompute does. The fill
                // arithmetic only takes exact commutative per-link minima,
                // so the different link-set construction order cannot
                // change a single bit.
                if self.scratch_unfrozen.len() == self.active.len() {
                    let residual = &mut self.scratch_residual;
                    let count = &mut self.scratch_count;
                    let links = &mut self.scratch_links;
                    links.clear();
                    for &l in &self.used_links {
                        links.push(l);
                        residual[l] = self.capacity[l];
                        count[l] = self.member_count[l];
                    }
                } else {
                    let store = &self.store;
                    let affected = &self.scratch_unfrozen;
                    let residual = &mut self.scratch_residual;
                    let count = &mut self.scratch_count;
                    let links = &mut self.scratch_links;
                    let lmark = &mut self.link_mark;
                    links.clear();
                    for &(_, s) in affected {
                        for &l in store.route(s) {
                            let l = l as usize;
                            if lmark[l] != epoch {
                                lmark[l] = epoch;
                                links.push(l);
                                residual[l] = self.capacity[l];
                                count[l] = 0;
                            }
                            count[l] += 1;
                        }
                    }
                    for &l in links.iter() {
                        invariant_eq!(
                            count[l],
                            self.member_count[l],
                            "affected component must be closed under link sharing"
                        );
                    }
                }
                max_min_fill(
                    &mut self.store,
                    &mut self.scratch_unfrozen,
                    &mut self.scratch_next,
                    &self.scratch_links,
                    &mut self.scratch_residual,
                    &mut self.scratch_count,
                );
            }
            FairnessModel::EqualShare => {
                // Per-link counts changed only on links whose flows are all
                // affected (same closure), so affected flows see correct
                // `member_count` and unaffected flows' mins are unchanged.
                equal_share_fill(
                    &mut self.store,
                    &self.scratch_unfrozen,
                    &self.capacity,
                    &self.member_count,
                );
            }
        }
        self.rebuild_completions();
        if self.record_rates {
            self.sample_rates();
        }
    }

    /// Eager-solver recompute: the original per-call allocations (fresh
    /// residual/count vectors, used-link scan) — the honest cost profile of
    /// the oracle.
    fn recompute_full(&mut self) {
        self.recomputes += 1;
        if self.active.is_empty() {
            if self.record_rates {
                self.sample_rates();
            }
            return;
        }
        match self.fairness {
            FairnessModel::MaxMin => {
                let mut residual = self.capacity.clone();
                let mut count = vec![0u32; residual.len()];
                for &(_, s) in &self.active {
                    for &l in self.store.route(s) {
                        count[l as usize] += 1;
                    }
                }
                let used_links: Vec<usize> = (0..count.len()).filter(|&l| count[l] > 0).collect();
                let mut unfrozen: Vec<(u64, u32)> = self.active.clone();
                let mut next = Vec::with_capacity(unfrozen.len());
                max_min_fill(
                    &mut self.store,
                    &mut unfrozen,
                    &mut next,
                    &used_links,
                    &mut residual,
                    &mut count,
                );
            }
            FairnessModel::EqualShare => {
                let mut count = vec![0u32; self.capacity.len()];
                for &(_, s) in &self.active {
                    for &l in self.store.route(s) {
                        count[l as usize] += 1;
                    }
                }
                equal_share_fill(&mut self.store, &self.active, &self.capacity, &count);
            }
        }
        if self.record_rates {
            self.sample_rates();
        }
    }

    /// Slab capacity (test hook: slots are recycled, not grown, across
    /// sequential flows).
    #[cfg(test)]
    fn slab_len(&self) -> usize {
        self.store.len()
    }
}

/// Progressive-filling max-min fairness with per-flow caps.
///
/// Water level rises uniformly across all unfrozen flows; at each step the
/// binding constraint is either a flow's cap (freeze that flow at its cap)
/// or a link reaching saturation (freeze every unfrozen flow through it at
/// the link's fair share). Shared by all solver backends so their
/// floating-point arithmetic is identical by construction; `unfrozen` must
/// arrive in ascending-id order. `used_links` may arrive in any order —
/// only exact (commutative) minima are taken over it.
fn max_min_fill(
    store: &mut FlowStore,
    unfrozen: &mut Vec<(u64, u32)>,
    next: &mut Vec<(u64, u32)>,
    used_links: &[usize],
    residual: &mut [f64],
    count: &mut [u32],
) {
    let stride = store.stride;
    let routes = &store.routes;
    let route_len = &store.route_len;
    let caps = &store.cap;
    let rates = &mut store.rate;
    let route = |s: u32| {
        let base = s as usize * stride;
        &routes[base..base + route_len[s as usize] as usize]
    };
    while !unfrozen.is_empty() {
        // Candidate water level: min over link fair shares and flow caps.
        let mut level = f64::INFINITY;
        for &l in used_links {
            if count[l] > 0 {
                level = level.min(residual[l] / count[l] as f64);
            }
        }
        for &(_, s) in unfrozen.iter() {
            level = level.min(caps[s as usize]);
        }
        invariant!(level.is_finite() && level > 0.0, "degenerate water level");
        let tol = level * (1.0 + 1e-9);
        // Freeze flows whose own cap binds at this level.
        next.clear();
        let mut froze_any = false;
        for &(id, s) in unfrozen.iter() {
            let cap = caps[s as usize];
            if cap <= tol {
                rates[s as usize] = cap;
                froze_any = true;
                for &l in route(s) {
                    residual[l as usize] -= cap;
                    count[l as usize] -= 1;
                }
            } else {
                next.push((id, s));
            }
        }
        std::mem::swap(unfrozen, next);
        if froze_any {
            continue;
        }
        // Otherwise a link binds: freeze all unfrozen flows crossing any
        // bottleneck link at the water level.
        next.clear();
        for &(id, s) in unfrozen.iter() {
            let at_bottleneck = route(s).iter().any(|&l| {
                count[l as usize] > 0 && residual[l as usize] / count[l as usize] as f64 <= tol
            });
            if at_bottleneck {
                rates[s as usize] = level;
                for &l in route(s) {
                    residual[l as usize] -= level;
                    count[l as usize] -= 1;
                }
            } else {
                next.push((id, s));
            }
        }
        invariant!(
            next.len() < unfrozen.len(),
            "max-min filling must make progress"
        );
        std::mem::swap(unfrozen, next);
    }
}

/// Naive ablation model: every flow gets `capacity / crossings` on each of
/// its links (no redistribution of unused headroom), then its cap. Shared
/// by all solver backends; `flows` may be a subset when counts on the
/// remaining flows' links are unchanged.
fn equal_share_fill(store: &mut FlowStore, flows: &[(u64, u32)], capacity: &[f64], count: &[u32]) {
    let stride = store.stride;
    let routes = &store.routes;
    let route_len = &store.route_len;
    let caps = &store.cap;
    let rates = &mut store.rate;
    for &(_, s) in flows {
        let si = s as usize;
        let mut rate = caps[si];
        let base = si * stride;
        for &l in &routes[base..base + route_len[si] as usize] {
            rate = rate.min(capacity[l as usize] / count[l as usize] as f64);
        }
        rates[si] = rate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize) -> Network {
        let p = MachineParams::cm5_1992();
        Network::new(FatTree::new(n), &p)
    }

    fn cap_for(netw: &Network, src: usize, dst: usize, p: &MachineParams) -> f64 {
        match netw.topology() {
            Topology::FatTree(t) => p.level_bandwidth(t.lca_level(src, dst)),
            Topology::Hypercube(_) => p.flow_cap(),
        }
    }

    #[test]
    fn single_local_flow_gets_peak_bandwidth() {
        let p = MachineParams::cm5_1992();
        let mut n = net(8);
        let cap = cap_for(&n, 0, 1, &p);
        n.add_flow(0, 1, 20_000, cap, 0);
        assert_eq!(n.flow_rate(0), Some(20.0e6));
        // 20_000 bytes at 20 MB/s = 1 ms.
        let done = n.next_completion().unwrap();
        assert_eq!(done.as_nanos(), 1_000_000);
    }

    #[test]
    fn single_root_crossing_flow_capped_at_guaranteed_bandwidth() {
        let p = MachineParams::cm5_1992();
        let mut n = net(32);
        let cap = cap_for(&n, 0, 16, &p);
        n.add_flow(0, 16, 5_000, cap, 0);
        assert_eq!(
            n.flow_rate(0),
            Some(5.0e6),
            "cross-root point-to-point = 5 MB/s"
        );
    }

    #[test]
    fn sixteen_root_crossers_share_the_uplink() {
        // All 16 nodes of the left half of a 32-node machine send right:
        // the level-2 up link (80 MB/s aggregate) divides into 5 MB/s each,
        // which equals the per-flow cap anyway.
        let p = MachineParams::cm5_1992();
        let mut n = net(32);
        for i in 0..16 {
            let cap = cap_for(&n, i, 16 + i, &p);
            n.add_flow(i, 16 + i, 10_000, cap, i as u64);
        }
        for i in 0..16u64 {
            let rate = n.flow_rate(i).unwrap();
            assert!((rate - 5.0e6).abs() < 1.0, "rate {rate}");
        }
    }

    #[test]
    fn local_flows_unaffected_by_remote_congestion() {
        // One local pair + 16 root crossers: the local flow still gets
        // 20 MB/s because it shares no thinned link.
        let p = MachineParams::cm5_1992();
        let mut n = net(32);
        for i in 4..16 {
            n.add_flow(i, 16 + i, 10_000, cap_for(&n, i, 16 + i, &p), i as u64);
        }
        n.add_flow(0, 1, 10_000, cap_for(&n, 0, 1, &p), 99);
        assert_eq!(n.flow_rate(99), Some(20.0e6));
    }

    #[test]
    fn max_min_redistributes_headroom() {
        // Two flows leave the same cluster of four (level-1 uplink: 40 MB/s
        // aggregate, per-flow cap 10 MB/s within the 16-group): each gets
        // its full 10 MB/s cap because the link has headroom.
        let p = MachineParams::cm5_1992();
        let mut n = net(32);
        n.add_flow(0, 5, 10_000, cap_for(&n, 0, 5, &p), 0);
        n.add_flow(1, 6, 10_000, cap_for(&n, 1, 6, &p), 1);
        assert_eq!(n.flow_rate(0), Some(10.0e6));
        assert_eq!(n.flow_rate(1), Some(10.0e6));
    }

    #[test]
    fn advance_and_complete() {
        let p = MachineParams::cm5_1992();
        let mut n = net(8);
        n.add_flow(0, 1, 20_000, cap_for(&n, 0, 1, &p), 7);
        let done_at = n.next_completion().unwrap();
        n.advance_to(done_at);
        let done = n.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].token, 7);
        assert_eq!(n.active_flows(), 0);
        assert!(n.next_completion().is_none());
        // Leaf up-link of node 0 carried all 20k wire bytes.
        assert!((n.link_bytes(0) - 20_000.0).abs() < 1.0);
    }

    #[test]
    fn completion_rates_rebalance_after_removal() {
        // Two flows *into* one destination share the destination's leaf
        // down-link (20 MB/s) → 10 MB/s each; when one finishes the other
        // speeds up to its cap.
        let p = MachineParams::cm5_1992();
        let mut n = net(8);
        n.add_flow(1, 0, 20_000, cap_for(&n, 1, 0, &p), 0);
        n.add_flow(2, 0, 40_000, cap_for(&n, 2, 0, &p), 1);
        assert_eq!(n.flow_rate(0), Some(10.0e6));
        assert_eq!(n.flow_rate(1), Some(10.0e6));
        let t1 = n.next_completion().unwrap();
        n.advance_to(t1);
        assert_eq!(n.take_completed().len(), 1);
        assert_eq!(n.flow_rate(1), Some(20.0e6));
    }

    #[test]
    fn equal_share_is_more_pessimistic() {
        let mut p = MachineParams::cm5_1992();
        p.fairness = FairnessModel::EqualShare;
        let tree = FatTree::new(32);
        let mut n = Network::new(tree, &p);
        // Two flows into one destination genuinely share a link.
        n.add_flow(1, 0, 10_000, 20.0e6, 0);
        n.add_flow(2, 0, 10_000, 20.0e6, 1);
        assert_eq!(n.flow_rate(0), Some(10.0e6));
        assert_eq!(n.flow_rate(1), Some(10.0e6));
    }

    #[test]
    fn bytes_per_level_accounting() {
        let p = MachineParams::cm5_1992();
        let mut n = net(8);
        n.add_flow(0, 4, 1_000, cap_for(&n, 0, 4, &p), 0);
        let t = n.next_completion().unwrap();
        n.advance_to(t);
        n.take_completed();
        let per = n.bytes_per_level();
        // Root crossing on 8 nodes: leaf up + level-1 up + level-1 down +
        // leaf down ⇒ 2×1000 at level 0 and 2×1000 at level 1.
        assert!((per[0] - 2_000.0).abs() < 1.0);
        assert!((per[1] - 2_000.0).abs() < 1.0);
    }

    #[test]
    fn take_completed_is_empty_without_progress() {
        let p = MachineParams::cm5_1992();
        let mut n = net(8);
        n.add_flow(0, 1, 20_000, cap_for(&n, 0, 1, &p), 0);
        assert!(n.take_completed().is_empty());
        let mid = SimTime::ZERO + SimDuration::from_micros(500);
        n.advance_to(mid);
        assert!(n.take_completed().is_empty(), "flow only half drained");
        assert_eq!(n.active_flows(), 1);
    }

    #[test]
    fn slab_slots_are_reused_after_completion() {
        let p = MachineParams::cm5_1992();
        let mut n = net(8);
        for round in 0..3u64 {
            n.add_flow(0, 1, 20_000, cap_for(&n, 0, 1, &p), round);
            let t = n.next_completion().unwrap();
            n.advance_to(t);
            let done = n.take_completed();
            assert_eq!(done.len(), 1);
            assert_eq!(done[0].token, round);
        }
        assert_eq!(n.slab_len(), 1, "one slot recycled across rounds");
        assert_eq!(n.flows_admitted(), 3);
        assert_eq!(n.flows_peak(), 1);
    }

    #[test]
    fn batched_admissions_recompute_once() {
        let p = MachineParams::cm5_1992();
        let mut n = net(32);
        for i in 0..8 {
            n.add_flow(i, 16 + i, 10_000, cap_for(&n, i, 16 + i, &p), i as u64);
        }
        assert_eq!(n.recompute_count(), 0, "recompute deferred");
        n.next_completion();
        assert_eq!(n.recompute_count(), 1, "one recompute for the batch");
        n.next_completion();
        assert_eq!(n.recompute_count(), 1, "clean state does not recompute");
    }

    #[test]
    fn full_solver_matches_incremental_rates() {
        for fairness in [FairnessModel::MaxMin, FairnessModel::EqualShare] {
            let mut p = MachineParams::cm5_1992();
            p.fairness = fairness;
            let mut pf = p.clone();
            pf.rate_solver = RateSolver::Full;
            let mut a = Network::new(FatTree::new(32), &p);
            let mut b = Network::new(FatTree::new(32), &pf);
            for i in 0..16 {
                let cap = cap_for(&a, i, (i * 7 + 1) % 32, &p);
                a.add_flow(i, (i * 7 + 1) % 32, 10_000 + 640 * i as u64, cap, i as u64);
                b.add_flow(i, (i * 7 + 1) % 32, 10_000 + 640 * i as u64, cap, i as u64);
            }
            for tok in 0..16u64 {
                assert_eq!(a.flow_rate(tok), b.flow_rate(tok), "token {tok}");
            }
            assert_eq!(a.next_completion(), b.next_completion());
        }
    }

    /// All three solvers agree bitwise on a contended mixed workload,
    /// including across a completion that dirties only one subtree.
    #[test]
    fn hierarchical_solver_matches_both_oracles() {
        for fairness in [FairnessModel::MaxMin, FairnessModel::EqualShare] {
            let mut p = MachineParams::cm5_1992();
            p.fairness = fairness;
            let mut ph = p.clone();
            ph.rate_solver = RateSolver::Hierarchical;
            let mut pf = p.clone();
            pf.rate_solver = RateSolver::Full;
            let mut inc = Network::new(FatTree::new(64), &p);
            let mut hier = Network::new(FatTree::new(64), &ph);
            let mut full = Network::new(FatTree::new(64), &pf);
            // Local cluster traffic + cross-root crossers + a short local
            // flow whose completion invalidates only its own spine.
            let flows: &[(usize, usize, u64)] = &[
                (0, 1, 4_000),
                (2, 3, 9_000),
                (4, 7, 9_000),
                (8, 56, 20_000),
                (9, 57, 20_000),
                (16, 48, 20_000),
                (33, 34, 9_000),
            ];
            for (tok, &(src, dst, bytes)) in flows.iter().enumerate() {
                let cap = cap_for(&inc, src, dst, &p);
                inc.add_flow(src, dst, bytes, cap, tok as u64);
                hier.add_flow(src, dst, bytes, cap, tok as u64);
                full.add_flow(src, dst, bytes, cap, tok as u64);
            }
            loop {
                for tok in 0..flows.len() as u64 {
                    assert_eq!(inc.flow_rate(tok), hier.flow_rate(tok), "token {tok}");
                    assert_eq!(full.flow_rate(tok), hier.flow_rate(tok), "token {tok}");
                }
                let t = inc.next_completion();
                assert_eq!(t, hier.next_completion());
                assert_eq!(t, full.next_completion());
                let Some(t) = t else { break };
                inc.advance_to(t);
                hier.advance_to(t);
                full.advance_to(t);
                let di = inc.take_completed();
                let dh = hier.take_completed();
                let df = full.take_completed();
                let toks: Vec<u64> = di.iter().map(|f| f.token).collect();
                assert_eq!(toks, dh.iter().map(|f| f.token).collect::<Vec<_>>());
                assert_eq!(toks, df.iter().map(|f| f.token).collect::<Vec<_>>());
            }
            assert_eq!(inc.bytes_per_level(), hier.bytes_per_level());
            assert_eq!(full.bytes_per_level(), hier.bytes_per_level());
        }
    }

    /// On a topology with no tree (hypercube) the hierarchical solver
    /// degenerates to the incremental recompute — still bit-identical.
    #[test]
    fn hierarchical_on_hypercube_matches_incremental() {
        let p = MachineParams::cm5_1992();
        let mut ph = p.clone();
        ph.rate_solver = RateSolver::Hierarchical;
        let topo = || Topology::Hypercube(crate::topology::Hypercube::new(16));
        let mut inc = Network::new_on(topo(), &p);
        let mut hier = Network::new_on(topo(), &ph);
        for (tok, (src, dst)) in [(0usize, 15usize), (1, 2), (3, 12), (7, 8)]
            .into_iter()
            .enumerate()
        {
            inc.add_flow(src, dst, 10_000, p.flow_cap(), tok as u64);
            hier.add_flow(src, dst, 10_000, p.flow_cap(), tok as u64);
        }
        for tok in 0..4u64 {
            assert_eq!(inc.flow_rate(tok), hier.flow_rate(tok), "token {tok}");
        }
        assert_eq!(inc.next_completion(), hier.next_completion());
    }

    /// A completion inside one cluster must not trigger a re-fill of an
    /// unrelated subtree: the hierarchical recompute leaves the other
    /// spine's rates bitwise untouched (checked indirectly: rates still
    /// match the full oracle after a partial drain).
    #[test]
    fn hierarchical_partial_invalidation_is_exact() {
        let p = MachineParams::cm5_1992();
        let mut ph = p.clone();
        ph.rate_solver = RateSolver::Hierarchical;
        let mut pf = p.clone();
        pf.rate_solver = RateSolver::Full;
        let mut hier = Network::new(FatTree::new(32), &ph);
        let mut full = Network::new(FatTree::new(32), &pf);
        // Cluster 0 local short flow; cluster 4+ long crossers.
        let cap_local = cap_for(&hier, 0, 1, &p);
        hier.add_flow(0, 1, 1_000, cap_local, 0);
        full.add_flow(0, 1, 1_000, cap_local, 0);
        for i in 16..24 {
            let cap = cap_for(&hier, i, i - 12, &p);
            hier.add_flow(i, i - 12, 50_000, cap, i as u64);
            full.add_flow(i, i - 12, 50_000, cap, i as u64);
        }
        let t = hier.next_completion().unwrap();
        assert_eq!(Some(t), full.next_completion());
        hier.advance_to(t);
        full.advance_to(t);
        assert_eq!(hier.take_completed().len(), 1);
        assert_eq!(full.take_completed().len(), 1);
        for i in 16..24u64 {
            assert_eq!(hier.flow_rate(i), full.flow_rate(i), "token {i}");
        }
        assert_eq!(hier.next_completion(), full.next_completion());
    }
}
