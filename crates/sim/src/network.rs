//! Flow-level model of the data network.
//!
//! Rather than routing individual 20-byte packets, each in-flight message is
//! a *flow* with a number of wire bytes remaining. Whenever the set of
//! active flows changes, link bandwidth is re-divided among them — by
//! default with progressive-filling **max-min fairness**, which models the
//! per-packet round-robin arbitration of the CM-5 data-network switches.
//! Between changes every flow drains at a constant rate, so completion
//! times are exact and the whole model is deterministic.
//!
//! Each flow is additionally capped at the CMMD software streaming rate
//! ([`MachineParams::flow_cap`]); the fat-tree thinning (the published
//! 20/10/5 MB/s per-node figures) appears as shared *link* capacity, so it
//! bites exactly when many flows cross a level at once — the PEX-vs-BEX
//! mechanism of the paper's §3.4. The same engine also runs over the
//! hypercube counterfactual ([`crate::topology::Topology`]).

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::params::{FairnessModel, MachineParams};
use crate::time::{SimDuration, SimTime};
use crate::topology::{FatTree, RouteRef, RouteTable, Topology};

/// Residual bytes below which a flow counts as finished. Completion events
/// are scheduled with ceil-rounding, so at the scheduled instant the true
/// residue is ≤ 0 up to floating-point error; this absorbs that error.
const COMPLETE_EPS: f64 = 1e-3;

/// One in-flight message.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Engine-assigned identifier (also the tie-break for determinism).
    pub id: u64,
    /// Sending node.
    pub src: usize,
    /// Receiving node.
    pub dst: usize,
    /// Link indices (see [`FatTree::route`]) this flow occupies — a shared
    /// view into the topology's memoized [`RouteTable`].
    pub route: RouteRef,
    /// Per-flow rate cap (software streaming limit), bytes/second.
    pub cap: f64,
    /// Wire bytes still to move.
    pub remaining: f64,
    /// Currently allocated rate, bytes/second.
    pub rate: f64,
    /// Total wire bytes of the message (for accounting).
    pub wire_bytes: u64,
    /// Opaque engine token (message id).
    pub token: u64,
}

/// The network state: active flows plus per-link byte accounting.
#[derive(Debug)]
pub struct Network {
    topo: Topology,
    /// Memoized all-pairs routes + link levels, shared across every network
    /// on the same topology shape (see [`RouteTable::shared`]).
    routes: Arc<RouteTable>,
    fairness: FairnessModel,
    /// Static capacity of each link, bytes/second.
    capacity: Vec<f64>,
    /// Active flows, keyed by id (BTreeMap ⇒ deterministic iteration).
    flows: BTreeMap<u64, Flow>,
    /// Cumulative wire bytes carried per link.
    link_bytes: Vec<f64>,
    /// Virtual time of the last state integration.
    now: SimTime,
    next_id: u64,
}

impl Network {
    /// Build the network model for a CM-5 fat tree under `params`.
    pub fn new(tree: FatTree, params: &MachineParams) -> Network {
        Network::new_on(Topology::FatTree(tree), params)
    }

    /// Build the network model for any [`Topology`] under `params`.
    pub fn new_on(topo: Topology, params: &MachineParams) -> Network {
        let capacity = topo.link_capacities(params);
        let links = topo.link_count();
        let routes = RouteTable::shared(&topo);
        Network {
            topo,
            routes,
            fairness: params.fairness,
            capacity,
            flows: BTreeMap::new(),
            link_bytes: vec![0.0; links],
            now: SimTime::ZERO,
            next_id: 0,
        }
    }

    /// The topology this network models.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Cumulative wire bytes carried by link `idx`.
    pub fn link_bytes(&self, idx: usize) -> f64 {
        self.link_bytes[idx]
    }

    /// Current rate of the active flow carrying `token`, if any
    /// (bytes/second).
    pub fn flow_rate(&self, token: u64) -> Option<f64> {
        self.flows
            .values()
            .find(|f| f.token == token)
            .map(|f| f.rate)
    }

    /// Cumulative wire bytes summed per aggregation level (fat-tree level,
    /// index 0 = leaf links; hypercube dimension).
    pub fn bytes_per_level(&self) -> Vec<f64> {
        let mut per = vec![0.0; self.routes.num_levels()];
        for (idx, bytes) in self.link_bytes.iter().enumerate() {
            per[self.routes.link_level(idx)] += bytes;
        }
        per
    }

    /// Integrate flow progress up to virtual time `t` (monotone).
    pub fn advance_to(&mut self, t: SimTime) {
        debug_assert!(t >= self.now, "network time must be monotone");
        let dt = (t - self.now).as_secs_f64();
        if dt > 0.0 {
            for flow in self.flows.values_mut() {
                let moved = (flow.rate * dt).min(flow.remaining);
                flow.remaining -= moved;
                for &l in flow.route.iter() {
                    self.link_bytes[l] += moved;
                }
            }
        }
        self.now = t;
    }

    /// Start a new flow *at the current network time* and re-divide
    /// bandwidth. `cap` is the per-flow rate limit, `token` an opaque id the
    /// engine uses to find the message on completion.
    pub fn add_flow(
        &mut self,
        src: usize,
        dst: usize,
        wire_bytes: u64,
        cap: f64,
        token: u64,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let route = self.routes.route_ref(src, dst);
        self.flows.insert(
            id,
            Flow {
                id,
                src,
                dst,
                route,
                cap,
                remaining: wire_bytes as f64,
                rate: 0.0,
                wire_bytes,
                token,
            },
        );
        self.recompute_rates();
        id
    }

    /// Remove and return all flows whose bytes have fully drained
    /// (as of the last [`Network::advance_to`]), re-dividing bandwidth if
    /// any were removed.
    pub fn take_completed(&mut self) -> Vec<Flow> {
        let done: Vec<u64> = self
            .flows
            .values()
            .filter(|f| f.remaining <= COMPLETE_EPS)
            .map(|f| f.id)
            .collect();
        if done.is_empty() {
            return Vec::new();
        }
        let out = done
            .iter()
            .map(|id| self.flows.remove(id).expect("completed flow present"))
            .collect();
        self.recompute_rates();
        out
    }

    /// The earliest instant at which some active flow finishes, if any.
    pub fn next_completion(&self) -> Option<SimTime> {
        self.flows
            .values()
            .map(|f| {
                if f.remaining <= COMPLETE_EPS {
                    self.now
                } else {
                    debug_assert!(f.rate > 0.0, "active flow with zero rate");
                    self.now + SimDuration::from_rate(f.remaining, f.rate)
                }
            })
            .min()
    }

    /// Divide link bandwidth among active flows.
    fn recompute_rates(&mut self) {
        match self.fairness {
            FairnessModel::MaxMin => self.recompute_max_min(),
            FairnessModel::EqualShare => self.recompute_equal_share(),
        }
    }

    /// Naive ablation model: every flow gets `capacity / crossings` on each
    /// of its links (no redistribution of unused headroom), then its cap.
    fn recompute_equal_share(&mut self) {
        let mut count = vec![0u32; self.capacity.len()];
        for flow in self.flows.values() {
            for &l in flow.route.iter() {
                count[l] += 1;
            }
        }
        for flow in self.flows.values_mut() {
            let mut rate = flow.cap;
            for &l in flow.route.iter() {
                rate = rate.min(self.capacity[l] / count[l] as f64);
            }
            flow.rate = rate;
        }
    }

    /// Progressive-filling max-min fairness with per-flow caps.
    ///
    /// Water level rises uniformly across all unfrozen flows; at each step
    /// the binding constraint is either a flow's cap (freeze that flow at
    /// its cap) or a link reaching saturation (freeze every unfrozen flow
    /// through it at the link's fair share).
    fn recompute_max_min(&mut self) {
        let ids: Vec<u64> = self.flows.keys().copied().collect();
        if ids.is_empty() {
            return;
        }
        let mut residual = self.capacity.clone();
        let mut count = vec![0u32; residual.len()];
        for flow in self.flows.values() {
            for &l in flow.route.iter() {
                count[l] += 1;
            }
        }
        let mut unfrozen: Vec<u64> = ids.clone();
        // Collect the links actually in use once, to bound the scans.
        let used_links: Vec<usize> = {
            let mut v: Vec<usize> = (0..count.len()).filter(|&l| count[l] > 0).collect();
            v.sort_unstable();
            v
        };
        while !unfrozen.is_empty() {
            // Candidate water level: min over link fair shares and flow caps.
            let mut level = f64::INFINITY;
            for &l in &used_links {
                if count[l] > 0 {
                    level = level.min(residual[l] / count[l] as f64);
                }
            }
            for &id in &unfrozen {
                level = level.min(self.flows[&id].cap);
            }
            debug_assert!(level.is_finite() && level > 0.0, "degenerate water level");
            let tol = level * (1.0 + 1e-9);
            // Freeze flows whose own cap binds at this level.
            let mut next_unfrozen = Vec::with_capacity(unfrozen.len());
            let mut froze_any = false;
            for &id in &unfrozen {
                let cap = self.flows[&id].cap;
                if cap <= tol {
                    let flow = self.flows.get_mut(&id).expect("flow");
                    flow.rate = cap;
                    froze_any = true;
                    let route = flow.route.clone();
                    for &l in route.iter() {
                        residual[l] -= cap;
                        count[l] -= 1;
                    }
                } else {
                    next_unfrozen.push(id);
                }
            }
            unfrozen = next_unfrozen;
            if froze_any {
                continue;
            }
            // Otherwise a link binds: freeze all unfrozen flows crossing any
            // bottleneck link at the water level.
            let mut still = Vec::with_capacity(unfrozen.len());
            for &id in &unfrozen {
                let at_bottleneck = self.flows[&id]
                    .route
                    .iter()
                    .any(|&l| count[l] > 0 && residual[l] / count[l] as f64 <= tol);
                if at_bottleneck {
                    let flow = self.flows.get_mut(&id).expect("flow");
                    flow.rate = level;
                    let route = flow.route.clone();
                    for &l in route.iter() {
                        residual[l] -= level;
                        count[l] -= 1;
                    }
                } else {
                    still.push(id);
                }
            }
            debug_assert!(
                still.len() < unfrozen.len(),
                "max-min filling must make progress"
            );
            unfrozen = still;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize) -> Network {
        let p = MachineParams::cm5_1992();
        Network::new(FatTree::new(n), &p)
    }

    fn cap_for(netw: &Network, src: usize, dst: usize, p: &MachineParams) -> f64 {
        match netw.topology() {
            Topology::FatTree(t) => p.level_bandwidth(t.lca_level(src, dst)),
            Topology::Hypercube(_) => p.flow_cap(),
        }
    }

    #[test]
    fn single_local_flow_gets_peak_bandwidth() {
        let p = MachineParams::cm5_1992();
        let mut n = net(8);
        let cap = cap_for(&n, 0, 1, &p);
        n.add_flow(0, 1, 20_000, cap, 0);
        let f = n.flows.values().next().unwrap();
        assert_eq!(f.rate, 20.0e6);
        // 20_000 bytes at 20 MB/s = 1 ms.
        let done = n.next_completion().unwrap();
        assert_eq!(done.as_nanos(), 1_000_000);
    }

    #[test]
    fn single_root_crossing_flow_capped_at_guaranteed_bandwidth() {
        let p = MachineParams::cm5_1992();
        let mut n = net(32);
        let cap = cap_for(&n, 0, 16, &p);
        n.add_flow(0, 16, 5_000, cap, 0);
        let f = n.flows.values().next().unwrap();
        assert_eq!(f.rate, 5.0e6, "cross-root point-to-point = 5 MB/s");
    }

    #[test]
    fn sixteen_root_crossers_share_the_uplink() {
        // All 16 nodes of the left half of a 32-node machine send right:
        // the level-2 up link (80 MB/s aggregate) divides into 5 MB/s each,
        // which equals the per-flow cap anyway.
        let p = MachineParams::cm5_1992();
        let mut n = net(32);
        for i in 0..16 {
            let cap = cap_for(&n, i, 16 + i, &p);
            n.add_flow(i, 16 + i, 10_000, cap, i as u64);
        }
        for f in n.flows.values() {
            assert!((f.rate - 5.0e6).abs() < 1.0, "rate {}", f.rate);
        }
    }

    #[test]
    fn local_flows_unaffected_by_remote_congestion() {
        // One local pair + 16 root crossers: the local flow still gets
        // 20 MB/s because it shares no thinned link.
        let p = MachineParams::cm5_1992();
        let mut n = net(32);
        for i in 4..16 {
            n.add_flow(i, 16 + i, 10_000, cap_for(&n, i, 16 + i, &p), i as u64);
        }
        let id = n.add_flow(0, 1, 10_000, cap_for(&n, 0, 1, &p), 99);
        assert_eq!(n.flows[&id].rate, 20.0e6);
    }

    #[test]
    fn max_min_redistributes_headroom() {
        // Two flows leave the same cluster of four (level-1 uplink: 40 MB/s
        // aggregate, per-flow cap 10 MB/s within the 16-group): each gets
        // its full 10 MB/s cap because the link has headroom.
        let p = MachineParams::cm5_1992();
        let mut n = net(32);
        n.add_flow(0, 5, 10_000, cap_for(&n, 0, 5, &p), 0);
        n.add_flow(1, 6, 10_000, cap_for(&n, 1, 6, &p), 1);
        for f in n.flows.values() {
            assert_eq!(f.rate, 10.0e6);
        }
    }

    #[test]
    fn advance_and_complete() {
        let p = MachineParams::cm5_1992();
        let mut n = net(8);
        n.add_flow(0, 1, 20_000, cap_for(&n, 0, 1, &p), 7);
        let done_at = n.next_completion().unwrap();
        n.advance_to(done_at);
        let done = n.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].token, 7);
        assert_eq!(n.active_flows(), 0);
        assert!(n.next_completion().is_none());
        // Leaf up-link of node 0 carried all 20k wire bytes.
        assert!((n.link_bytes(0) - 20_000.0).abs() < 1.0);
    }

    #[test]
    fn completion_rates_rebalance_after_removal() {
        // Five flows out of one node's cluster... simpler: two flows from
        // the same source leaf are impossible (sends serialize), so model
        // two flows *into* one destination: they share the destination's
        // leaf down-link (20 MB/s) → 10 MB/s each; when one finishes the
        // other speeds up to its cap.
        let p = MachineParams::cm5_1992();
        let mut n = net(8);
        n.add_flow(1, 0, 20_000, cap_for(&n, 1, 0, &p), 0);
        n.add_flow(2, 0, 40_000, cap_for(&n, 2, 0, &p), 1);
        let rates: Vec<f64> = n.flows.values().map(|f| f.rate).collect();
        assert_eq!(rates, vec![10.0e6, 10.0e6]);
        let t1 = n.next_completion().unwrap();
        n.advance_to(t1);
        assert_eq!(n.take_completed().len(), 1);
        assert_eq!(n.flows.values().next().unwrap().rate, 20.0e6);
    }

    #[test]
    fn equal_share_is_more_pessimistic() {
        let mut p = MachineParams::cm5_1992();
        p.fairness = FairnessModel::EqualShare;
        let tree = FatTree::new(32);
        let mut n = Network::new(tree, &p);
        // Flow A: 0→5 (leaves cluster 0). Flow B: 1→2 (inside cluster 0).
        // Under max-min B gets 20 MB/s; under equal-share B still gets
        // 20 MB/s on its own links — but A and B share no link, so compare
        // a genuinely shared case: two into one destination.
        n.add_flow(1, 0, 10_000, 20.0e6, 0);
        n.add_flow(2, 0, 10_000, 20.0e6, 1);
        for f in n.flows.values() {
            assert_eq!(f.rate, 10.0e6);
        }
    }

    #[test]
    fn bytes_per_level_accounting() {
        let p = MachineParams::cm5_1992();
        let mut n = net(8);
        n.add_flow(0, 4, 1_000, cap_for(&n, 0, 4, &p), 0);
        let t = n.next_completion().unwrap();
        n.advance_to(t);
        n.take_completed();
        let per = n.bytes_per_level();
        // Root crossing on 8 nodes: leaf up + level-1 up + level-1 down +
        // leaf down ⇒ 2×1000 at level 0 and 2×1000 at level 1.
        assert!((per[0] - 2_000.0).abs() < 1.0);
        assert!((per[1] - 2_000.0).abs() < 1.0);
    }
}
