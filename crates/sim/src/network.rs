//! Flow-level model of the data network.
//!
//! Rather than routing individual 20-byte packets, each in-flight message is
//! a *flow* with a number of wire bytes remaining. Whenever the set of
//! active flows changes, link bandwidth is re-divided among them — by
//! default with progressive-filling **max-min fairness**, which models the
//! per-packet round-robin arbitration of the CM-5 data-network switches.
//! Between changes every flow drains at a constant rate, so completion
//! times are exact and the whole model is deterministic.
//!
//! Each flow is additionally capped at the CMMD software streaming rate
//! ([`MachineParams::flow_cap`]); the fat-tree thinning (the published
//! 20/10/5 MB/s per-node figures) appears as shared *link* capacity, so it
//! bites exactly when many flows cross a level at once — the PEX-vs-BEX
//! mechanism of the paper's §3.4. The same engine also runs over the
//! hypercube counterfactual ([`crate::topology::Topology`]).
//!
//! # Solver implementations
//!
//! Two [`RateSolver`] backends produce **bit-identical** results:
//!
//! * [`RateSolver::Incremental`] (default) stores flows in a slab
//!   (`Vec<Option<Flow>>` + free list) with per-link membership lists,
//!   recomputes rates lazily — once per timestamp however many flows were
//!   admitted — into persistent scratch buffers with zero per-call
//!   allocation, and answers [`Network::next_completion`] from an indexed
//!   min-heap of predicted finish times that is invalidated wholesale by a
//!   per-recompute rate epoch. Byte integration is folded into the
//!   recompute/drain points, so [`Network::advance_to`] is O(1).
//! * [`RateSolver::Full`] is the original solver — a fresh full
//!   recomputation on every add/remove, eager integration, and an O(flows)
//!   completion scan — retained as the differential-testing oracle and the
//!   `--rates full` ablation.
//!
//! Bit-identity holds because both backends run the *same* progressive
//! filling arithmetic over the *same* flow iteration order (ascending flow
//! id, the old `BTreeMap` order — floating-point subtraction makes the
//! freeze order observable), and because every intermediate recompute the
//! eager solver performs between two timestamps is a pure function of the
//! flow set whose output is never read before the next recompute.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::params::{FairnessModel, MachineParams, RateSolver};
use crate::stats::RateSample;
use crate::time::{SimDuration, SimTime};
use crate::topology::{FatTree, RouteRef, RouteTable, Topology};

/// Residual bytes below which a flow counts as finished. Completion events
/// are scheduled with ceil-rounding, so at the scheduled instant the true
/// residue is ≤ 0 up to floating-point error; this absorbs that error.
const COMPLETE_EPS: f64 = 1e-3;

/// One in-flight message.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Engine-assigned identifier (also the tie-break for determinism).
    pub id: u64,
    /// Sending node.
    pub src: usize,
    /// Receiving node.
    pub dst: usize,
    /// Link indices (see [`FatTree::route`]) this flow occupies — a shared
    /// view into the topology's memoized [`RouteTable`].
    pub route: RouteRef,
    /// Per-flow rate cap (software streaming limit), bytes/second.
    pub cap: f64,
    /// Wire bytes still to move.
    pub remaining: f64,
    /// Currently allocated rate, bytes/second.
    pub rate: f64,
    /// Total wire bytes of the message (for accounting).
    pub wire_bytes: u64,
    /// Opaque engine token (message id).
    pub token: u64,
}

/// One predicted completion in the indexed queue. Ordering is
/// `(time, id, …)` so ties resolve by flow id, deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct CompEntry {
    time: SimTime,
    id: u64,
    slot: u32,
    /// The rate epoch this prediction was computed under; entries from an
    /// older epoch are stale and skipped on pop.
    epoch: u64,
}

/// The network state: active flows plus per-link byte accounting.
#[derive(Debug)]
pub struct Network {
    topo: Topology,
    /// Memoized all-pairs routes + link levels, shared across every network
    /// on the same topology shape (see [`RouteTable::shared`]).
    routes: Arc<RouteTable>,
    fairness: FairnessModel,
    solver: RateSolver,
    /// Static capacity of each link, bytes/second.
    capacity: Vec<f64>,
    /// Slab flow store: dense storage indexed by slot.
    slots: Vec<Option<Flow>>,
    /// Free slots available for reuse.
    free: Vec<u32>,
    /// Active flows as `(id, slot)`, ascending by id. Ids are allocated
    /// monotonically, so appends keep the list sorted; the rate solver
    /// iterates it in this (the old `BTreeMap`) order, which the
    /// floating-point results depend on.
    active: Vec<(u64, u32)>,
    /// Per-link member flow ids (incremental solver only; element order is
    /// irrelevant, only the count is read).
    link_members: Vec<Vec<u64>>,
    /// Sorted list of links with at least one member (incremental solver
    /// only), maintained on 0↔1 membership transitions.
    used_links: Vec<usize>,
    /// Cumulative wire bytes carried per link.
    link_bytes: Vec<f64>,
    /// Virtual time of the network.
    now: SimTime,
    /// Time up to which `remaining`/`link_bytes` have been integrated.
    /// Invariant (incremental): `dirty ⇒ synced_at == now`.
    synced_at: SimTime,
    /// Rates are stale: the flow set changed since the last recompute.
    dirty: bool,
    next_id: u64,
    /// Bumped on every recompute; completion-queue entries from older
    /// epochs are invalid.
    rate_epoch: u64,
    /// Indexed completion queue: min-heap of predicted finish times,
    /// rebuilt at each recompute.
    completions: BinaryHeap<Reverse<CompEntry>>,
    // Persistent scratch buffers (zero per-recompute allocation).
    scratch_residual: Vec<f64>,
    scratch_count: Vec<u32>,
    scratch_unfrozen: Vec<(u64, u32)>,
    scratch_next: Vec<(u64, u32)>,
    drain_scratch: Vec<(u64, u32)>,
    // Perf counters (surfaced through `SimPerf`).
    recomputes: u64,
    flows_admitted: u64,
    flows_peak: usize,
    /// Record a [`RateSample`] at every recompute (observability; never
    /// feeds back into rate arithmetic).
    record_rates: bool,
    rate_samples: Vec<RateSample>,
    sample_scratch: Vec<f64>,
}

impl Network {
    /// Build the network model for a CM-5 fat tree under `params`.
    pub fn new(tree: FatTree, params: &MachineParams) -> Network {
        Network::new_on(Topology::FatTree(tree), params)
    }

    /// Build the network model for any [`Topology`] under `params`.
    pub fn new_on(topo: Topology, params: &MachineParams) -> Network {
        let capacity = topo.link_capacities(params);
        let links = topo.link_count();
        let routes = RouteTable::shared(&topo);
        Network {
            topo,
            routes,
            fairness: params.fairness,
            solver: params.rate_solver,
            capacity,
            slots: Vec::new(),
            free: Vec::new(),
            active: Vec::new(),
            link_members: vec![Vec::new(); links],
            used_links: Vec::new(),
            link_bytes: vec![0.0; links],
            now: SimTime::ZERO,
            synced_at: SimTime::ZERO,
            dirty: false,
            next_id: 0,
            rate_epoch: 0,
            completions: BinaryHeap::new(),
            scratch_residual: vec![0.0; links],
            scratch_count: vec![0; links],
            scratch_unfrozen: Vec::new(),
            scratch_next: Vec::new(),
            drain_scratch: Vec::new(),
            recomputes: 0,
            flows_admitted: 0,
            flows_peak: 0,
            record_rates: false,
            rate_samples: Vec::new(),
            sample_scratch: vec![0.0; links],
        }
    }

    /// Enable (or disable) per-recompute [`RateSample`] recording.
    pub fn set_record_rates(&mut self, yes: bool) {
        self.record_rates = yes;
    }

    /// Drain the recorded rate samples (chronological order).
    pub fn take_rate_samples(&mut self) -> Vec<RateSample> {
        std::mem::take(&mut self.rate_samples)
    }

    /// Snapshot the aggregate allocated rate of every link at `self.now`.
    /// Same-timestamp recomputes collapse onto the last snapshot, so the
    /// series stays piecewise-constant with strictly increasing times.
    fn sample_rates(&mut self) {
        let scratch = &mut self.sample_scratch;
        for &(_, s) in &self.active {
            let f = self.slots[s as usize].as_ref().expect("active flow");
            for &l in f.route.iter() {
                scratch[l] += f.rate;
            }
        }
        let mut link_rates = Vec::new();
        for (l, r) in scratch.iter_mut().enumerate() {
            if *r > 0.0 {
                link_rates.push((l as u32, *r));
                *r = 0.0;
            }
        }
        match self.rate_samples.last_mut() {
            Some(last) if last.time == self.now => last.link_rates = link_rates,
            _ => self.rate_samples.push(RateSample {
                time: self.now,
                link_rates,
            }),
        }
    }

    /// The topology this network models.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.active.len()
    }

    /// Cumulative wire bytes carried by link `idx`.
    pub fn link_bytes(&mut self, idx: usize) -> f64 {
        self.sync_to_now();
        self.link_bytes[idx]
    }

    /// Current rate of the active flow carrying `token`, if any
    /// (bytes/second). Forces a pending rate recomputation.
    pub fn flow_rate(&mut self, token: u64) -> Option<f64> {
        self.ensure_rates();
        self.active
            .iter()
            .map(|&(_, s)| self.slots[s as usize].as_ref().expect("active flow"))
            .find(|f| f.token == token)
            .map(|f| f.rate)
    }

    /// Cumulative wire bytes summed per aggregation level (fat-tree level,
    /// index 0 = leaf links; hypercube dimension).
    pub fn bytes_per_level(&mut self) -> Vec<f64> {
        self.sync_to_now();
        let mut per = vec![0.0; self.routes.num_levels()];
        for (idx, bytes) in self.link_bytes.iter().enumerate() {
            per[self.routes.link_level(idx)] += bytes;
        }
        per
    }

    /// Rate recomputations performed so far (perf counter).
    pub fn recompute_count(&self) -> u64 {
        self.recomputes
    }

    /// Flows admitted over the network's lifetime (perf counter).
    pub fn flows_admitted(&self) -> u64 {
        self.flows_admitted
    }

    /// Peak simultaneous active flows (perf counter).
    pub fn flows_peak(&self) -> usize {
        self.flows_peak
    }

    /// Advance virtual time to `t` (monotone). The eager solver integrates
    /// flow progress immediately; the incremental solver merely records the
    /// time and folds integration into the next recompute/drain point.
    pub fn advance_to(&mut self, t: SimTime) {
        invariant!(t >= self.now, "network time must be monotone");
        match self.solver {
            RateSolver::Full => {
                self.now = t;
                self.sync_to_now();
            }
            RateSolver::Incremental => {
                // Rates must be valid before time passes over them.
                if self.dirty && t > self.now {
                    self.ensure_rates();
                }
                self.now = t;
            }
        }
    }

    /// Integrate flow progress over `[synced_at, now]` at current rates.
    fn sync_to_now(&mut self) {
        if self.synced_at == self.now {
            return;
        }
        let dt = (self.now - self.synced_at).as_secs_f64();
        if dt > 0.0 {
            let slots = &mut self.slots;
            let link_bytes = &mut self.link_bytes;
            for &(_, s) in &self.active {
                let f = slots[s as usize].as_mut().expect("active flow");
                let moved = (f.rate * dt).min(f.remaining);
                f.remaining -= moved;
                for &l in f.route.iter() {
                    link_bytes[l] += moved;
                }
            }
        }
        self.synced_at = self.now;
    }

    /// Recompute rates if the flow set changed since the last recompute
    /// (incremental solver; the eager solver is never dirty).
    fn ensure_rates(&mut self) {
        if self.dirty {
            invariant_eq!(self.synced_at, self.now, "dirty implies synced");
            self.sync_to_now();
            self.recompute_incremental();
            self.dirty = false;
        }
    }

    /// Start a new flow *at the current network time* and re-divide
    /// bandwidth. `cap` is the per-flow rate limit, `token` an opaque id the
    /// engine uses to find the message on completion.
    ///
    /// Under the incremental solver the recomputation is deferred: any
    /// number of same-timestamp admissions cost one recompute, triggered by
    /// the next [`Network::next_completion`] / [`Network::advance_to`].
    pub fn add_flow(
        &mut self,
        src: usize,
        dst: usize,
        wire_bytes: u64,
        cap: f64,
        token: u64,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.flows_admitted += 1;
        let route = self.routes.route_ref(src, dst);
        self.sync_to_now();
        if self.solver == RateSolver::Incremental {
            for &l in route.iter() {
                let members = &mut self.link_members[l];
                if members.is_empty() {
                    let pos = self
                        .used_links
                        .binary_search(&l)
                        .expect_err("empty link cannot be in used_links");
                    self.used_links.insert(pos, l);
                }
                members.push(id);
            }
        }
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as u32
            }
        };
        self.slots[slot as usize] = Some(Flow {
            id,
            src,
            dst,
            route,
            cap,
            remaining: wire_bytes as f64,
            rate: 0.0,
            wire_bytes,
            token,
        });
        self.active.push((id, slot));
        self.flows_peak = self.flows_peak.max(self.active.len());
        match self.solver {
            RateSolver::Full => self.recompute_full(),
            RateSolver::Incremental => self.dirty = true,
        }
        id
    }

    /// Remove and return all flows whose bytes have fully drained at the
    /// current time, re-dividing bandwidth if any were removed.
    pub fn take_completed(&mut self) -> Vec<Flow> {
        let mut out = Vec::new();
        self.drain_completed_into(&mut out);
        out
    }

    /// [`Network::take_completed`] into a caller-provided buffer, so the
    /// engine can reuse one allocation across the whole run. The empty case
    /// performs no allocation at all.
    pub fn drain_completed_into(&mut self, out: &mut Vec<Flow>) {
        match self.solver {
            RateSolver::Full => {
                let before = out.len();
                self.remove_drained(out);
                if out.len() > before {
                    self.recompute_full();
                }
            }
            RateSolver::Incremental => {
                self.ensure_rates();
                // Fast path: the earliest predicted completion is still in
                // the future — nothing to drain, nothing to allocate.
                match self.peek_completion() {
                    Some(tc) if tc <= self.now => {}
                    _ => return,
                }
                self.sync_to_now();
                let before = out.len();
                self.remove_drained(out);
                if out.len() > before {
                    self.dirty = true;
                }
            }
        }
    }

    /// Scan for drained flows (ascending id, same EPS rule as the original
    /// solver) and remove them from the slab / active list / membership.
    fn remove_drained(&mut self, out: &mut Vec<Flow>) {
        self.drain_scratch.clear();
        for &(id, s) in &self.active {
            if self.slots[s as usize]
                .as_ref()
                .expect("active flow")
                .remaining
                <= COMPLETE_EPS
            {
                self.drain_scratch.push((id, s));
            }
        }
        if self.drain_scratch.is_empty() {
            return;
        }
        let drained = std::mem::take(&mut self.drain_scratch);
        // `drained` is an in-order subsequence of `active`.
        let mut di = 0;
        self.active.retain(|&e| {
            if di < drained.len() && drained[di] == e {
                di += 1;
                false
            } else {
                true
            }
        });
        for &(id, s) in &drained {
            let flow = self.slots[s as usize]
                .take()
                .expect("completed flow present");
            if self.solver == RateSolver::Incremental {
                for &l in flow.route.iter() {
                    let members = &mut self.link_members[l];
                    let pos = members.iter().position(|&m| m == id).expect("member");
                    members.swap_remove(pos);
                    if members.is_empty() {
                        let p = self.used_links.binary_search(&l).expect("used link");
                        self.used_links.remove(p);
                    }
                }
            }
            self.free.push(s);
            out.push(flow);
        }
        self.drain_scratch = drained;
        self.drain_scratch.clear();
    }

    /// The earliest instant at which some active flow finishes, if any.
    /// Forces a pending rate recomputation first.
    pub fn next_completion(&mut self) -> Option<SimTime> {
        match self.solver {
            RateSolver::Full => {
                let mut best: Option<SimTime> = None;
                for &(_, s) in &self.active {
                    let f = self.slots[s as usize].as_ref().expect("active flow");
                    let t = if f.remaining <= COMPLETE_EPS {
                        self.now
                    } else {
                        invariant!(f.rate > 0.0, "active flow with zero rate");
                        self.now + SimDuration::from_rate(f.remaining, f.rate)
                    };
                    best = Some(match best {
                        Some(b) => b.min(t),
                        None => t,
                    });
                }
                best
            }
            RateSolver::Incremental => {
                self.ensure_rates();
                self.peek_completion()
            }
        }
    }

    /// Top of the completion queue, skipping entries invalidated by a
    /// newer rate epoch or a removed flow.
    fn peek_completion(&mut self) -> Option<SimTime> {
        while let Some(&Reverse(top)) = self.completions.peek() {
            let alive = top.epoch == self.rate_epoch
                && self
                    .slots
                    .get(top.slot as usize)
                    .and_then(|s| s.as_ref())
                    .is_some_and(|f| f.id == top.id);
            if alive {
                return Some(top.time);
            }
            self.completions.pop();
        }
        None
    }

    /// Incremental-solver recompute: persistent scratch buffers, counts
    /// from the per-link membership lists, and a completion-queue rebuild
    /// under a fresh rate epoch.
    fn recompute_incremental(&mut self) {
        self.recomputes += 1;
        self.rate_epoch += 1;
        self.completions.clear();
        if self.active.is_empty() {
            if self.record_rates {
                self.sample_rates();
            }
            return;
        }
        match self.fairness {
            FairnessModel::MaxMin => {
                let residual = &mut self.scratch_residual;
                let count = &mut self.scratch_count;
                let members = &self.link_members;
                let capacity = &self.capacity;
                for &l in &self.used_links {
                    residual[l] = capacity[l];
                    count[l] = members[l].len() as u32;
                }
                self.scratch_unfrozen.clear();
                self.scratch_unfrozen.extend_from_slice(&self.active);
                max_min_fill(
                    &mut self.slots,
                    &mut self.scratch_unfrozen,
                    &mut self.scratch_next,
                    &self.used_links,
                    residual,
                    count,
                );
            }
            FairnessModel::EqualShare => {
                let count = &mut self.scratch_count;
                let members = &self.link_members;
                for &l in &self.used_links {
                    count[l] = members[l].len() as u32;
                }
                equal_share_fill(&mut self.slots, &self.active, &self.capacity, count);
            }
        }
        let epoch = self.rate_epoch;
        for &(id, s) in &self.active {
            let f = self.slots[s as usize].as_ref().expect("active flow");
            let time = if f.remaining <= COMPLETE_EPS {
                self.now
            } else {
                invariant!(f.rate > 0.0, "active flow with zero rate");
                self.now + SimDuration::from_rate(f.remaining, f.rate)
            };
            self.completions.push(Reverse(CompEntry {
                time,
                id,
                slot: s,
                epoch,
            }));
        }
        if self.record_rates {
            self.sample_rates();
        }
    }

    /// Eager-solver recompute: the original per-call allocations (fresh
    /// residual/count vectors, used-link scan + sort) — the honest cost
    /// profile of the oracle.
    fn recompute_full(&mut self) {
        self.recomputes += 1;
        if self.active.is_empty() {
            if self.record_rates {
                self.sample_rates();
            }
            return;
        }
        match self.fairness {
            FairnessModel::MaxMin => {
                let mut residual = self.capacity.clone();
                let mut count = vec![0u32; residual.len()];
                for &(_, s) in &self.active {
                    let f = self.slots[s as usize].as_ref().expect("active flow");
                    for &l in f.route.iter() {
                        count[l] += 1;
                    }
                }
                let used_links: Vec<usize> = {
                    let mut v: Vec<usize> = (0..count.len()).filter(|&l| count[l] > 0).collect();
                    v.sort_unstable();
                    v
                };
                let mut unfrozen: Vec<(u64, u32)> = self.active.clone();
                let mut next = Vec::with_capacity(unfrozen.len());
                max_min_fill(
                    &mut self.slots,
                    &mut unfrozen,
                    &mut next,
                    &used_links,
                    &mut residual,
                    &mut count,
                );
            }
            FairnessModel::EqualShare => {
                let mut count = vec![0u32; self.capacity.len()];
                for &(_, s) in &self.active {
                    let f = self.slots[s as usize].as_ref().expect("active flow");
                    for &l in f.route.iter() {
                        count[l] += 1;
                    }
                }
                equal_share_fill(&mut self.slots, &self.active, &self.capacity, &count);
            }
        }
        if self.record_rates {
            self.sample_rates();
        }
    }
}

/// Progressive-filling max-min fairness with per-flow caps.
///
/// Water level rises uniformly across all unfrozen flows; at each step the
/// binding constraint is either a flow's cap (freeze that flow at its cap)
/// or a link reaching saturation (freeze every unfrozen flow through it at
/// the link's fair share). Shared by both solver backends so their
/// floating-point arithmetic is identical by construction; `unfrozen` must
/// arrive in ascending-id order.
fn max_min_fill(
    slots: &mut [Option<Flow>],
    unfrozen: &mut Vec<(u64, u32)>,
    next: &mut Vec<(u64, u32)>,
    used_links: &[usize],
    residual: &mut [f64],
    count: &mut [u32],
) {
    while !unfrozen.is_empty() {
        // Candidate water level: min over link fair shares and flow caps.
        let mut level = f64::INFINITY;
        for &l in used_links {
            if count[l] > 0 {
                level = level.min(residual[l] / count[l] as f64);
            }
        }
        for &(_, s) in unfrozen.iter() {
            level = level.min(slots[s as usize].as_ref().expect("flow").cap);
        }
        invariant!(level.is_finite() && level > 0.0, "degenerate water level");
        let tol = level * (1.0 + 1e-9);
        // Freeze flows whose own cap binds at this level.
        next.clear();
        let mut froze_any = false;
        for &(id, s) in unfrozen.iter() {
            let flow = slots[s as usize].as_mut().expect("flow");
            let cap = flow.cap;
            if cap <= tol {
                flow.rate = cap;
                froze_any = true;
                for &l in flow.route.iter() {
                    residual[l] -= cap;
                    count[l] -= 1;
                }
            } else {
                next.push((id, s));
            }
        }
        std::mem::swap(unfrozen, next);
        if froze_any {
            continue;
        }
        // Otherwise a link binds: freeze all unfrozen flows crossing any
        // bottleneck link at the water level.
        next.clear();
        for &(id, s) in unfrozen.iter() {
            let flow = slots[s as usize].as_mut().expect("flow");
            let at_bottleneck = flow
                .route
                .iter()
                .any(|&l| count[l] > 0 && residual[l] / count[l] as f64 <= tol);
            if at_bottleneck {
                flow.rate = level;
                for &l in flow.route.iter() {
                    residual[l] -= level;
                    count[l] -= 1;
                }
            } else {
                next.push((id, s));
            }
        }
        invariant!(
            next.len() < unfrozen.len(),
            "max-min filling must make progress"
        );
        std::mem::swap(unfrozen, next);
    }
}

/// Naive ablation model: every flow gets `capacity / crossings` on each of
/// its links (no redistribution of unused headroom), then its cap. Shared
/// by both solver backends.
fn equal_share_fill(
    slots: &mut [Option<Flow>],
    active: &[(u64, u32)],
    capacity: &[f64],
    count: &[u32],
) {
    for &(_, s) in active {
        let flow = slots[s as usize].as_mut().expect("flow");
        let mut rate = flow.cap;
        for &l in flow.route.iter() {
            rate = rate.min(capacity[l] / count[l] as f64);
        }
        flow.rate = rate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize) -> Network {
        let p = MachineParams::cm5_1992();
        Network::new(FatTree::new(n), &p)
    }

    fn cap_for(netw: &Network, src: usize, dst: usize, p: &MachineParams) -> f64 {
        match netw.topology() {
            Topology::FatTree(t) => p.level_bandwidth(t.lca_level(src, dst)),
            Topology::Hypercube(_) => p.flow_cap(),
        }
    }

    #[test]
    fn single_local_flow_gets_peak_bandwidth() {
        let p = MachineParams::cm5_1992();
        let mut n = net(8);
        let cap = cap_for(&n, 0, 1, &p);
        n.add_flow(0, 1, 20_000, cap, 0);
        assert_eq!(n.flow_rate(0), Some(20.0e6));
        // 20_000 bytes at 20 MB/s = 1 ms.
        let done = n.next_completion().unwrap();
        assert_eq!(done.as_nanos(), 1_000_000);
    }

    #[test]
    fn single_root_crossing_flow_capped_at_guaranteed_bandwidth() {
        let p = MachineParams::cm5_1992();
        let mut n = net(32);
        let cap = cap_for(&n, 0, 16, &p);
        n.add_flow(0, 16, 5_000, cap, 0);
        assert_eq!(
            n.flow_rate(0),
            Some(5.0e6),
            "cross-root point-to-point = 5 MB/s"
        );
    }

    #[test]
    fn sixteen_root_crossers_share_the_uplink() {
        // All 16 nodes of the left half of a 32-node machine send right:
        // the level-2 up link (80 MB/s aggregate) divides into 5 MB/s each,
        // which equals the per-flow cap anyway.
        let p = MachineParams::cm5_1992();
        let mut n = net(32);
        for i in 0..16 {
            let cap = cap_for(&n, i, 16 + i, &p);
            n.add_flow(i, 16 + i, 10_000, cap, i as u64);
        }
        for i in 0..16u64 {
            let rate = n.flow_rate(i).unwrap();
            assert!((rate - 5.0e6).abs() < 1.0, "rate {rate}");
        }
    }

    #[test]
    fn local_flows_unaffected_by_remote_congestion() {
        // One local pair + 16 root crossers: the local flow still gets
        // 20 MB/s because it shares no thinned link.
        let p = MachineParams::cm5_1992();
        let mut n = net(32);
        for i in 4..16 {
            n.add_flow(i, 16 + i, 10_000, cap_for(&n, i, 16 + i, &p), i as u64);
        }
        n.add_flow(0, 1, 10_000, cap_for(&n, 0, 1, &p), 99);
        assert_eq!(n.flow_rate(99), Some(20.0e6));
    }

    #[test]
    fn max_min_redistributes_headroom() {
        // Two flows leave the same cluster of four (level-1 uplink: 40 MB/s
        // aggregate, per-flow cap 10 MB/s within the 16-group): each gets
        // its full 10 MB/s cap because the link has headroom.
        let p = MachineParams::cm5_1992();
        let mut n = net(32);
        n.add_flow(0, 5, 10_000, cap_for(&n, 0, 5, &p), 0);
        n.add_flow(1, 6, 10_000, cap_for(&n, 1, 6, &p), 1);
        assert_eq!(n.flow_rate(0), Some(10.0e6));
        assert_eq!(n.flow_rate(1), Some(10.0e6));
    }

    #[test]
    fn advance_and_complete() {
        let p = MachineParams::cm5_1992();
        let mut n = net(8);
        n.add_flow(0, 1, 20_000, cap_for(&n, 0, 1, &p), 7);
        let done_at = n.next_completion().unwrap();
        n.advance_to(done_at);
        let done = n.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].token, 7);
        assert_eq!(n.active_flows(), 0);
        assert!(n.next_completion().is_none());
        // Leaf up-link of node 0 carried all 20k wire bytes.
        assert!((n.link_bytes(0) - 20_000.0).abs() < 1.0);
    }

    #[test]
    fn completion_rates_rebalance_after_removal() {
        // Two flows *into* one destination share the destination's leaf
        // down-link (20 MB/s) → 10 MB/s each; when one finishes the other
        // speeds up to its cap.
        let p = MachineParams::cm5_1992();
        let mut n = net(8);
        n.add_flow(1, 0, 20_000, cap_for(&n, 1, 0, &p), 0);
        n.add_flow(2, 0, 40_000, cap_for(&n, 2, 0, &p), 1);
        assert_eq!(n.flow_rate(0), Some(10.0e6));
        assert_eq!(n.flow_rate(1), Some(10.0e6));
        let t1 = n.next_completion().unwrap();
        n.advance_to(t1);
        assert_eq!(n.take_completed().len(), 1);
        assert_eq!(n.flow_rate(1), Some(20.0e6));
    }

    #[test]
    fn equal_share_is_more_pessimistic() {
        let mut p = MachineParams::cm5_1992();
        p.fairness = FairnessModel::EqualShare;
        let tree = FatTree::new(32);
        let mut n = Network::new(tree, &p);
        // Two flows into one destination genuinely share a link.
        n.add_flow(1, 0, 10_000, 20.0e6, 0);
        n.add_flow(2, 0, 10_000, 20.0e6, 1);
        assert_eq!(n.flow_rate(0), Some(10.0e6));
        assert_eq!(n.flow_rate(1), Some(10.0e6));
    }

    #[test]
    fn bytes_per_level_accounting() {
        let p = MachineParams::cm5_1992();
        let mut n = net(8);
        n.add_flow(0, 4, 1_000, cap_for(&n, 0, 4, &p), 0);
        let t = n.next_completion().unwrap();
        n.advance_to(t);
        n.take_completed();
        let per = n.bytes_per_level();
        // Root crossing on 8 nodes: leaf up + level-1 up + level-1 down +
        // leaf down ⇒ 2×1000 at level 0 and 2×1000 at level 1.
        assert!((per[0] - 2_000.0).abs() < 1.0);
        assert!((per[1] - 2_000.0).abs() < 1.0);
    }

    #[test]
    fn take_completed_is_empty_without_progress() {
        let p = MachineParams::cm5_1992();
        let mut n = net(8);
        n.add_flow(0, 1, 20_000, cap_for(&n, 0, 1, &p), 0);
        assert!(n.take_completed().is_empty());
        let mid = SimTime::ZERO + SimDuration::from_micros(500);
        n.advance_to(mid);
        assert!(n.take_completed().is_empty(), "flow only half drained");
        assert_eq!(n.active_flows(), 1);
    }

    #[test]
    fn slab_slots_are_reused_after_completion() {
        let p = MachineParams::cm5_1992();
        let mut n = net(8);
        for round in 0..3u64 {
            n.add_flow(0, 1, 20_000, cap_for(&n, 0, 1, &p), round);
            let t = n.next_completion().unwrap();
            n.advance_to(t);
            let done = n.take_completed();
            assert_eq!(done.len(), 1);
            assert_eq!(done[0].token, round);
        }
        assert_eq!(n.slots.len(), 1, "one slot recycled across rounds");
        assert_eq!(n.flows_admitted(), 3);
        assert_eq!(n.flows_peak(), 1);
    }

    #[test]
    fn batched_admissions_recompute_once() {
        let p = MachineParams::cm5_1992();
        let mut n = net(32);
        for i in 0..8 {
            n.add_flow(i, 16 + i, 10_000, cap_for(&n, i, 16 + i, &p), i as u64);
        }
        assert_eq!(n.recompute_count(), 0, "recompute deferred");
        n.next_completion();
        assert_eq!(n.recompute_count(), 1, "one recompute for the batch");
        n.next_completion();
        assert_eq!(n.recompute_count(), 1, "clean state does not recompute");
    }

    #[test]
    fn full_solver_matches_incremental_rates() {
        for fairness in [FairnessModel::MaxMin, FairnessModel::EqualShare] {
            let mut p = MachineParams::cm5_1992();
            p.fairness = fairness;
            let mut pf = p.clone();
            pf.rate_solver = RateSolver::Full;
            let mut a = Network::new(FatTree::new(32), &p);
            let mut b = Network::new(FatTree::new(32), &pf);
            for i in 0..16 {
                let cap = cap_for(&a, i, (i * 7 + 1) % 32, &p);
                a.add_flow(i, (i * 7 + 1) % 32, 10_000 + 640 * i as u64, cap, i as u64);
                b.add_flow(i, (i * 7 + 1) % 32, 10_000 + 640 * i as u64, cap, i as u64);
            }
            for tok in 0..16u64 {
                assert_eq!(a.flow_rate(tok), b.flow_rate(tok), "token {tok}");
            }
            assert_eq!(a.next_completion(), b.next_completion());
        }
    }
}
