//! The CM-5 data-network fat tree.
//!
//! The CM-5 data network is a 4-ary fat tree (Figure 1 of the paper): nodes
//! are grouped in clusters of four, clusters of four clusters, and so on.
//! Bandwidth *thins* going up: each node sees 20 MB/s inside its cluster of
//! four, 10 MB/s crossing to another cluster within the same group of 16,
//! and a guaranteed 5 MB/s anywhere in the system.
//!
//! We model the tree as a set of capacitated *links*: every group at every
//! level has an **up** link and a **down** link to its parent (full duplex).
//! A message from `a` to `b` climbs up links from `a` to the pair's lowest
//! common ancestor (LCA) and descends down links to `b`. Contention arises
//! when many flows share a link; the flow engine in [`crate::network`]
//! divides link capacity among them.

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

use crate::params::MachineParams;

/// Fat-tree arity (the CM-5 is 4-ary).
pub const ARITY: usize = 4;

/// Direction of a tree link relative to the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkDir {
    /// From a group towards its parent.
    Up,
    /// From a parent towards a group.
    Down,
}

/// Identifies one capacitated link: the `dir`-direction connection between
/// group `group` at level `level` and its parent.
///
/// Level 0 groups are single nodes, so `(0, i)` is node `i`'s leaf link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId {
    /// Tree level of the child endpoint (0 = leaf).
    pub level: u32,
    /// Group index at that level (`node / ARITY^level`).
    pub group: usize,
    /// Up (towards root) or down (towards leaves).
    pub dir: LinkDir,
}

/// The fat-tree topology over `n` processing nodes.
#[derive(Debug, Clone)]
pub struct FatTree {
    n: usize,
    /// Number of link levels: smallest `L` with `ARITY^L >= n`.
    levels: u32,
    /// `group_count[l]` = number of groups at level `l` (0 ≤ l < levels).
    group_count: Vec<usize>,
    /// Flattened index offset of level `l`'s links (one direction).
    level_offset: Vec<usize>,
    /// Total links in one direction.
    one_dir_links: usize,
}

impl FatTree {
    /// Build the fat tree for `n` nodes. Panics if `n < 2`.
    pub fn new(n: usize) -> FatTree {
        assert!(n >= 2, "a fat tree needs at least 2 nodes, got {n}");
        let mut levels = 0u32;
        let mut span = 1usize;
        while span < n {
            span = span.saturating_mul(ARITY);
            levels += 1;
        }
        let mut group_count = Vec::with_capacity(levels as usize);
        let mut level_offset = Vec::with_capacity(levels as usize);
        let mut offset = 0usize;
        let mut size = 1usize;
        for _ in 0..levels {
            let groups = n.div_ceil(size);
            group_count.push(groups);
            level_offset.push(offset);
            offset += groups;
            size *= ARITY;
        }
        FatTree {
            n,
            levels,
            group_count,
            level_offset,
            one_dir_links: offset,
        }
    }

    /// Number of processing nodes.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Number of link levels (the root sits at this level).
    #[inline]
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Total number of capacitated links (both directions).
    #[inline]
    pub fn link_count(&self) -> usize {
        self.one_dir_links * 2
    }

    /// Number of groups at `level` (0 ≤ level < [`FatTree::levels`]).
    #[inline]
    pub fn groups_at(&self, level: u32) -> usize {
        self.group_count[level as usize]
    }

    /// Group index of `node` at `level` (level 0 = the node itself).
    #[inline]
    pub fn group_of(&self, node: usize, level: u32) -> usize {
        node / ARITY.pow(level)
    }

    /// Number of nodes actually present in group `group` at `level`
    /// (the last group of a level may be partial when `n` is not a power of
    /// the arity).
    pub fn group_size(&self, level: u32, group: usize) -> usize {
        let span = ARITY.pow(level);
        let start = group * span;
        let end = (start + span).min(self.n);
        end.saturating_sub(start)
    }

    /// The level of the lowest common ancestor of two distinct nodes:
    /// the smallest `l ≥ 1` with `group_of(a, l) == group_of(b, l)`.
    ///
    /// Level 1 means "same cluster of four"; [`FatTree::levels`] means the
    /// message crosses the root of the tree.
    pub fn lca_level(&self, a: usize, b: usize) -> u32 {
        assert!(a != b, "lca_level of a node with itself is undefined");
        assert!(a < self.n && b < self.n, "node out of range");
        let mut l = 1u32;
        let (mut ga, mut gb) = (a / ARITY, b / ARITY);
        while ga != gb {
            ga /= ARITY;
            gb /= ARITY;
            l += 1;
        }
        l
    }

    /// Whether a message between `a` and `b` crosses the root of the tree
    /// (the paper's "global exchange").
    #[inline]
    pub fn crosses_root(&self, a: usize, b: usize) -> bool {
        self.lca_level(a, b) == self.levels
    }

    /// Dense index of a link, for per-link state arrays.
    #[inline]
    pub fn link_index(&self, link: LinkId) -> usize {
        let base = self.level_offset[link.level as usize] + link.group;
        match link.dir {
            LinkDir::Up => base,
            LinkDir::Down => self.one_dir_links + base,
        }
    }

    /// Inverse of [`FatTree::link_index`].
    pub fn link_from_index(&self, mut idx: usize) -> LinkId {
        let dir = if idx < self.one_dir_links {
            LinkDir::Up
        } else {
            idx -= self.one_dir_links;
            LinkDir::Down
        };
        // Find the level whose offset range contains idx.
        let mut level = self.level_offset.len() - 1;
        while self.level_offset[level] > idx {
            level -= 1;
        }
        LinkId {
            level: level as u32,
            group: idx - self.level_offset[level],
            dir,
        }
    }

    /// Capacity of a link in bytes/second under `params`.
    ///
    /// A level-`l` link aggregates the traffic of a whole group, so its
    /// capacity is `group_size × per-node share at that crossing`:
    /// leaf links get the full injection bandwidth, level-1 up links get the
    /// 10 MB/s-per-node share, and everything above gets the 5 MB/s floor.
    pub fn link_capacity(&self, link: LinkId, params: &MachineParams) -> f64 {
        let per_node = match link.level {
            0 => params.leaf_bandwidth,
            1 => params.level1_bandwidth,
            _ => params.upper_bandwidth,
        };
        self.group_size(link.level, link.group) as f64 * per_node
    }

    /// The ordered list of link indices a flow from `src` to `dst` occupies:
    /// up links from `src` to the LCA, then down links to `dst`.
    pub fn route(&self, src: usize, dst: usize) -> Vec<usize> {
        let lca = self.lca_level(src, dst);
        let mut links = Vec::with_capacity(2 * lca as usize);
        for l in 0..lca {
            links.push(self.link_index(LinkId {
                level: l,
                group: self.group_of(src, l),
                dir: LinkDir::Up,
            }));
        }
        for l in (0..lca).rev() {
            links.push(self.link_index(LinkId {
                level: l,
                group: self.group_of(dst, l),
                dir: LinkDir::Down,
            }));
        }
        links
    }

    /// Allocation-free routing for the flow engine's route arena: writes the
    /// same links [`FatTree::route`] produces into `out` and returns
    /// `(links_written, lca_level)`. `out` must hold at least
    /// `2 × levels` entries. Link indices are computed arithmetically —
    /// up links are `level_offset[l] + group`, down links the same plus
    /// `one_dir_links` — so no per-pair table is needed.
    pub fn route_into(&self, src: usize, dst: usize, out: &mut [u32]) -> (usize, u32) {
        let lca = self.lca_level(src, dst);
        let mut k = 0usize;
        let mut g = src;
        for l in 0..lca as usize {
            out[k] = (self.level_offset[l] + g) as u32;
            k += 1;
            g /= ARITY;
        }
        for l in (0..lca).rev() {
            let group = dst / ARITY.pow(l);
            out[k] = (self.one_dir_links + self.level_offset[l as usize] + group) as u32;
            k += 1;
        }
        (k, lca)
    }
}

/// A binary hypercube topology with dimension-ordered (e-cube) routing —
/// the architecture PEX/REX were designed for (Intel iPSC, nCUBE), kept
/// here as the counterfactual to the CM-5's fat tree: XOR-permutation
/// traffic is congestion-free on a hypercube, so BEX's balancing buys
/// nothing and the paper's fat-tree results invert.
#[derive(Debug, Clone)]
pub struct Hypercube {
    n: usize,
    dims: u32,
}

impl Hypercube {
    /// Build a hypercube over `n` nodes (`n` a power of two ≥ 2).
    pub fn new(n: usize) -> Hypercube {
        assert!(
            n >= 2 && n.is_power_of_two(),
            "hypercube needs a power-of-two node count, got {n}"
        );
        Hypercube {
            n,
            dims: n.trailing_zeros(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Number of dimensions (lg n).
    #[inline]
    pub fn dims(&self) -> u32 {
        self.dims
    }

    /// Directed links: one per (node, dimension), carrying traffic from
    /// `node` to `node ^ (1 << dim)`.
    #[inline]
    pub fn link_count(&self) -> usize {
        self.n * self.dims as usize
    }

    /// Index of the directed link out of `node` along `dim`.
    #[inline]
    pub fn link_index(&self, node: usize, dim: u32) -> usize {
        node * self.dims as usize + dim as usize
    }

    /// Dimension a link index belongs to.
    #[inline]
    pub fn link_dim(&self, idx: usize) -> u32 {
        (idx % self.dims as usize) as u32
    }

    /// E-cube route: fix differing dimensions in ascending order.
    pub fn route(&self, src: usize, dst: usize) -> Vec<usize> {
        assert!(src != dst && src < self.n && dst < self.n);
        let mut links = Vec::with_capacity((src ^ dst).count_ones() as usize);
        let mut cur = src;
        for d in 0..self.dims {
            if (src ^ dst) & (1 << d) != 0 {
                links.push(self.link_index(cur, d));
                cur ^= 1 << d;
            }
        }
        debug_assert_eq!(cur, dst);
        links
    }

    /// Allocation-free variant of [`Hypercube::route`]: writes the e-cube
    /// links into `out` (which must hold at least `dims` entries) and
    /// returns the number written.
    pub fn route_into(&self, src: usize, dst: usize, out: &mut [u32]) -> usize {
        assert!(src != dst && src < self.n && dst < self.n);
        let mut k = 0usize;
        let mut cur = src;
        for d in 0..self.dims {
            if (src ^ dst) & (1 << d) != 0 {
                out[k] = self.link_index(cur, d) as u32;
                k += 1;
                cur ^= 1 << d;
            }
        }
        debug_assert_eq!(cur, dst);
        k
    }
}

/// A network topology: the CM-5 fat tree, or the hypercube counterfactual.
/// The flow engine and the packet model run over either.
#[derive(Debug, Clone)]
pub enum Topology {
    /// The CM-5's 4-ary fat tree.
    FatTree(FatTree),
    /// A binary hypercube with e-cube routing.
    Hypercube(Hypercube),
}

impl Topology {
    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        match self {
            Topology::FatTree(t) => t.nodes(),
            Topology::Hypercube(h) => h.nodes(),
        }
    }

    /// Number of capacitated links.
    pub fn link_count(&self) -> usize {
        match self {
            Topology::FatTree(t) => t.link_count(),
            Topology::Hypercube(h) => h.link_count(),
        }
    }

    /// Link indices a `src → dst` flow occupies.
    pub fn route(&self, src: usize, dst: usize) -> Vec<usize> {
        match self {
            Topology::FatTree(t) => t.route(src, dst),
            Topology::Hypercube(h) => h.route(src, dst),
        }
    }

    /// Static capacity of every link, bytes/second. Hypercube links carry
    /// the full per-port hardware bandwidth (`leaf_bandwidth`); there is no
    /// thinning — that is the whole point of the comparison.
    pub fn link_capacities(&self, params: &MachineParams) -> Vec<f64> {
        match self {
            Topology::FatTree(t) => (0..t.link_count())
                .map(|i| t.link_capacity(t.link_from_index(i), params))
                .collect(),
            Topology::Hypercube(h) => vec![params.leaf_bandwidth; h.link_count()],
        }
    }

    /// Aggregation level of a link for per-level byte accounting:
    /// fat-tree level, or hypercube dimension.
    pub fn link_level(&self, idx: usize) -> usize {
        match self {
            Topology::FatTree(t) => t.link_from_index(idx).level as usize,
            Topology::Hypercube(h) => h.link_dim(idx) as usize,
        }
    }

    /// Number of aggregation levels.
    pub fn num_levels(&self) -> usize {
        match self {
            Topology::FatTree(t) => t.levels() as usize,
            Topology::Hypercube(h) => h.dims() as usize,
        }
    }

    /// Upper bound on the number of links any route can occupy — the
    /// fixed stride of the flow engine's route arena. Fat-tree routes climb
    /// at most `levels` up links and descend as many down links; hypercube
    /// e-cube routes fix at most `dims` dimensions.
    pub fn max_route_len(&self) -> usize {
        match self {
            Topology::FatTree(t) => 2 * t.levels() as usize,
            Topology::Hypercube(h) => h.dims() as usize,
        }
    }

    /// Whether a message crosses the costliest cut (fat-tree root; the
    /// top hypercube dimension).
    pub fn crosses_root(&self, a: usize, b: usize) -> bool {
        match self {
            Topology::FatTree(t) => t.crosses_root(a, b),
            Topology::Hypercube(h) => (a ^ b) & (h.nodes() >> 1) != 0,
        }
    }

    /// Structural identity of this topology, used as the route-cache key.
    /// Two topologies with the same shape have identical routes and levels.
    fn shape_key(&self) -> ShapeKey {
        match self {
            Topology::FatTree(t) => ShapeKey::FatTree(t.nodes()),
            Topology::Hypercube(h) => ShapeKey::Hypercube(h.nodes()),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ShapeKey {
    FatTree(usize),
    Hypercube(usize),
}

/// Precomputed all-pairs routing and link levels for one topology shape.
///
/// Routing a fat-tree message walks the tree computing LCAs and link
/// indices; done per `add_flow` that dominated the hot path of large
/// sweeps. A `RouteTable` computes every `src → dst` route once into one
/// CSR arena (`offsets` into a shared `links` array) plus a per-link level
/// lookup, and is memoized globally per topology *shape* — every
/// [`crate::network::Network`] on a 32-node fat tree shares one table, so
/// repeated simulation runs at the same machine size pay for routing
/// exactly once per process. The table is immutable after construction
/// (`Send + Sync`), which is what lets sweep workers share it freely.
#[derive(Debug)]
pub struct RouteTable {
    n: usize,
    /// CSR offsets: route of `src → dst` is `links[offsets[src*n+dst]..offsets[src*n+dst+1]]`.
    offsets: Vec<u32>,
    /// Concatenated link indices of every route, row-major by (src, dst).
    links: Vec<usize>,
    /// Aggregation level of each link index (fat-tree level / hypercube dim).
    levels: Vec<u16>,
    num_levels: usize,
}

/// Global shape-keyed memo of route tables.
static ROUTE_CACHE: OnceLock<Mutex<HashMap<ShapeKey, Arc<RouteTable>>>> = OnceLock::new();

impl RouteTable {
    /// Compute the table for `topo` from scratch (use [`RouteTable::shared`]
    /// to hit the process-wide cache instead).
    pub fn build(topo: &Topology) -> RouteTable {
        let n = topo.nodes();
        let mut offsets = Vec::with_capacity(n * n + 1);
        let mut links = Vec::new();
        offsets.push(0u32);
        for src in 0..n {
            for dst in 0..n {
                if src != dst {
                    links.extend(topo.route(src, dst));
                }
                offsets.push(links.len() as u32);
            }
        }
        let levels = (0..topo.link_count())
            .map(|i| topo.link_level(i) as u16)
            .collect();
        RouteTable {
            n,
            offsets,
            links,
            levels,
            num_levels: topo.num_levels(),
        }
    }

    /// The memoized table for `topo`'s shape, building it on first use.
    pub fn shared(topo: &Topology) -> Arc<RouteTable> {
        let cache = ROUTE_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let key = topo.shape_key();
        let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(key)
                .or_insert_with(|| Arc::new(RouteTable::build(topo))),
        )
    }

    /// Number of nodes the table covers.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Number of link indices the table covers.
    #[inline]
    pub fn link_count(&self) -> usize {
        self.levels.len()
    }

    /// Number of aggregation levels.
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// Aggregation level of link `idx` (precomputed
    /// [`Topology::link_level`]).
    #[inline]
    pub fn link_level(&self, idx: usize) -> usize {
        self.levels[idx] as usize
    }

    /// The cached route `src → dst` (empty iff `src == dst`).
    #[inline]
    pub fn route(&self, src: usize, dst: usize) -> &[usize] {
        let cell = src * self.n + dst;
        &self.links[self.offsets[cell] as usize..self.offsets[cell + 1] as usize]
    }

    /// A cheaply clonable handle to the cached route `src → dst`, for
    /// storing on long-lived objects (flows) without copying the links.
    pub fn route_ref(self: &Arc<Self>, src: usize, dst: usize) -> RouteRef {
        let cell = src * self.n + dst;
        RouteRef {
            start: self.offsets[cell],
            end: self.offsets[cell + 1],
            table: Arc::clone(self),
        }
    }
}

/// A shared, immutable view of one route in a [`RouteTable`].
/// Dereferences to the slice of link indices.
#[derive(Clone)]
pub struct RouteRef {
    table: Arc<RouteTable>,
    start: u32,
    end: u32,
}

impl Deref for RouteRef {
    type Target = [usize];
    #[inline]
    fn deref(&self) -> &[usize] {
        &self.table.links[self.start as usize..self.end as usize]
    }
}

impl std::fmt::Debug for RouteRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RouteRef({:?})", &**self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_counts() {
        assert_eq!(FatTree::new(4).levels(), 1);
        assert_eq!(FatTree::new(8).levels(), 2);
        assert_eq!(FatTree::new(16).levels(), 2);
        assert_eq!(FatTree::new(32).levels(), 3);
        assert_eq!(FatTree::new(64).levels(), 3);
        assert_eq!(FatTree::new(256).levels(), 4);
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn rejects_single_node() {
        FatTree::new(1);
    }

    #[test]
    fn lca_levels_8_nodes() {
        let t = FatTree::new(8);
        assert_eq!(t.lca_level(0, 1), 1); // same cluster of 4
        assert_eq!(t.lca_level(0, 3), 1);
        assert_eq!(t.lca_level(0, 4), 2); // across the root
        assert_eq!(t.lca_level(3, 7), 2);
        assert!(t.crosses_root(0, 4));
        assert!(!t.crosses_root(0, 3));
    }

    #[test]
    fn lca_levels_32_nodes() {
        let t = FatTree::new(32);
        assert_eq!(t.lca_level(0, 3), 1);
        assert_eq!(t.lca_level(0, 5), 2); // within same 16
        assert_eq!(t.lca_level(0, 15), 2);
        assert_eq!(t.lca_level(0, 16), 3); // crosses root
        assert!(t.crosses_root(0, 16));
        assert!(!t.crosses_root(0, 15));
    }

    #[test]
    fn group_sizes_partial_tree() {
        // 8 nodes, level 2 has one (partial) group of 8 out of a span of 16.
        let t = FatTree::new(8);
        assert_eq!(t.group_size(0, 3), 1);
        assert_eq!(t.group_size(1, 0), 4);
        assert_eq!(t.group_size(1, 1), 4);
        assert_eq!(t.group_size(2, 0), 8);
    }

    #[test]
    fn link_index_roundtrip() {
        let t = FatTree::new(32);
        for idx in 0..t.link_count() {
            let link = t.link_from_index(idx);
            assert_eq!(t.link_index(link), idx, "roundtrip failed for {idx}");
        }
    }

    #[test]
    fn route_shape() {
        let t = FatTree::new(8);
        // Neighbours in a cluster: up leaf, down leaf.
        let r = t.route(0, 1);
        assert_eq!(r.len(), 2);
        // Across the root of an 8-node machine: 2 up + 2 down.
        let r = t.route(0, 4);
        assert_eq!(r.len(), 4);
        // Routes never repeat a link.
        let mut sorted = r.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), r.len());
    }

    #[test]
    fn route_is_symmetric_in_length() {
        let t = FatTree::new(64);
        for (a, b) in [(0, 1), (0, 5), (0, 17), (3, 60)] {
            assert_eq!(t.route(a, b).len(), t.route(b, a).len());
        }
    }

    #[test]
    fn hypercube_routes_have_hamming_length() {
        let h = Hypercube::new(16);
        for a in 0..16usize {
            for b in 0..16usize {
                if a != b {
                    let r = h.route(a, b);
                    assert_eq!(r.len(), (a ^ b).count_ones() as usize);
                    // No repeated links.
                    let mut s = r.clone();
                    s.sort_unstable();
                    s.dedup();
                    assert_eq!(s.len(), r.len());
                }
            }
        }
    }

    /// The classic result the ablation rests on: an XOR permutation
    /// (`x → x ^ j`) under e-cube routing uses every directed link at most
    /// once — zero contention.
    #[test]
    fn xor_permutations_are_congestion_free_on_hypercube() {
        let n = 32;
        let h = Hypercube::new(n);
        for j in 1..n {
            let mut used = vec![false; h.link_count()];
            for x in 0..n {
                for l in h.route(x, x ^ j) {
                    assert!(!used[l], "j={j}: link {l} used twice");
                    used[l] = true;
                }
            }
        }
    }

    #[test]
    fn topology_enum_delegates_consistently() {
        let p = MachineParams::cm5_1992();
        for topo in [
            Topology::FatTree(FatTree::new(16)),
            Topology::Hypercube(Hypercube::new(16)),
        ] {
            assert_eq!(topo.nodes(), 16);
            let caps = topo.link_capacities(&p);
            assert_eq!(caps.len(), topo.link_count());
            assert!(caps.iter().all(|&c| c > 0.0));
            for idx in 0..topo.link_count() {
                assert!(topo.link_level(idx) < topo.num_levels());
            }
            let r = topo.route(0, 15);
            assert!(!r.is_empty());
            assert!(r.iter().all(|&l| l < topo.link_count()));
        }
    }

    #[test]
    fn hypercube_root_crossing_is_top_dimension() {
        let topo = Topology::Hypercube(Hypercube::new(8));
        assert!(topo.crosses_root(0, 4));
        assert!(topo.crosses_root(3, 7));
        assert!(!topo.crosses_root(0, 3));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn hypercube_rejects_non_power_of_two() {
        Hypercube::new(6);
    }

    #[test]
    fn route_table_matches_direct_routing() {
        for topo in [
            Topology::FatTree(FatTree::new(32)),
            Topology::FatTree(FatTree::new(8)),
            Topology::Hypercube(Hypercube::new(16)),
        ] {
            let table = RouteTable::build(&topo);
            let n = topo.nodes();
            for src in 0..n {
                for dst in 0..n {
                    if src == dst {
                        assert!(table.route(src, dst).is_empty());
                    } else {
                        assert_eq!(table.route(src, dst), &topo.route(src, dst)[..]);
                    }
                }
            }
            for idx in 0..topo.link_count() {
                assert_eq!(table.link_level(idx), topo.link_level(idx));
            }
            assert_eq!(table.num_levels(), topo.num_levels());
            assert_eq!(table.link_count(), topo.link_count());
        }
    }

    #[test]
    fn shared_table_is_memoized_per_shape() {
        let a = RouteTable::shared(&Topology::FatTree(FatTree::new(16)));
        let b = RouteTable::shared(&Topology::FatTree(FatTree::new(16)));
        assert!(Arc::ptr_eq(&a, &b), "same shape must share one table");
        let c = RouteTable::shared(&Topology::Hypercube(Hypercube::new(16)));
        assert!(!Arc::ptr_eq(&a, &c), "different shapes must not share");
        let r = a.route_ref(0, 5);
        assert_eq!(&*r, a.route(0, 5));
        assert_eq!(&*r.clone(), &*r);
    }

    /// `route_into` is the arena-writing twin of `route`; they must agree
    /// link-for-link on every pair, and the fat-tree variant must also
    /// report the LCA level. The stride bound must hold for every route.
    #[test]
    fn route_into_matches_route() {
        for n in [8usize, 13, 32, 64, 256] {
            let t = FatTree::new(n);
            let stride = Topology::FatTree(t.clone()).max_route_len();
            let mut buf = vec![0u32; stride];
            for src in 0..n {
                for dst in 0..n {
                    if src == dst {
                        continue;
                    }
                    let (len, lca) = t.route_into(src, dst, &mut buf);
                    let expect = t.route(src, dst);
                    assert!(len <= stride, "stride bound violated");
                    assert_eq!(lca, t.lca_level(src, dst));
                    let got: Vec<usize> = buf[..len].iter().map(|&l| l as usize).collect();
                    assert_eq!(got, expect, "fat tree n={n} {src}->{dst}");
                }
            }
        }
        let h = Hypercube::new(32);
        let stride = Topology::Hypercube(h.clone()).max_route_len();
        let mut buf = vec![0u32; stride];
        for src in 0..32usize {
            for dst in 0..32usize {
                if src == dst {
                    continue;
                }
                let len = h.route_into(src, dst, &mut buf);
                let expect = h.route(src, dst);
                assert!(len <= stride, "stride bound violated");
                let got: Vec<usize> = buf[..len].iter().map(|&l| l as usize).collect();
                assert_eq!(got, expect, "hypercube {src}->{dst}");
            }
        }
    }

    #[test]
    fn capacities_match_published_figures() {
        let t = FatTree::new(32);
        let p = MachineParams::cm5_1992();
        // Leaf link: 20 MB/s.
        let leaf = LinkId {
            level: 0,
            group: 0,
            dir: LinkDir::Up,
        };
        assert_eq!(t.link_capacity(leaf, &p), 20.0e6);
        // Cluster-of-4 up link: 4 × 10 MB/s.
        let l1 = LinkId {
            level: 1,
            group: 0,
            dir: LinkDir::Up,
        };
        assert_eq!(t.link_capacity(l1, &p), 40.0e6);
        // 16-group up link: 16 × 5 MB/s.
        let l2 = LinkId {
            level: 2,
            group: 0,
            dir: LinkDir::Up,
        };
        assert_eq!(t.link_capacity(l2, &p), 80.0e6);
    }
}
