//! Integer-nanosecond virtual time.
//!
//! All simulator timekeeping uses `u64` nanoseconds so that event ordering is
//! exact and runs are bit-for-bit reproducible. Rates (bytes per second) are
//! converted to durations with explicit rounding in one place
//! ([`SimDuration::from_rate`]).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in virtual time, in nanoseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Time zero: the start of every simulation run.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the start of the run.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant expressed in (fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This instant expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative and non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Time to move `amount` units at `rate` units per second, rounded up to
    /// the next nanosecond so a transfer is never reported complete early.
    #[inline]
    pub fn from_rate(amount: f64, rate_per_sec: f64) -> SimDuration {
        debug_assert!(rate_per_sec > 0.0, "rate must be positive");
        if amount <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((amount / rate_per_sec * 1e9).ceil() as u64)
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional microseconds in this duration.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional milliseconds in this duration.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Fractional seconds in this duration.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating duration addition.
    #[inline]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_micros(88);
        assert_eq!(t.as_nanos(), 88_000);
        assert_eq!((t + SimDuration::from_nanos(12)) - t, SimDuration(12));
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_micros(88));
    }

    #[test]
    fn since_saturates() {
        let a = SimTime(5);
        let b = SimTime(10);
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn from_rate_rounds_up() {
        // 1 byte at 3 bytes/sec = 333_333_333.33 ns, must round up.
        let d = SimDuration::from_rate(1.0, 3.0);
        assert_eq!(d.as_nanos(), 333_333_334);
        assert_eq!(SimDuration::from_rate(0.0, 3.0), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", SimDuration::from_micros(88)), "88.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::from_millis(3500)), "3.500s");
    }
}
