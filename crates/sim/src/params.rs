//! Machine parameters: every constant of the performance model in one place.
//!
//! The preset [`MachineParams::cm5_1992`] encodes the published figures for
//! the 1992 Thinking Machines CM-5 that the paper's §2 reports:
//!
//! * data network: fat tree, 20-byte packets carrying 16 bytes of user data,
//!   a zero-byte message costs ~88 µs end to end, peak point-to-point
//!   bandwidth 20 MB/s inside a cluster of four, with a system-wide
//!   guaranteed floor of 5 MB/s;
//! * control network: global synchronization / reduction / broadcast with a
//!   2–5 µs latency;
//! * nodes: 32 MIPS SPARC processors *without* the optional vector units
//!   (the paper's experiments predate their general availability), so a few
//!   scalar MFLOPS and a memory-copy rate in the tens of MB/s.
//!
//! Everything is overridable so the benches can run the ablations DESIGN.md
//! calls out (eager vs rendezvous sends, fairness model, tree thinning).

use crate::time::SimDuration;

/// How concurrent flows divide a saturated link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FairnessModel {
    /// Progressive-filling max-min fairness (the default; models the CM-5
    /// router's per-packet round-robin behaviour at saturated switches).
    MaxMin,
    /// Each flow crossing a link gets `capacity / flows` regardless of
    /// whether it can use it (a deliberately cruder ablation model).
    EqualShare,
}

/// Which implementation of the flow-rate solver the network uses.
///
/// All three produce bit-identical rates, completion times, and reports;
/// the difference is purely wall-clock cost. `Full` is retained as the
/// differential-testing oracle and as the `--rates full` ablation flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateSolver {
    /// Batched admissions, slab flow store, persistent scratch buffers and
    /// an indexed completion queue: one rate recomputation per timestamp
    /// with zero per-call allocation (the default).
    Incremental,
    /// The original solver: a full recomputation with fresh allocations on
    /// every flow add/remove, an O(flows) completion scan, and eager
    /// per-event byte integration.
    Full,
    /// Hierarchical max-min over the fat tree: per-subtree dirty bits track
    /// which spine of the tree a batch of admissions/completions touched,
    /// and each recompute re-fills only the flows inside the affected
    /// maximal occupied subtrees (`--rates hierarchical`). On topologies
    /// without a tree (hypercube) it degenerates to `Incremental`.
    Hierarchical,
}

/// When a blocking send may start moving bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendMode {
    /// Rendezvous: the transfer starts only once the matching receive is
    /// posted, and the sender blocks until the transfer completes. This is
    /// the paper's "current version of CM-5 software supports only
    /// synchronous communication" constraint.
    Rendezvous,
    /// Eager: the transfer starts as soon as the send is posted (modelling a
    /// buffered/asynchronous layer); the sender resumes once its bytes are
    /// injected. Used as an ablation to quantify what synchrony costs.
    Eager,
}

/// All tunable constants of the simulated machine.
#[derive(Debug, Clone)]
pub struct MachineParams {
    /// Bytes of user data per data-network packet (CM-5: 16).
    pub packet_payload: u64,
    /// Bytes on the wire per packet including the header (CM-5: 20).
    pub packet_wire: u64,
    /// CPU time the sender spends setting up a message before it can leave.
    pub send_overhead: SimDuration,
    /// CPU time the receiver spends posting/landing a message.
    pub recv_overhead: SimDuration,
    /// Network traversal latency added after the last byte is injected.
    pub wire_latency: SimDuration,
    /// Per-node injection/ejection bandwidth at the leaf, bytes/second
    /// (CM-5: 20 MB/s).
    pub leaf_bandwidth: f64,
    /// Per-flow streaming rate the CMMD software layer sustains, bytes/second.
    /// The data network's 20 MB/s is hardware; measured CMMD blocking
    /// transfers on the 1992 machine topped out near 8–10 MB/s. Every flow
    /// is capped at `min(leaf_bandwidth, software_bandwidth)`; the fat-tree
    /// thinning (10/5 MB/s per node at the upper levels) appears as shared
    /// *link* capacity, so it only bites when many flows cross a level at
    /// once — which is exactly the PEX-vs-BEX effect of §3.4.
    pub software_bandwidth: f64,
    /// Per-node share of the aggregate up-link capacity when leaving a
    /// cluster of 4 (CM-5: 10 MB/s).
    pub level1_bandwidth: f64,
    /// Per-node share of aggregate capacity at level 2 and above — the
    /// system-wide guaranteed bandwidth (CM-5: 5 MB/s).
    pub upper_bandwidth: f64,
    /// One-way latency of a control-network operation (barrier, reduce,
    /// control broadcast). CM-5: 2–5 µs; we use the conservative end.
    pub control_latency: SimDuration,
    /// Per-byte throughput of the *system* broadcast primitive, bytes/second.
    /// The CMMD system broadcast streams over the data network but requires
    /// the whole partition to participate, which is what makes it nearly
    /// independent of machine size and slower than REB for large messages.
    pub system_bcast_bandwidth: f64,
    /// Fixed software overhead of one system-broadcast call.
    pub system_bcast_overhead: SimDuration,
    /// Memory-copy rate for pack/unpack (bytes/second). Charged by
    /// [`crate::ops::Op::Memcpy`]; REX's reshuffling pays this.
    pub memcpy_bandwidth: f64,
    /// Scalar floating-point rate (flops/second). Charged by
    /// [`crate::ops::Op::Flops`].
    pub flops_per_sec: f64,
    /// Send semantics (rendezvous vs eager).
    pub send_mode: SendMode,
    /// Link-sharing model.
    pub fairness: FairnessModel,
    /// Flow-rate solver implementation (results are identical; see
    /// [`RateSolver`]).
    pub rate_solver: RateSolver,
}

impl MachineParams {
    /// The 1992 CM-5 preset (see module docs for provenance).
    pub fn cm5_1992() -> MachineParams {
        MachineParams {
            packet_payload: 16,
            packet_wire: 20,
            // 40 + 40 + 8 = 88 µs for a zero-byte message when both sides
            // are ready, matching the paper's quoted latency.
            send_overhead: SimDuration::from_micros(40),
            recv_overhead: SimDuration::from_micros(40),
            wire_latency: SimDuration::from_micros(8),
            leaf_bandwidth: 20.0e6,
            software_bandwidth: 10.0e6,
            level1_bandwidth: 10.0e6,
            upper_bandwidth: 5.0e6,
            control_latency: SimDuration::from_micros(5),
            // The CMMD system broadcast streams through the *control*
            // network, which combines 4-byte words machine-wide: low fixed
            // cost, poor per-byte rate (~1.2 MB/s effective). That is why
            // Figure 10/11 shows it winning for small messages but losing to
            // REB's data-network pipeline beyond ~1–2 KB.
            system_bcast_bandwidth: 1.2e6,
            system_bcast_overhead: SimDuration::from_micros(150),
            // Scalar SPARC-2-class node: ~25 MB/s memcpy, ~2 MFLOPS double
            // precision (the paper's machines predate the vector units).
            memcpy_bandwidth: 25.0e6,
            flops_per_sec: 2.0e6,
            send_mode: SendMode::Rendezvous,
            fairness: FairnessModel::MaxMin,
            rate_solver: RateSolver::Incremental,
        }
    }

    /// The 1993-era CM-5 upgrade: four vector units per node (peak
    /// 128 MFLOPS, ~25 sustained on solver kernels) and a faster memory
    /// system. Communication constants unchanged — which is exactly why
    /// the vector units made communication scheduling *more* important:
    /// the compute share of Table 5 shrinks ~10× and the exchange choice
    /// dominates.
    pub fn cm5_vector_1993() -> MachineParams {
        MachineParams {
            flops_per_sec: 25.0e6,
            memcpy_bandwidth: 80.0e6,
            ..MachineParams::cm5_1992()
        }
    }

    /// The paper's §3.1 hypothetical as a whole-machine mode: buffered
    /// (eager) sends instead of rendezvous. Used by the ablation benches.
    pub fn cm5_1992_buffered() -> MachineParams {
        MachineParams {
            send_mode: SendMode::Eager,
            ..MachineParams::cm5_1992()
        }
    }

    /// Number of packets a `bytes`-byte user message occupies. A zero-byte
    /// message still sends one (header-only) packet.
    #[inline]
    pub fn packets(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            1
        } else {
            bytes.div_ceil(self.packet_payload)
        }
    }

    /// Bytes on the wire for a `bytes`-byte user message.
    #[inline]
    pub fn wire_bytes(&self, bytes: u64) -> u64 {
        self.packets(bytes) * self.packet_wire
    }

    /// Pack/unpack (memcpy) time for `bytes` bytes.
    #[inline]
    pub fn memcpy_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_rate(bytes as f64, self.memcpy_bandwidth)
    }

    /// Compute time for `flops` floating-point operations.
    #[inline]
    pub fn flops_time(&self, flops: u64) -> SimDuration {
        SimDuration::from_rate(flops as f64, self.flops_per_sec)
    }

    /// Per-node *aggregate share* of the tree's capacity when every node in
    /// a group transmits across level `lca_level` at once (1 = inside a
    /// cluster of 4). These are the published 20/10/5 MB/s under-load
    /// figures; they parameterize link capacities, not individual flows.
    #[inline]
    pub fn level_bandwidth(&self, lca_level: u32) -> f64 {
        match lca_level {
            0 | 1 => self.leaf_bandwidth,
            2 => self.level1_bandwidth,
            _ => self.upper_bandwidth,
        }
    }

    /// Rate cap applied to every individual flow: the slower of the leaf
    /// link and the CMMD software streaming rate.
    #[inline]
    pub fn flow_cap(&self) -> f64 {
        self.leaf_bandwidth.min(self.software_bandwidth)
    }

    /// End-to-end cost of a zero-byte message when both sides are ready:
    /// the paper's 88 µs figure on the 1992 preset. This is the minimum
    /// time any node-to-node causality needs to propagate, and therefore
    /// the default conservative window width of the parallel engine
    /// ([`crate::Simulation::sim_jobs`]).
    #[inline]
    pub fn min_message_latency(&self) -> SimDuration {
        self.send_overhead + self.recv_overhead + self.wire_latency
    }

    /// Validate internal consistency; called by the engine at startup.
    pub fn validate(&self) -> Result<(), String> {
        if self.packet_payload == 0 || self.packet_wire < self.packet_payload {
            return Err(format!(
                "packet sizes inconsistent: payload={} wire={}",
                self.packet_payload, self.packet_wire
            ));
        }
        for (name, v) in [
            ("leaf_bandwidth", self.leaf_bandwidth),
            ("software_bandwidth", self.software_bandwidth),
            ("level1_bandwidth", self.level1_bandwidth),
            ("upper_bandwidth", self.upper_bandwidth),
            ("system_bcast_bandwidth", self.system_bcast_bandwidth),
            ("memcpy_bandwidth", self.memcpy_bandwidth),
            ("flops_per_sec", self.flops_per_sec),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} must be positive and finite, got {v}"));
            }
        }
        Ok(())
    }
}

impl Default for MachineParams {
    fn default() -> Self {
        MachineParams::cm5_1992()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cm5_preset_is_valid() {
        MachineParams::cm5_1992().validate().unwrap();
    }

    #[test]
    fn zero_byte_message_is_one_packet() {
        let p = MachineParams::cm5_1992();
        assert_eq!(p.packets(0), 1);
        assert_eq!(p.wire_bytes(0), 20);
    }

    #[test]
    fn packetization_rounds_up() {
        let p = MachineParams::cm5_1992();
        assert_eq!(p.packets(16), 1);
        assert_eq!(p.packets(17), 2);
        assert_eq!(p.packets(256), 16);
        assert_eq!(p.wire_bytes(256), 320);
    }

    #[test]
    fn latency_sums_to_88_micros() {
        let p = MachineParams::cm5_1992();
        let total = p.send_overhead + p.recv_overhead + p.wire_latency;
        assert_eq!(total, SimDuration::from_micros(88));
        assert_eq!(p.min_message_latency(), total);
    }

    #[test]
    fn presets_are_valid_and_distinct() {
        MachineParams::cm5_vector_1993().validate().unwrap();
        MachineParams::cm5_1992_buffered().validate().unwrap();
        assert!(
            MachineParams::cm5_vector_1993().flops_per_sec
                > 10.0 * MachineParams::cm5_1992().flops_per_sec
        );
        assert_eq!(
            MachineParams::cm5_1992_buffered().send_mode,
            SendMode::Eager
        );
        // Same network: the vector upgrade did not touch the fat tree.
        assert_eq!(
            MachineParams::cm5_vector_1993().leaf_bandwidth,
            MachineParams::cm5_1992().leaf_bandwidth
        );
    }

    #[test]
    fn validate_rejects_bad_bandwidth() {
        let mut p = MachineParams::cm5_1992();
        p.leaf_bandwidth = 0.0;
        assert!(p.validate().is_err());
        p.leaf_bandwidth = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_packets() {
        let mut p = MachineParams::cm5_1992();
        p.packet_wire = 8; // smaller than payload
        assert!(p.validate().is_err());
    }

    #[test]
    fn level_bandwidth_thins_up_the_tree() {
        let p = MachineParams::cm5_1992();
        assert_eq!(p.level_bandwidth(1), 20.0e6);
        assert_eq!(p.level_bandwidth(2), 10.0e6);
        assert_eq!(p.level_bandwidth(3), 5.0e6);
        assert_eq!(p.level_bandwidth(7), 5.0e6);
    }

    #[test]
    fn flow_cap_is_software_limited() {
        let mut p = MachineParams::cm5_1992();
        assert_eq!(p.flow_cap(), 10.0e6);
        p.software_bandwidth = 50.0e6;
        assert_eq!(
            p.flow_cap(),
            20.0e6,
            "leaf link binds when software is fast"
        );
    }
}
