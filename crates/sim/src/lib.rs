//! # cm5-sim — a deterministic simulator of the Thinking Machines CM-5
//!
//! This crate is the hardware substrate for reproducing *Scheduling Regular
//! and Irregular Communication Patterns on the CM-5* (Ponnusamy, Thakur,
//! Choudhary, Fox; SC '92). It models the pieces of the machine the paper's
//! measurements depend on:
//!
//! * the **data network**: a 4-ary fat tree ([`FatTree`]) whose per-node
//!   bandwidth thins from 20 MB/s inside a cluster of four to the 5 MB/s
//!   system-wide guarantee, carrying 20-byte packets with 16 bytes of user
//!   data; in-flight messages are flows sharing link bandwidth max-min
//!   fairly ([`network::Network`]);
//! * the **control network**: barriers, global reductions and broadcasts
//!   with microsecond latency;
//! * **CMMD synchronous messaging**: blocking sends rendezvous with
//!   blocking receives — the constraint at the heart of the paper's results;
//! * **node cost model**: per-message software overheads summing to the
//!   published 88 µs zero-byte latency, plus memcpy and scalar-flop rates
//!   for pack/unpack and compute charging.
//!
//! ## Driving the machine
//!
//! Build a [`Simulation`], then either interpret per-node op vectors
//! ([`Simulation::run_ops`]) or run real closures on one thread per node
//! with the payload-carrying CMMD API ([`Simulation::run_nodes`]). Both
//! frontends produce identical virtual timing.
//!
//! ```
//! use cm5_sim::{MachineParams, Simulation};
//! use bytes::Bytes;
//!
//! let sim = Simulation::new(8, MachineParams::cm5_1992());
//! let report = sim
//!     .run_nodes(|node| {
//!         // Everybody swaps a kilobyte with its hypercube neighbour.
//!         let partner = node.id() ^ 1;
//!         node.swap(partner, 0, Bytes::from(vec![0u8; 1024]));
//!         node.barrier();
//!     })
//!     .unwrap();
//! assert_eq!(report.messages, 8);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Internal-consistency assertion. Compiles to [`debug_assert!`] normally;
/// the `strict-invariants` feature (enabled in CI) upgrades every site to an
/// unconditional [`assert!`] so release-mode test runs still police the
/// simulator's invariants (monotone time, positive active-flow rates,
/// max-min progress, collective arrival discipline).
macro_rules! invariant {
    ($($arg:tt)*) => {
        if cfg!(feature = "strict-invariants") {
            assert!($($arg)*);
        } else {
            debug_assert!($($arg)*);
        }
    };
}

/// Equality form of [`invariant!`].
macro_rules! invariant_eq {
    ($($arg:tt)*) => {
        if cfg!(feature = "strict-invariants") {
            assert_eq!($($arg)*);
        } else {
            debug_assert_eq!($($arg)*);
        }
    };
}

pub mod cmmd;
pub mod engine;
pub mod error;
pub mod modelcheck;
pub mod network;
pub mod ops;
pub mod packet;
pub mod params;
pub mod stats;
pub mod tenant;
pub mod time;
pub mod topology;
pub mod trace;

pub use cmmd::{CmmdNode, Received, SendHandle};
pub use engine::Simulation;
pub use error::SimError;
pub use modelcheck::{check_cursor_protocol, check_racy_shared_node, ModelResult};
pub use ops::{Op, OpProgram, ReduceOp, ANY_TAG};
pub use params::{FairnessModel, MachineParams, RateSolver, SendMode};
pub use stats::{NodeReport, RateSample, SimPerf, SimReport, TraceEvent, TraceKind, TraceRing};
pub use tenant::{
    run_tenants, run_tenants_jobs, Placement, TenantLayout, TenantReport, TenantSlice, TenantSpec,
};
pub use time::{SimDuration, SimTime};
pub use topology::{FatTree, Hypercube, LinkDir, LinkId, RouteRef, RouteTable, Topology};
