//! CMMD-flavoured thread frontend.
//!
//! [`Simulation::run_nodes`] spawns one OS thread per simulated node and
//! runs your closure against a [`CmmdNode`] handle whose blocking calls
//! mirror the CMMD library the paper used: `send_block`, `recv_block`,
//! `swap`, `barrier`, reductions and the system broadcast. Calls carry
//! **real payload bytes**, so distributed algorithms (the 2-D FFT transpose,
//! CG halo exchanges, REX's store-and-forward reshuffle) are numerically
//! real and can be verified against sequential references while their
//! timing is charged by the same engine the op programs use.
//!
//! The engine thread and the node threads advance in a strict rendezvous:
//! a node runs (in zero virtual time) until its next blocking call, so the
//! simulated timing is identical to the equivalent op program — a property
//! `tests/integration_cmmd.rs` checks.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::engine::Simulation;
use crate::error::SimError;
use crate::ops::{Action, ProgramSource, ReduceOp, Resume};
use crate::params::MachineParams;
use crate::stats::SimReport;
use crate::time::{SimDuration, SimTime};

/// Handle a node closure uses to talk to the simulated machine.
pub struct CmmdNode {
    id: usize,
    n: usize,
    params: Arc<MachineParams>,
    req: Sender<Action>,
    resp: Receiver<Resume>,
    clock: std::cell::Cell<SimTime>,
}

/// Handle of an in-flight non-blocking send (see [`CmmdNode::isend`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendHandle(u64);

/// What a receive returned: the source node and the payload.
#[derive(Debug, Clone)]
pub struct Received {
    /// Sending node.
    pub from: usize,
    /// The message payload (empty for metadata-only sends).
    pub data: Bytes,
}

impl CmmdNode {
    /// This node's id (`0..nodes()`).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of nodes in the partition.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// The machine parameters (for cost formulas in workload code).
    pub fn params(&self) -> &MachineParams {
        &self.params
    }

    /// Current local virtual time.
    pub fn time(&self) -> SimTime {
        self.clock.get()
    }

    fn call(&self, action: Action) -> Resume {
        self.req
            .send(action)
            .expect("simulation engine terminated while node was running");
        let resume = self
            .resp
            .recv()
            .expect("simulation engine terminated while node was blocked");
        self.clock.set(resume.time);
        resume
    }

    /// Blocking send of `data` to node `to` with `tag`.
    pub fn send_block(&self, to: usize, tag: u32, data: Bytes) {
        let bytes = data.len() as u64;
        self.call(Action::Send {
            to,
            tag,
            bytes,
            payload: Some(data),
        });
    }

    /// Blocking send of `bytes` metadata-only bytes (no payload carried).
    pub fn send_zeros(&self, to: usize, tag: u32, bytes: u64) {
        self.call(Action::Send {
            to,
            tag,
            bytes,
            payload: None,
        });
    }

    /// Non-blocking send: posts the message and returns immediately with a
    /// handle (the transfer still rendezvouses with the matching receive).
    /// Complete it with [`CmmdNode::wait_send`] or
    /// [`CmmdNode::wait_all_sends`] — the asynchronous communication §3.1
    /// of the paper wishes the 1992 CMMD had.
    pub fn isend(&self, to: usize, tag: u32, data: Bytes) -> SendHandle {
        let bytes = data.len() as u64;
        let r = self.call(Action::Isend {
            to,
            tag,
            bytes,
            payload: Some(data),
        });
        SendHandle(r.handle.expect("isend resumed without a handle"))
    }

    /// Non-blocking metadata-only send.
    pub fn isend_zeros(&self, to: usize, tag: u32, bytes: u64) -> SendHandle {
        let r = self.call(Action::Isend {
            to,
            tag,
            bytes,
            payload: None,
        });
        SendHandle(r.handle.expect("isend resumed without a handle"))
    }

    /// Block until one specific non-blocking send has completed.
    pub fn wait_send(&self, handle: SendHandle) {
        self.call(Action::WaitSend {
            handle: Some(handle.0),
        });
    }

    /// Block until every outstanding non-blocking send has completed.
    pub fn wait_all_sends(&self) {
        self.call(Action::WaitSend { handle: None });
    }

    /// Blocking receive from a specific node.
    pub fn recv_block(&self, from: usize, tag: u32) -> Bytes {
        self.call(Action::Recv {
            from: Some(from),
            tag,
        })
        .payload
        .unwrap_or_default()
    }

    /// Blocking receive of a metadata-only message: returns how many user
    /// bytes the sender declared (for sends issued with
    /// [`CmmdNode::send_zeros`]).
    pub fn recv_meta(&self, from: usize, tag: u32) -> u64 {
        self.call(Action::Recv {
            from: Some(from),
            tag,
        })
        .bytes
    }

    /// Blocking receive from whichever matching sender is ready first.
    pub fn recv_any(&self, tag: u32) -> Received {
        let r = self.call(Action::Recv { from: None, tag });
        Received {
            from: r.from.expect("receive resumed without a source"),
            data: r.payload.unwrap_or_default(),
        }
    }

    /// Pairwise exchange with `partner`, using the paper's ordering rule
    /// (Figure 2): the lower-numbered node receives first, the higher sends
    /// first — so the two rendezvous transfers serialize without deadlock.
    pub fn swap(&self, partner: usize, tag: u32, data: Bytes) -> Bytes {
        if self.id < partner {
            let got = self.recv_block(partner, tag);
            self.send_block(partner, tag, data);
            got
        } else {
            self.send_block(partner, tag, data);
            self.recv_block(partner, tag)
        }
    }

    /// Charge `d` of local computation.
    pub fn compute(&self, d: SimDuration) {
        if d > SimDuration::ZERO {
            self.call(Action::Compute(d));
        }
    }

    /// Charge a local memory copy of `bytes` bytes (pack/unpack).
    pub fn memcpy(&self, bytes: u64) {
        self.compute(self.params.memcpy_time(bytes));
    }

    /// Charge `flops` floating-point operations at the scalar node rate.
    pub fn flops(&self, flops: u64) {
        self.compute(self.params.flops_time(flops));
    }

    /// Control-network barrier across all nodes.
    pub fn barrier(&self) {
        self.call(Action::Barrier);
    }

    /// The CMMD *system* broadcast: every node must call this; `root`'s
    /// `data` is distributed and returned on every node. The whole partition
    /// participates regardless of who needs the data — the cost the paper's
    /// REB exploits.
    pub fn system_bcast(&self, root: usize, data: Bytes) -> Bytes {
        let (bytes, payload) = if self.id == root {
            (data.len() as u64, Some(data))
        } else {
            (0, None)
        };
        self.call(Action::SystemBcast {
            root,
            bytes,
            payload,
        })
        .payload
        .unwrap_or_default()
    }

    /// Control-network global sum; every node contributes and receives the
    /// result.
    pub fn reduce_sum(&self, value: f64) -> f64 {
        self.call(Action::Reduce {
            op: ReduceOp::Sum,
            value,
        })
        .reduced
        .expect("reduce resumed without a result")
    }

    /// Control-network global max.
    pub fn reduce_max(&self, value: f64) -> f64 {
        self.call(Action::Reduce {
            op: ReduceOp::Max,
            value,
        })
        .reduced
        .expect("reduce resumed without a result")
    }

    /// Control-network global min.
    pub fn reduce_min(&self, value: f64) -> f64 {
        self.call(Action::Reduce {
            op: ReduceOp::Min,
            value,
        })
        .reduced
        .expect("reduce resumed without a result")
    }

    /// Control-network parallel prefix (the CM-5 control network computes
    /// scans in hardware, §2 of the paper). Returns the `op`-fold of the
    /// contributions of nodes `0..=id` (inclusive) or `0..id` (exclusive;
    /// node 0 receives the operator's identity).
    pub fn scan(&self, op: ReduceOp, value: f64, inclusive: bool) -> f64 {
        self.call(Action::Scan {
            op,
            value,
            inclusive,
        })
        .reduced
        .expect("scan resumed without a result")
    }

    /// Inclusive prefix sum over node order.
    pub fn scan_sum(&self, value: f64) -> f64 {
        self.scan(ReduceOp::Sum, value, true)
    }

    /// Exclusive prefix sum over node order (node 0 gets 0.0).
    pub fn scan_sum_exclusive(&self, value: f64) -> f64 {
        self.scan(ReduceOp::Sum, value, false)
    }

    /// Inclusive prefix max over node order.
    pub fn scan_max(&self, value: f64) -> f64 {
        self.scan(ReduceOp::Max, value, true)
    }
}

/// Program source backed by per-node threads.
struct ThreadSource {
    req_rx: Vec<Receiver<Action>>,
    resp_tx: Vec<Sender<Resume>>,
    started: Vec<bool>,
}

impl ProgramSource for ThreadSource {
    fn next(&mut self, node: usize, resume: Resume) -> Result<Action, SimError> {
        if self.started[node] {
            // Completing the node's previous blocking call. If its thread is
            // gone the recv below reports it.
            let _ = self.resp_tx[node].send(resume);
        } else {
            self.started[node] = true;
        }
        self.req_rx[node].recv().map_err(|_| SimError::NodePanic {
            node,
            message: "node thread exited without completing its program".into(),
        })
    }
}

impl Simulation {
    /// Run one closure per node on real threads; see the module docs.
    ///
    /// ```
    /// use cm5_sim::{Simulation, MachineParams};
    /// use bytes::Bytes;
    ///
    /// let sim = Simulation::new(4, MachineParams::cm5_1992());
    /// let report = sim
    ///     .run_nodes(|node| {
    ///         // Ring shift: everyone passes its id to the right.
    ///         let right = (node.id() + 1) % node.nodes();
    ///         let left = (node.id() + node.nodes() - 1) % node.nodes();
    ///         let me = Bytes::from(vec![node.id() as u8]);
    ///         let got = if node.id() % 2 == 0 {
    ///             node.send_block(right, 0, me.clone());
    ///             node.recv_block(left, 0)
    ///         } else {
    ///             let got = node.recv_block(left, 0);
    ///             node.send_block(right, 0, me.clone());
    ///             got
    ///         };
    ///         assert_eq!(got[0] as usize, left);
    ///     })
    ///     .unwrap();
    /// assert_eq!(report.messages, 4);
    /// ```
    pub fn run_nodes<F>(&self, body: F) -> Result<SimReport, SimError>
    where
        F: Fn(&CmmdNode) + Send + Sync,
    {
        self.run_nodes_collect(|node| body(node)).map(|(r, _)| r)
    }

    /// Like [`Simulation::run_nodes`] but collects each closure's return
    /// value, indexed by node id — handy for gathering verified results out
    /// of a distributed computation.
    pub fn run_nodes_collect<F, T>(&self, body: F) -> Result<(SimReport, Vec<T>), SimError>
    where
        F: Fn(&CmmdNode) -> T + Send + Sync,
        T: Send,
    {
        let n = self.nodes();
        let params = Arc::new(self.params().clone());
        let mut req_rx = Vec::with_capacity(n);
        let mut resp_tx = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for id in 0..n {
            let (rtx, rrx) = unbounded::<Action>();
            let (stx, srx) = unbounded::<Resume>();
            req_rx.push(rrx);
            resp_tx.push(stx);
            handles.push(CmmdNode {
                id,
                n,
                params: Arc::clone(&params),
                req: rtx,
                resp: srx,
                clock: std::cell::Cell::new(SimTime::ZERO),
            });
        }
        let mut source = ThreadSource {
            req_rx,
            resp_tx,
            started: vec![false; n],
        };
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let report = std::thread::scope(|scope| {
            for node in handles {
                let slot = &results[node.id];
                let body = &body;
                scope.spawn(move || {
                    let req = node.req.clone();
                    match catch_unwind(AssertUnwindSafe(|| body(&node))) {
                        Ok(value) => {
                            *slot.lock() = Some(value);
                            let _ = req.send(Action::Done);
                        }
                        Err(payload) => {
                            let _ = req.send(Action::Panic(panic_message(payload)));
                        }
                    }
                });
            }
            let report = self.run_source(&mut source);
            // Closing the response channels releases any node thread still
            // blocked after an engine error; their calls panic, the panics
            // are caught above, and the scope joins everything.
            drop(source);
            report
        })?;
        let outputs = results
            .into_iter()
            .map(|m| m.into_inner().expect("finished node without a result"))
            .collect();
        Ok((report, outputs))
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(n: usize) -> Simulation {
        Simulation::new(n, MachineParams::cm5_1992())
    }

    #[test]
    fn payload_roundtrip() {
        let (report, sums) = sim(2)
            .run_nodes_collect(|node| {
                if node.id() == 0 {
                    node.send_block(1, 9, Bytes::from_static(b"hello cm5"));
                    0u64
                } else {
                    let data = node.recv_block(0, 9);
                    assert_eq!(&data[..], b"hello cm5");
                    data.iter().map(|&b| b as u64).sum()
                }
            })
            .unwrap();
        assert_eq!(report.messages, 1);
        assert_eq!(sums[1], b"hello cm5".iter().map(|&b| b as u64).sum::<u64>());
    }

    #[test]
    fn swap_exchanges_payloads() {
        let (_, got) = sim(2)
            .run_nodes_collect(|node| {
                let mine = Bytes::from(vec![node.id() as u8; 8]);
                let theirs = node.swap(1 - node.id(), 3, mine);
                theirs[0]
            })
            .unwrap();
        assert_eq!(got, vec![1, 0]);
    }

    #[test]
    fn reduce_sum_over_all_nodes() {
        let n = 8;
        let (report, vals) = sim(n)
            .run_nodes_collect(|node| node.reduce_sum(node.id() as f64 + 1.0))
            .unwrap();
        let expect = (n * (n + 1) / 2) as f64;
        assert!(vals.iter().all(|&v| v == expect));
        assert_eq!(report.collectives, 1);
    }

    #[test]
    fn reduce_max_and_min() {
        let (_, vals) = sim(4)
            .run_nodes_collect(|node| {
                let hi = node.reduce_max(node.id() as f64);
                let lo = node.reduce_min(node.id() as f64);
                (hi, lo)
            })
            .unwrap();
        assert!(vals.iter().all(|&(hi, lo)| hi == 3.0 && lo == 0.0));
    }

    #[test]
    fn isend_decouples_the_sender() {
        // Node 0 isends to a receiver that only posts after 5 ms of
        // compute; meanwhile node 0 does its own compute. Under blocking
        // sends node 0 would finish after ~5 ms; with isend it computes in
        // parallel and only the wait rides out the rendezvous.
        let (report, _) = sim(2)
            .run_nodes_collect(|node| {
                if node.id() == 0 {
                    let h = node.isend(1, 7, Bytes::from(vec![0u8; 1024]));
                    node.compute(SimDuration::from_millis(3));
                    node.wait_send(h);
                } else {
                    node.compute(SimDuration::from_millis(5));
                    let got = node.recv_block(0, 7);
                    assert_eq!(got.len(), 1024);
                }
            })
            .unwrap();
        // Sender's busy time includes its 3 ms of overlapped compute, and
        // the whole run still ends shortly after the receiver posts.
        assert!(report.nodes[0].busy.as_millis_f64() >= 3.0);
        assert!(report.makespan.as_millis_f64() < 5.5);
        // Blocked time of the sender ≈ 5ms - 3ms ≈ 2 ms (waiting), not 5.
        assert!(report.nodes[0].blocked.as_millis_f64() < 2.5);
    }

    #[test]
    fn wait_all_collects_multiple_isends() {
        let n = 4;
        let (report, _) = sim(n)
            .run_nodes_collect(|node| {
                if node.id() == 0 {
                    for dst in 1..n {
                        node.isend(dst, 0, Bytes::from(vec![dst as u8; 256]));
                    }
                    node.wait_all_sends();
                } else {
                    let got = node.recv_block(0, 0);
                    assert_eq!(got[0] as usize, node.id());
                }
            })
            .unwrap();
        assert_eq!(report.messages, 3);
    }

    #[test]
    fn isend_matches_in_post_order() {
        // Two isends to the same destination with the same tag must arrive
        // in posting order.
        let (_, got) = sim(2)
            .run_nodes_collect(|node| {
                if node.id() == 0 {
                    node.isend(1, 0, Bytes::from_static(b"first"));
                    node.isend(1, 0, Bytes::from_static(b"second"));
                    node.wait_all_sends();
                    Vec::new()
                } else {
                    let a = node.recv_block(0, 0);
                    let b = node.recv_block(0, 0);
                    vec![a, b]
                }
            })
            .unwrap();
        assert_eq!(got[1][0].as_ref(), b"first");
        assert_eq!(got[1][1].as_ref(), b"second");
    }

    #[test]
    fn fire_and_forget_isend_still_delivers() {
        // A node may finish without waiting; its async send must still
        // rendezvous and deliver after it is done.
        let (report, got) = sim(2)
            .run_nodes_collect(|node| {
                if node.id() == 0 {
                    node.isend(1, 0, Bytes::from_static(b"parting gift"));
                    // No wait: node 0's program ends here.
                    Bytes::new()
                } else {
                    node.compute(SimDuration::from_millis(2));
                    node.recv_block(0, 0)
                }
            })
            .unwrap();
        assert_eq!(got[1].as_ref(), b"parting gift");
        assert_eq!(report.messages, 1);
        // Sender finished long before the receiver even posted.
        assert!(report.nodes[0].finished_at.as_millis_f64() < 1.0);
    }

    #[test]
    fn wait_all_with_nothing_outstanding_is_instant() {
        let (report, _) = sim(2)
            .run_nodes_collect(|node| {
                node.wait_all_sends();
                node.wait_all_sends();
            })
            .unwrap();
        assert_eq!(report.makespan.as_nanos(), 0);
    }

    #[test]
    fn wait_specific_handle_ignores_others() {
        let (_, times) = sim(3)
            .run_nodes_collect(|node| match node.id() {
                0 => {
                    // First isend matches quickly; second never matches
                    // until much later. Waiting only on the first must not
                    // block on the second.
                    let h1 = node.isend(1, 0, Bytes::from_static(b"fast"));
                    let _h2 = node.isend(2, 0, Bytes::from_static(b"slow"));
                    node.wait_send(h1);
                    let at_wait1 = node.time().as_millis_f64();
                    node.wait_all_sends();
                    (at_wait1, node.time().as_millis_f64())
                }
                1 => {
                    node.recv_block(0, 0);
                    (0.0, 0.0)
                }
                _ => {
                    node.compute(SimDuration::from_millis(4));
                    node.recv_block(0, 0);
                    (0.0, 0.0)
                }
            })
            .unwrap();
        let (after_h1, after_all) = times[0];
        assert!(after_h1 < 1.0, "wait(h1) returned at {after_h1}ms");
        assert!(after_all >= 4.0, "wait_all returned at {after_all}ms");
    }

    #[test]
    fn unmatched_isend_wait_deadlocks_with_diagnostic() {
        let err = sim(2)
            .run_nodes(|node| {
                if node.id() == 0 {
                    node.isend_zeros(1, 3, 64);
                    node.wait_all_sends();
                }
                // Node 1 never receives.
            })
            .unwrap_err();
        match err {
            SimError::Deadlock { waiting, .. } => {
                assert!(waiting[0].contains("async"), "{waiting:?}");
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn scan_sum_inclusive_and_exclusive() {
        let n = 8;
        let (report, vals) = sim(n)
            .run_nodes_collect(|node| {
                let inc = node.scan_sum(node.id() as f64 + 1.0);
                let exc = node.scan_sum_exclusive(node.id() as f64 + 1.0);
                (inc, exc)
            })
            .unwrap();
        for (i, &(inc, exc)) in vals.iter().enumerate() {
            let expect_inc: f64 = (1..=i + 1).map(|k| k as f64).sum();
            assert_eq!(inc, expect_inc, "node {i} inclusive");
            assert_eq!(exc, expect_inc - (i as f64 + 1.0), "node {i} exclusive");
        }
        assert_eq!(report.collectives, 2);
    }

    #[test]
    fn scan_max_is_running_maximum() {
        let contributions = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let (_, vals) = sim(8)
            .run_nodes_collect(|node| node.scan_max(contributions[node.id()]))
            .unwrap();
        let mut running = f64::NEG_INFINITY;
        for (i, &v) in vals.iter().enumerate() {
            running = running.max(contributions[i]);
            assert_eq!(v, running, "node {i}");
        }
    }

    #[test]
    fn system_bcast_delivers_to_all() {
        let (_, vals) = sim(4)
            .run_nodes_collect(|node| {
                let data = if node.id() == 2 {
                    Bytes::from_static(b"from two")
                } else {
                    Bytes::new()
                };
                let got = node.system_bcast(2, data);
                got.to_vec()
            })
            .unwrap();
        for v in vals {
            assert_eq!(v, b"from two");
        }
    }

    #[test]
    fn recv_any_reports_source() {
        let (_, srcs) = sim(3)
            .run_nodes_collect(|node| match node.id() {
                0 => {
                    let a = node.recv_any(0).from;
                    let b = node.recv_any(0).from;
                    vec![a, b]
                }
                _ => {
                    node.send_block(0, 0, Bytes::from(vec![node.id() as u8]));
                    Vec::new()
                }
            })
            .unwrap();
        let mut got = srcs[0].clone();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn node_panic_surfaces_as_error() {
        let err = sim(2)
            .run_nodes(|node| {
                if node.id() == 1 {
                    panic!("boom on node 1");
                } else {
                    // Node 0 blocks forever; the error must still unwind it.
                    node.recv_block(1, 0);
                }
            })
            .unwrap_err();
        match err {
            SimError::NodePanic { node: 1, message } => {
                assert!(message.contains("boom"));
            }
            // Depending on ordering the deadlock may be observed first; both
            // are acceptable surfaces of the same failure, but the panic is
            // the expected one because node 1's Panic action arrives eagerly.
            other => panic!("expected node panic, got {other}"),
        }
    }

    #[test]
    fn virtual_time_visible_to_closures() {
        let (_, times) = sim(2)
            .run_nodes_collect(|node| {
                node.compute(SimDuration::from_micros(123));
                node.time().as_micros_f64()
            })
            .unwrap();
        assert_eq!(times, vec![123.0, 123.0]);
    }

    #[test]
    fn timing_matches_op_mode() {
        use crate::ops::{Op, ANY_TAG};
        let bytes = 4096u64;
        let mut programs = vec![Vec::new(); 4];
        for (i, program) in programs.iter_mut().enumerate() {
            let partner = i ^ 1;
            if i < partner {
                program.push(Op::Recv {
                    from: partner,
                    tag: ANY_TAG,
                });
                program.push(Op::Send {
                    to: partner,
                    bytes,
                    tag: ANY_TAG,
                });
            } else {
                program.push(Op::Send {
                    to: partner,
                    bytes,
                    tag: ANY_TAG,
                });
                program.push(Op::Recv {
                    from: partner,
                    tag: ANY_TAG,
                });
            }
        }
        let r_ops = sim(4).run_ops(&programs).unwrap();
        let r_thr = sim(4)
            .run_nodes(|node| {
                let partner = node.id() ^ 1;
                node.swap(partner, ANY_TAG, Bytes::from(vec![0u8; bytes as usize]));
            })
            .unwrap();
        assert_eq!(r_ops.makespan, r_thr.makespan);
        assert_eq!(r_ops.messages, r_thr.messages);
    }
}
